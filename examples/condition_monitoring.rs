//! Condition-monitoring scenario: a sensor node bolted to industrial
//! machinery whose speed drifts over a shift, powered only by the
//! machine's own vibration.
//!
//! Demonstrates the value of the tunable harvester: the same node is
//! simulated with the closed-loop tuning controller enabled and
//! disabled while the dominant vibration frequency ramps 58 → 70 Hz.
//!
//! Run with: `cargo run --release --example condition_monitoring`

use ehsim::node::{NodeConfig, SystemSimulator};
use ehsim::vibration::DriftSchedule;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== condition monitoring under frequency drift ===\n");

    // An 8-hour shift: the machine warms up, runs fast, slows again.
    let duration = 8.0 * 3600.0;
    let source = DriftSchedule::new(
        vec![
            (0.0, 58.0),
            (2.0 * 3600.0, 64.0),
            (5.0 * 3600.0, 70.0),
            (7.0 * 3600.0, 62.0),
            (duration, 60.0),
        ],
        0.9,
    )?;

    let mut base = NodeConfig::default_node();
    base.tick_s = 0.25;
    base.initial_position = base.harvester.position_for_frequency(58.0);
    base.storage.capacitance = 0.2;

    let mut untuned = base.clone();
    untuned.tuning.enabled = false;

    let sim_tuned = SystemSimulator::new(base)?;
    let (m_tuned, trace) = sim_tuned.run_with_trace(&source, duration, 1200)?;
    let m_untuned = SystemSimulator::new(untuned)?.run(&source, duration)?;

    println!("{:<28} {:>12} {:>12}", "metric", "tuned", "untuned");
    println!("{}", "-".repeat(54));
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "packets delivered",
            m_tuned.packets_delivered as f64,
            m_untuned.packets_delivered as f64,
        ),
        (
            "harvested energy (J)",
            m_tuned.harvested_energy_j,
            m_untuned.harvested_energy_j,
        ),
        (
            "uptime fraction",
            m_tuned.uptime_fraction,
            m_untuned.uptime_fraction,
        ),
        (
            "min storage voltage (V)",
            m_tuned.min_v_store,
            m_untuned.min_v_store,
        ),
        (
            "retunes",
            m_tuned.retune_count as f64,
            m_untuned.retune_count as f64,
        ),
        (
            "tuning energy (J)",
            m_tuned.tuning_energy_j,
            m_untuned.tuning_energy_j,
        ),
    ];
    for (name, a, b) in rows {
        println!("{name:<28} {a:>12.3} {b:>12.3}");
    }
    let gain = m_tuned.harvested_energy_j / m_untuned.harvested_energy_j.max(1e-12);
    println!(
        "\nclosed-loop tuning harvested {gain:.1}x the energy, spending {:.3} J \
         ({:.1}% of the gain) on the actuator\n",
        m_tuned.tuning_energy_j,
        100.0 * m_tuned.tuning_energy_j
            / (m_tuned.harvested_energy_j - m_untuned.harvested_energy_j).max(1e-12)
    );

    // Frequency-tracking timeline (one row every 40 minutes).
    println!("time(h)  ambient(Hz)  resonance(Hz)  v_store(V)");
    for (i, t) in trace.t.iter().enumerate() {
        if i % 8 == 0 {
            println!(
                "{:>6.1}  {:>10.1}  {:>12.1}  {:>9.2}",
                t / 3600.0,
                trace.ambient_hz[i],
                trace.resonance_hz[i],
                trace.v_store[i]
            );
        }
    }
    Ok(())
}
