//! Design-space exploration: response surfaces and trade-off fronts,
//! rendered in the terminal — the "adjust a wide range of system
//! parameters and evaluate the effect almost instantly" workflow of the
//! DATE'13 paper.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use ehsim::core::experiment::{Campaign, StandardFactors};
use ehsim::core::explorer::{sweep_1d, sweep_2d};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::Scenario;
use ehsim::core::tradeoff::pareto_front;
use ehsim::doe::optimize::Goal;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== design-space exploration on response surfaces ===\n");

    let campaign = Campaign::standard(
        StandardFactors::default(),
        Scenario::drifting_machine(3600.0),
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )?;
    let surrogates = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
        .with_threads(8)
        .run(&campaign)?;
    println!(
        "built surrogates from {} simulations in {:.2?}\n",
        surrogates.campaign_result().sim_count,
        surrogates.build_wall()
    );

    // A 2-D response surface: packets/hour over storage size x period.
    let t0 = Instant::now();
    let surface = sweep_2d(&surrogates, 0, 1, 0, &surrogates.space().center(), 28)?;
    println!("{}", surface.ascii());
    println!("(28x28 surface evaluated in {:.1?})\n", t0.elapsed());

    // A 1-D slice: brown-out margin vs task period.
    let sweep = sweep_1d(&surrogates, 1, 1, &surrogates.space().center(), 9)?;
    println!("brown-out margin vs {}:", sweep.factor);
    for (x, y) in sweep.xs.iter().zip(sweep.ys.iter()) {
        let bar_len = ((y + 1.0) * 20.0).clamp(0.0, 60.0) as usize;
        println!("  {x:>6.1} s  {y:+.3} V  |{}", "#".repeat(bar_len));
    }

    // The packet-rate vs robustness Pareto front.
    let t1 = Instant::now();
    let front = pareto_front(
        &surrogates,
        &[(0, Goal::Maximize), (1, Goal::Maximize)],
        4000,
        7,
    )?;
    println!(
        "\nPareto front (packets/hour vs brown-out margin), {} points from 4000 \
         candidates in {:.1?}:",
        front.len(),
        t1.elapsed()
    );
    println!(
        "{:>12} {:>10}   {:>9} {:>9} {:>9} {:>9}",
        "packets/h", "margin(V)", "c_store", "period", "thresh", "tx_dbm"
    );
    let step = (front.len() / 12).max(1);
    for p in front.iter().step_by(step) {
        println!(
            "{:>12.1} {:>10.3}   {:>9.3} {:>9.2} {:>9.2} {:>9.1}",
            p.objectives[0],
            p.objectives[1],
            p.physical[0],
            p.physical[1],
            p.physical[2],
            p.physical[3]
        );
    }
    Ok(())
}
