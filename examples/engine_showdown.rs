//! Engine showdown: traditional Newton–Raphson transient analysis vs
//! the explicit linearized state-space technique, on the full
//! circuit-level front-end (tunable harvester → Cockcroft–Walton
//! multiplier → storage capacitor).
//!
//! This is the motivation of the DATE'13 paper made concrete: the same
//! netlist, the same excitation, two orders of magnitude apart in cost.
//!
//! Run with: `cargo run --release --example engine_showdown`

use ehsim::circuit::{LinearizedStateSpaceEngine, NewtonRaphsonEngine, Probe, TransientConfig};
use ehsim::harvester::Harvester;
use ehsim::power::frontend::build_frontend;
use ehsim::power::Multiplier;
use ehsim::vibration::Sine;
use std::error::Error;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== engine showdown: Newton-Raphson vs linearized state-space ===\n");

    let harvester = Harvester::default_tunable();
    let pos = harvester.position_for_frequency(64.0);
    let source = Arc::new(Sine::new(0.9, 64.0)?);
    let fe = build_frontend(
        &harvester,
        pos,
        source,
        &Multiplier::default(),
        100e-6,
        0.0,
        None,
    )?;
    let probe = Probe::NodeVoltage(fe.store_node_name.clone());
    let signal = format!("v({})", fe.store_node_name);

    let t_end = 1.0;
    println!("netlist: full harvester + 3-stage CW multiplier + storage");
    println!("simulating {t_end} s of circuit time with both engines\n");

    // Traditional engine: implicit trapezoidal + NR, small steps for the
    // diode exponentials.
    let t0 = Instant::now();
    let nr_cfg = TransientConfig::new(t_end, 2e-5)?.with_record_stride(50)?;
    let nr = NewtonRaphsonEngine::default().simulate(&fe.netlist, &nr_cfg, &[probe.clone()])?;
    let nr_wall = t0.elapsed();

    // Linearized state-space engine: exact per-topology discretisation,
    // larger steps.
    let t1 = Instant::now();
    let lss_cfg = TransientConfig::new(t_end, 2e-4)?.with_record_stride(5)?;
    let lss = LinearizedStateSpaceEngine::default().simulate(&fe.netlist, &lss_cfg, &[probe])?;
    let lss_wall = t1.elapsed();

    let v_nr = *nr.signal(&signal).unwrap().last().unwrap();
    let v_lss = *lss.signal(&signal).unwrap().last().unwrap();

    println!(
        "{:<28} {:>16} {:>18}",
        "", "newton-raphson", "linearized-ss"
    );
    println!("{}", "-".repeat(64));
    println!(
        "{:<28} {:>16.3?} {:>18.3?}",
        "wall-clock", nr_wall, lss_wall
    );
    println!(
        "{:<28} {:>16} {:>18}",
        "time steps", nr.stats.steps, lss.stats.steps
    );
    println!(
        "{:<28} {:>16} {:>18}",
        "LU factorisations", nr.stats.lu_factorizations, lss.stats.lu_factorizations
    );
    println!(
        "{:<28} {:>16} {:>18}",
        "NR iterations", nr.stats.nr_iterations, lss.stats.nr_iterations
    );
    println!(
        "{:<28} {:>16} {:>18}",
        "matrix exponentials", nr.stats.expm_evaluations, lss.stats.expm_evaluations
    );
    println!(
        "{:<28} {:>16} {:>18}",
        "topology changes",
        "-",
        lss.stats.topology_changes.to_string()
    );
    println!(
        "{:<28} {:>16.4} {:>18.4}",
        "final storage voltage (V)", v_nr, v_lss
    );
    println!(
        "\nspeed-up: {:.0}x wall-clock, {:.0}x fewer LU factorisations, \
         result agreement {:.2}%",
        nr_wall.as_secs_f64() / lss_wall.as_secs_f64().max(1e-9),
        nr.stats.lu_factorizations as f64 / lss.stats.lu_factorizations.max(1) as f64,
        100.0 * (1.0 - (v_nr - v_lss).abs() / v_nr.abs().max(1e-9))
    );
    Ok(())
}
