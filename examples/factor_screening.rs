//! Factor screening: which design parameters actually matter?
//!
//! Runs the DoE flow and prints the standardised-effects ranking (the
//! classic "Pareto of effects") plus the physical main-effect swings for
//! each performance indicator — the first question a designer asks
//! before committing to an optimisation.
//!
//! Run with: `cargo run --release --example factor_screening`

use ehsim::core::experiment::{Campaign, StandardFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::Scenario;
use ehsim::core::sensitivity::{effects_ranking, main_effect_ranges};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== factor screening on the flagship design problem ===\n");
    let campaign = Campaign::standard(
        StandardFactors::default(),
        Scenario::drifting_machine(3600.0),
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )?;
    let surrogates = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
        .with_threads(8)
        .run(&campaign)?;

    for (idx, ind) in surrogates.indicators().iter().enumerate() {
        println!("--- {ind} ---");
        println!(
            "{:<40} {:>12} {:>8} {:>10}",
            "term", "coeff", "|t|", "p-value"
        );
        println!("{}", "-".repeat(74));
        let ranking = effects_ranking(&surrogates, idx)?;
        for e in ranking.iter().take(8) {
            let bar = "#".repeat((e.t_abs.min(40.0)) as usize);
            println!(
                "{:<40} {:>12.4} {:>8.2} {:>10.2e}  {bar}",
                e.term, e.coefficient, e.t_abs, e.p_value
            );
        }
        println!("\nmain-effect swings (others at centre):");
        for (name, lo, hi) in main_effect_ranges(&surrogates, idx, 21)? {
            println!(
                "  {name:<22} {lo:>10.3} … {hi:>10.3}  (swing {:.3})",
                hi - lo
            );
        }
        println!();
    }
    println!(
        "screening reading: storage capacitance dominates robustness; the task \
         period dominates throughput; the retune threshold matters through its \
         interaction with the drift; TX power is second-order at this range."
    );
    Ok(())
}
