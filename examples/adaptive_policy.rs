//! Quickstart for the adaptive energy-management policy API.
//!
//! 1. Give a node a runtime policy (`Threshold`, `EnergyAware`) and
//!    watch it ride out a non-stationary environment that breaks the
//!    static configuration.
//! 2. Optimise the *policy parameters themselves* with the same DoE
//!    flow the paper uses for static tunings, via `PolicyFactors`.
//!
//! Run with: `cargo run --release --example adaptive_policy`

use ehsim::core::experiment::{EnsembleCampaign, PolicyFactorSet, PolicyFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::{Scenario, ScenarioEnsemble};
use ehsim::doe::optimize::{Goal, RobustGoal};
use ehsim::node::{NodeConfig, PolicyKind, SystemSimulator};
use ehsim::policy::{EnergyAware, Threshold};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== ehsim adaptive-policy quickstart ===\n");

    // A deliberately stressed node: modest storage, an ambitious 2 s
    // sampling period, pre-tuned to the 64 Hz machine it lives on.
    let mut base = NodeConfig::default_node();
    base.initial_position = base.harvester.position_for_frequency(64.0);
    base.storage.capacitance = 0.05;
    base.task.period_s = 2.0;
    base.policy = ehsim::node::DutyCyclePolicy::Fixed;

    // The environment: the machine's vibration level fades to 25 % for
    // a third of every run — no amount of frequency retuning helps.
    let scenario = Scenario::fading_machine(14400.0);

    // 1. Same node, three runtime policies.
    let policies = [
        ("static", PolicyKind::Static),
        (
            "threshold",
            PolicyKind::Threshold(Threshold {
                v_low: 2.9,
                v_high: 3.1,
                throttle_scale: 16.0,
                skip_while_throttled: false,
            }),
        ),
        (
            "energy-aware",
            PolicyKind::EnergyAware(EnergyAware::default()),
        ),
    ];
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "policy", "packets/h", "uptime", "brownouts", "min Vstore"
    );
    for (name, policy) in policies {
        let mut cfg = base.clone();
        cfg.energy_policy = policy;
        let m =
            SystemSimulator::new(cfg)?.run(scenario.source().as_ref(), scenario.duration_s())?;
        println!(
            "{:<14} {:>10.0} {:>9.0}% {:>10} {:>11.2} V",
            name,
            m.packets_delivered as f64 * 3600.0 / m.duration_s,
            m.uptime_fraction * 100.0,
            m.brownout_count,
            m.min_v_store,
        );
    }

    // 2. Let the DoE flow pick the policy parameters: a (tuning ×
    //    policy) design space, one batched campaign over a small
    //    ensemble, then a constrained robust optimisation that demands
    //    a brown-out margin in *every* environment.
    println!("\noptimising threshold-policy parameters with the DoE flow...");
    let mut factors = PolicyFactors::standard(PolicyFactorSet::default_threshold());
    factors.base.initial_position = factors.base.harvester.position_for_frequency(64.0);
    factors.c_store = (0.03, 0.1);
    factors.task_period = (1.0, 20.0);
    let ensemble = ScenarioEnsemble::new(vec![
        (Scenario::stationary_machine(3600.0), 0.6),
        (Scenario::fading_machine(3600.0), 0.4),
    ])?;
    let campaign = EnsembleCampaign::adaptive(
        factors,
        ensemble,
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )?;
    let surrogates = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
        .with_threads(4)
        .run_ensemble(&campaign)?;
    let best = surrogates.optimize_robust_constrained(
        0,
        Goal::Maximize,
        RobustGoal::WeightedMean,
        &[(1, 0.1)], // ≥ 0.1 V brown-out margin in every scenario
        42,
    )?;
    let physical = campaign.space().decode(&best.x);
    println!("DoE-optimised design point:");
    for (factor, value) in campaign.space().factors().iter().zip(&physical) {
        println!("  {:<16} = {value:.4}", factor.name());
    }
    println!("predicted packets/hour (weighted mean): {:.0}", best.value);
    Ok(())
}
