//! Quickstart: the complete DoE-based design flow in one sitting.
//!
//! 1. Define the design problem (four factors over the default node).
//! 2. Plan a face-centred central composite design (27 + 3 runs).
//! 3. Simulate every design point (the only expensive part).
//! 4. Fit quadratic response-surface models for the indicators.
//! 5. Explore the design space *instantly*: what-ifs, optimisation.
//!
//! Run with: `cargo run --release --example quickstart`

use ehsim::core::experiment::{Campaign, StandardFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::Scenario;
use ehsim::doe::optimize::Goal;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== ehsim quickstart: DoE-based node design ===\n");

    // 1. The design problem: storage size, task period, retune
    //    threshold, TX power — evaluated on one hour of a machine that
    //    drifts from 58 Hz to 70 Hz.
    let factors = StandardFactors::default();
    let campaign = Campaign::standard(
        factors,
        Scenario::drifting_machine(3600.0),
        vec![
            Indicator::PacketsPerHour,
            Indicator::BrownoutMarginV,
            Indicator::TuningOverheadFraction,
        ],
    )?;
    println!("design space:\n{}", campaign.space());

    // 2–4. Run the flow: design, simulate (in parallel), fit.
    let t0 = Instant::now();
    let flow = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 }).with_threads(8);
    let surrogates = flow.run(&campaign)?;
    println!(
        "campaign: {} simulations in {:.2?} ({:.1} ms each)\n",
        surrogates.campaign_result().sim_count,
        t0.elapsed(),
        t0.elapsed().as_secs_f64() * 1e3 / surrogates.campaign_result().sim_count as f64,
    );

    for (i, ind) in surrogates.indicators().iter().enumerate() {
        let m = surrogates.model(i);
        println!(
            "RSM[{ind}]: R² = {:.4}, adjusted = {:.4}, predicted = {:.4}",
            m.r_squared(),
            m.adj_r_squared(),
            m.predicted_r_squared()
        );
    }

    // 5. Instant exploration: each prediction is one polynomial
    //    evaluation (~nanoseconds vs ~milliseconds per simulation).
    println!("\n--- instant what-ifs (coded units) ---");
    let t1 = Instant::now();
    let mut n_predictions = 0usize;
    for c_store in [-1.0, 0.0, 1.0] {
        for period in [-1.0, 0.0, 1.0] {
            let x = [c_store, period, 0.0, 0.0];
            let pph = surrogates.predict(0, &x)?;
            let margin = surrogates.predict(1, &x)?;
            n_predictions += 2;
            println!(
                "  c_store={c_store:+.0}, period={period:+.0}: {pph:7.1} packets/h, margin {margin:+.3} V"
            );
        }
    }
    println!("  ({n_predictions} predictions in {:.1?})", t1.elapsed());

    // Constrained optimisation on the surface: maximise packet rate
    // while keeping 0.2 V of brown-out margin.
    let best = surrogates.optimize_constrained(0, Goal::Maximize, &[(1, 0.2)], 42)?;
    let physical = surrogates.space().decode(&best.x);
    println!("\n--- optimised design (margin ≥ 0.2 V) ---");
    for (f, v) in surrogates.space().factors().iter().zip(&physical) {
        println!("  {:<22} = {v:.3}", f.name());
    }
    println!("  predicted packets/hour = {:.1}", best.value);
    println!(
        "  predicted margin       = {:+.3} V",
        surrogates.predict(1, &best.x)?
    );

    // Verify the optimum with one fresh simulation.
    let simulated = campaign.evaluate_coded(&best.x)?;
    println!(
        "  simulated packets/hour = {:.1} (model error {:+.1}%)",
        simulated[0],
        100.0 * (best.value - simulated[0]) / simulated[0].max(1e-9)
    );
    Ok(())
}
