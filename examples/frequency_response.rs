//! Frequency response of the tunable harvester, computed three ways:
//! AC small-signal analysis of the electromechanical netlist, the
//! analytic phasor solution, and what the tuning actuator does to the
//! curve.
//!
//! Run with: `cargo run --release --example frequency_response`

use ehsim::circuit::ac::ac_sweep;
use ehsim::circuit::Netlist;
use ehsim::harvester::Harvester;
use ehsim::vibration::Sine;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== tunable harvester frequency response (AC analysis) ===\n");
    let h = Harvester::default_tunable();
    let r_load = 20e3;
    let freqs: Vec<f64> = (0..121).map(|i| 45.0 + i as f64 * 0.4).collect();

    println!("load voltage magnitude per unit force, three actuator positions:\n");
    let mut curves = Vec::new();
    for pos in [0.1, 0.5, 0.9] {
        // The AC source replaces the inertial-force source; magnitude 1.
        let (mut nl, out) = h.build_netlist(pos, Arc::new(Sine::new(1.0, 60.0)?))?;
        nl.resistor("Rload", out, Netlist::GROUND, r_load)?;
        let sweep = ac_sweep(&nl, "Fsrc", &freqs, None)?;
        let mags = sweep.magnitude("harv_out").expect("output node exists");
        let peak = sweep.peak_frequency("harv_out").expect("peak exists");
        println!(
            "  actuator at {pos:.1}: resonance (mechanical) = {:.1} Hz, AC peak = {peak:.1} Hz",
            h.resonant_frequency(pos)
        );
        curves.push((pos, mags));
    }

    // ASCII overlay of the three resonance curves.
    println!("\n  magnitude (normalised)\n");
    let max_all = curves
        .iter()
        .flat_map(|(_, m)| m.iter().copied())
        .fold(0.0f64, f64::max);
    let rows = 16;
    for r in (0..rows).rev() {
        let threshold = max_all * (r as f64 + 0.5) / rows as f64;
        let mut line = String::from("  |");
        for i in 0..freqs.len() {
            let mut ch = ' ';
            for (idx, (_, mags)) in curves.iter().enumerate() {
                if mags[i] >= threshold {
                    ch = ['1', '2', '3'][idx];
                }
            }
            line.push(ch);
        }
        println!("{line}");
    }
    println!("  +{}", "-".repeat(freqs.len()));
    println!(
        "   {:<10} {:>50} {:>55}",
        freqs[0],
        "frequency (Hz)",
        freqs[freqs.len() - 1]
    );
    println!("\n  1 = actuator 0.1, 2 = actuator 0.5, 3 = actuator 0.9");
    println!(
        "\nthe actuator slides the resonance across the 55-85 Hz tuning range — \
         the mechanism the node's tuning controller exploits."
    );

    // Cross-check one point against the analytic solution.
    let pos = 0.5;
    let f_chk = h.resonant_frequency(pos);
    let ss = h.steady_state(pos, f_chk, 1.0 / h.mass_kg, r_load)?;
    let (mut nl, out) = h.build_netlist(pos, Arc::new(Sine::new(1.0, f_chk)?))?;
    nl.resistor("Rload", out, Netlist::GROUND, r_load)?;
    let sweep = ac_sweep(&nl, "Fsrc", &[f_chk], None)?;
    let ac_mag = sweep.voltage(0, "harv_out").expect("node").abs();
    let analytic = ss.current_amp * r_load;
    println!(
        "\ncross-check at {f_chk:.1} Hz: AC analysis {ac_mag:.4} V vs analytic {analytic:.4} V \
         (difference {:.2e})",
        (ac_mag - analytic).abs()
    );
    Ok(())
}
