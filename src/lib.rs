//! # ehsim — DoE-based design of energy-harvester-powered sensor nodes
//!
//! Umbrella crate re-exporting the entire `ehsim` workspace: a Rust
//! reproduction of *"DoE-based performance optimization of energy
//! management in sensor nodes powered by tunable energy-harvesters"*
//! (Kazmierski, Wang, Al-Hashimi, Merrett — DATE 2013).
//!
//! The workspace models a complete wireless sensor node powered by a
//! tunable electromagnetic vibration energy harvester, simulates it at
//! circuit and system level, and wraps the whole thing in a design-of-
//! experiments (DoE) flow: a moderate number of simulations builds
//! response-surface models (RSMs), after which design-space exploration
//! is practically instant.
//!
//! ## Crate map
//!
//! | module | underlying crate | contents |
//! |---|---|---|
//! | [`numeric`] | `ehsim-numeric` | linear algebra, ODE solvers, `expm`, statistics |
//! | [`circuit`] | `ehsim-circuit` | MNA netlists, Newton–Raphson and linearized state-space engines |
//! | [`vibration`] | `ehsim-vibration` | excitation sources: sines, drifts, noise, bursts, shocks |
//! | [`harvester`] | `ehsim-harvester` | tunable electromagnetic harvester model |
//! | [`power`] | `ehsim-power` | voltage multiplier, supercapacitor, regulator |
//! | [`policy`] | `ehsim-policy` | adaptive runtime energy-management policies |
//! | [`node`] | `ehsim-node` | sensor-node energy model and system simulator |
//! | [`net`] | `ehsim-net` | fleet layer: placement, radio energy model, routing, fleet simulator |
//! | [`doe`] | `ehsim-doe` | experimental designs, OLS/ANOVA, RSM, optimisation |
//! | [`core`] | `ehsim-core` | the DoE-based design flow toolkit, incl. scenario ensembles and robust optimisation |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end flow: define a design
//! space, run the experiment campaign, fit RSMs, and explore trade-offs
//! instantly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Doctest anchor for `docs/METHODOLOGY.md`: every rust block of the
/// methodology walkthrough is compiled (and, unless marked `no_run`,
/// executed) as part of this crate's test suite, so the documented
/// examples can never drift from the real APIs.
#[cfg(doctest)]
#[doc = include_str!("../docs/METHODOLOGY.md")]
pub struct MethodologyDoctests;

pub use ehsim_circuit as circuit;
pub use ehsim_core as core;
pub use ehsim_doe as doe;
pub use ehsim_harvester as harvester;
pub use ehsim_net as net;
pub use ehsim_node as node;
pub use ehsim_numeric as numeric;
pub use ehsim_policy as policy;
pub use ehsim_power as power;
pub use ehsim_vibration as vibration;
