//! Integration tests for the scenario-ensemble subsystem: the batched
//! multi-scenario campaign, the weighted aggregation contract, and the
//! robust cross-scenario optimisation layer built on top of it.

use ehsim::core::experiment::{EnsembleCampaign, StandardFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::{Scenario, ScenarioEnsemble};
use ehsim::doe::optimize::{Goal, RobustGoal};

fn ensemble_campaign(duration_s: f64) -> EnsembleCampaign {
    let ensemble = ScenarioEnsemble::new(vec![
        (Scenario::stationary_machine(duration_s), 0.5),
        (Scenario::drifting_machine(duration_s), 0.3),
        (Scenario::industrial_spectrum(duration_s), 0.2),
    ])
    .expect("valid ensemble");
    EnsembleCampaign::standard(
        StandardFactors::default(),
        ensemble,
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )
    .expect("valid campaign")
}

#[test]
fn batched_ensemble_pass_equals_sequential_single_scenario_campaigns() {
    let ec = ensemble_campaign(240.0);
    let design = DesignChoice::LatinHypercube { n: 12, seed: 3 }
        .build(4)
        .expect("design builds");
    let batched = ec.run_design(&design, 8).expect("batched pass");

    // Identity 1: each per-scenario slice of the batched pass is
    // bit-identical to a standalone single-scenario campaign.
    for s in 0..ec.ensemble().len() {
        let single = ec
            .campaign_for(s)
            .expect("scenario view")
            .run_design(&design, 8)
            .expect("single-scenario pass");
        assert_eq!(
            single.responses, batched.per_scenario[s].responses,
            "scenario {s} diverged between batched and sequential runs"
        );
    }

    // Identity 2: the aggregate is the hand-computed weighted mean of
    // the per-scenario responses, at every run and indicator.
    let w = ec.ensemble().weights();
    for run in 0..design.n_runs() {
        for i in 0..ec.indicators().len() {
            let want: f64 = (0..ec.ensemble().len())
                .map(|s| w[s] * batched.per_scenario[s].responses[run][i])
                .sum();
            let got = batched.aggregate.responses[run][i];
            assert!(
                (got - want).abs() < 1e-12,
                "run {run}, indicator {i}: aggregate {got} != weighted mean {want}"
            );
        }
    }
    assert_eq!(
        batched.aggregate.sim_count,
        design.n_runs() * ec.ensemble().len()
    );
}

#[test]
fn ensemble_flow_is_deterministic_across_invocations() {
    let fingerprint = || {
        let s = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 1 })
            .with_threads(8)
            .run_ensemble(&ensemble_campaign(240.0))
            .expect("flow runs");
        let robust = s
            .optimize_robust(0, Goal::Maximize, RobustGoal::WorstCase, 7)
            .expect("robust optimisation");
        let mut bits: Vec<u64> = robust.x.iter().map(|v| v.to_bits()).collect();
        bits.push(robust.value.to_bits());
        for sc in 0..s.n_scenarios() {
            for i in 0..s.indicators().len() {
                let x = s.space().center();
                bits.push(s.predict_scenario(sc, i, &x).expect("prediction").to_bits());
            }
        }
        bits
    };
    assert_eq!(fingerprint(), fingerprint());
}

#[test]
fn robust_optimum_dominates_single_scenario_optima_on_worst_case() {
    let s = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
        .with_threads(8)
        .run_ensemble(&ensemble_campaign(300.0))
        .expect("flow runs");
    let robust = s
        .optimize_robust(0, Goal::Maximize, RobustGoal::WorstCase, 42)
        .expect("robust optimisation");
    for sc in 0..s.n_scenarios() {
        let single = s
            .optimize_scenario(sc, 0, Goal::Maximize, 42)
            .expect("single optimisation");
        let single_worst = s
            .predict_robust(0, RobustGoal::WorstCase, Goal::Maximize, &single.x)
            .expect("worst-case prediction");
        assert!(
            robust.value >= single_worst - 1e-9,
            "scenario {sc}: robust floor {} below single-scenario floor {}",
            robust.value,
            single_worst
        );
    }
    // The weighted-mean optimum dominates everything on expected value.
    let mean_opt = s
        .optimize_robust(0, Goal::Maximize, RobustGoal::WeightedMean, 42)
        .expect("mean optimisation");
    let robust_mean = s
        .predict_robust(0, RobustGoal::WeightedMean, Goal::Maximize, &robust.x)
        .expect("mean prediction");
    assert!(mean_opt.value >= robust_mean - 1e-9);
}
