//! Equivalence suite for the deterministic self-scheduling campaign
//! scheduler: the work-stealing `run_jobs` queue must be bit-identical
//! to the sequential path for both [`Campaign`] and
//! [`EnsembleCampaign`] at any thread count, and must surface the same
//! (first-in-job-order) error regardless of how jobs land on workers.

use ehsim::core::experiment::{Campaign, EnsembleCampaign, StandardFactors};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::{Scenario, ScenarioEnsemble};
use ehsim::doe::design::factorial::full_factorial_2k;
use ehsim::doe::Design;
use std::sync::Arc;

fn campaign(duration_s: f64) -> Campaign {
    Campaign::standard(
        StandardFactors::default(),
        Scenario::stationary_machine(duration_s),
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )
    .expect("valid campaign")
}

/// An ensemble whose scenarios differ 6× in duration, so static
/// contiguous chunking would leave most workers idle behind the worker
/// that drew the long jobs — exactly the imbalance the self-scheduling
/// queue exists to absorb.
fn lopsided_ensemble() -> EnsembleCampaign {
    let ensemble = ScenarioEnsemble::new(vec![
        (Scenario::stationary_machine(60.0), 0.4),
        (Scenario::drifting_machine(360.0), 0.4),
        (Scenario::industrial_spectrum(120.0), 0.2),
    ])
    .expect("valid ensemble");
    EnsembleCampaign::standard(
        StandardFactors::default(),
        ensemble,
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )
    .expect("valid campaign")
}

fn assert_rows_bitwise_eq(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: row {i} width");
        for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: row {i} col {j}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    let c = campaign(300.0);
    let d = full_factorial_2k(4).expect("design");
    let sequential = c.run_design(&d, 1).expect("sequential run");
    // The sequential path must itself equal per-point evaluation.
    for (i, point) in d.points().iter().enumerate() {
        let y = c.evaluate_coded(point).expect("point eval");
        assert_rows_bitwise_eq(
            &[y],
            &[sequential.responses[i].clone()],
            &format!("sequential vs evaluate_coded, point {i}"),
        );
    }
    for threads in [2, 8] {
        let parallel = c.run_design(&d, threads).expect("parallel run");
        assert_rows_bitwise_eq(
            &sequential.responses,
            &parallel.responses,
            &format!("{threads} threads"),
        );
        assert_eq!(sequential.coded, parallel.coded);
        assert_eq!(sequential.physical, parallel.physical);
    }
}

#[test]
fn ensemble_campaign_is_bit_identical_across_thread_counts() {
    let ec = lopsided_ensemble();
    let d = full_factorial_2k(4).expect("design");
    let sequential = ec.run_design(&d, 1).expect("sequential run");
    for threads in [2, 8] {
        let parallel = ec.run_design(&d, threads).expect("parallel run");
        for s in 0..3 {
            assert_rows_bitwise_eq(
                &sequential.per_scenario[s].responses,
                &parallel.per_scenario[s].responses,
                &format!("scenario {s}, {threads} threads"),
            );
        }
        assert_rows_bitwise_eq(
            &sequential.aggregate.responses,
            &parallel.aggregate.responses,
            &format!("aggregate, {threads} threads"),
        );
    }
}

#[test]
fn first_error_in_job_order_is_thread_count_invariant() {
    // A configure hook that poisons two specific design points with
    // *distinguishable* invalid configs: job order says the tick error
    // (earlier point) must win, never the capacitance error, no matter
    // how the queue interleaves.
    let factors = StandardFactors::default();
    let space = factors.space().expect("space");
    let configure: ehsim::core::experiment::Configure = Arc::new(move |phys: &[f64]| {
        let mut cfg = factors.config_for(phys);
        // Mark points via the task-period coordinate (decoded exactly).
        if (phys[1] - factors.task_period.0).abs() < 1e-9 {
            // Low task-period corner(s): invalid tick.
            cfg.tick_s = -7.0;
        }
        if (phys[3] - factors.tx_power.1).abs() < 1e-9 {
            // High TX corner(s): invalid capacitance.
            cfg.storage.capacitance = -3.0;
        }
        cfg
    });
    // Points: index 0 valid, index 1 capacitance-poisoned, index 2
    // tick-poisoned, index 3 both (tick reported first by validate),
    // remaining valid. First failing job is index 1.
    let coded = vec![
        vec![0.0, 0.0, 0.0, 0.0],
        vec![0.0, 0.0, 0.0, 1.0],
        vec![0.0, -1.0, 0.0, 0.0],
        vec![0.0, -1.0, 0.0, 1.0],
        vec![0.5, 0.5, 0.0, 0.0],
        vec![-0.5, 0.5, 0.0, 0.0],
    ];
    let design = Design::new(4, coded, "error-ordering").expect("design");
    let c = Campaign::new(
        space,
        configure,
        Scenario::stationary_machine(30.0),
        vec![Indicator::PacketsPerHour],
    )
    .expect("campaign");
    let mut messages = Vec::new();
    for threads in [1, 2, 4, 8] {
        let err = c
            .run_design(&design, threads)
            .expect_err("poisoned design must fail");
        messages.push(format!("{err}"));
    }
    // Job 1 (capacitance) is the smallest failing index: its message
    // must surface for every thread count.
    for m in &messages {
        assert!(
            m.contains("supercap") || m.contains("capacitance"),
            "expected the job-1 capacitance error, got: {m}"
        );
        assert_eq!(m, &messages[0], "error must be thread-count invariant");
    }
}

#[test]
fn lopsided_ensemble_parallel_pass_matches_per_scenario_campaigns() {
    // Cross-check the batched queue against independent single-scenario
    // campaigns (each themselves parallel): same numbers, bit for bit.
    let ec = lopsided_ensemble();
    let d = full_factorial_2k(4).expect("design");
    let batched = ec.run_design(&d, 8).expect("batched run");
    for s in 0..3 {
        let single = ec
            .campaign_for(s)
            .expect("scenario campaign")
            .run_design(&d, 4)
            .expect("single-scenario run");
        assert_rows_bitwise_eq(
            &single.responses,
            &batched.per_scenario[s].responses,
            &format!("scenario {s} vs dedicated campaign"),
        );
    }
}
