//! Integration tests for the sequential adaptive DoE subsystem: the
//! hard evaluation budget, the bit-identity of cache replays, the
//! determinism of the audit trail across scheduler thread counts, and
//! the equal-budget comparison against the one-shot flow.

use ehsim::core::experiment::{EnsembleCampaign, PolicyFactorSet, PolicyFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::{Scenario, ScenarioEnsemble};
use ehsim::core::sequential::{CachedEvaluator, SequentialCampaign};
use ehsim::doe::optimize::{Goal, RobustGoal};
use ehsim::doe::Design;

/// The fixture ensemble: stationary backbone plus the two
/// non-stationary workloads whose brown-out cliffs make the packet
/// response non-quadratic (a small copy of the e12 experiment's shape).
fn fixture_ensemble(duration_s: f64) -> ScenarioEnsemble {
    ScenarioEnsemble::new(vec![
        (Scenario::stationary_machine(duration_s), 0.40),
        (Scenario::fading_machine(duration_s), 0.35),
        (Scenario::intermittent_machine(duration_s), 0.25),
    ])
    .expect("valid ensemble")
}

/// Energy-constrained two-factor (tuning-only) fixture campaign.
fn fixture_campaign(duration_s: f64) -> EnsembleCampaign {
    let mut factors = PolicyFactors::standard(PolicyFactorSet::Static);
    factors.base.initial_position = factors.base.harvester.position_for_frequency(64.0);
    factors.c_store = (0.015, 0.06);
    factors.task_period = (0.5, 16.0);
    EnsembleCampaign::adaptive(
        factors,
        fixture_ensemble(duration_s),
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )
    .expect("valid campaign")
}

// (a) The budget is a hard ceiling: the loop never exceeds it for any
// budget, and the evaluator refuses an over-budget batch outright.
#[test]
fn budget_is_never_exceeded() {
    for budget in [5usize, 8, 11, 16] {
        let outcome = SequentialCampaign::new(fixture_campaign(60.0), 0, Goal::Maximize, budget)
            .expect("valid campaign")
            .with_threads(4)
            .run()
            .expect("runs within budget");
        assert!(
            outcome.evals_used <= budget,
            "budget {budget}: used {}",
            outcome.evals_used
        );
        assert_eq!(outcome.sims_used, outcome.evals_used * 3);
        // The audit's per-iteration fresh counts close the ledger.
        let audited: usize = outcome.report.iterations.iter().map(|r| r.n_fresh).sum();
        assert_eq!(audited, outcome.evals_used, "audit ledger must close");
    }
    // Direct evaluator-level refusal, with nothing simulated.
    let mut ev = CachedEvaluator::new(fixture_campaign(60.0), 2).with_budget(1);
    assert!(ev.evaluate(&[vec![0.0, 0.0], vec![0.5, 0.5]]).is_err());
    assert_eq!(ev.fresh_evals(), 0, "refused batch must not simulate");
}

// (b) Cache-hit replays are bit-identical to fresh runs.
#[test]
fn cache_replays_are_bit_identical_to_fresh_runs() {
    let points = vec![vec![0.3, -0.7], vec![-1.0, 1.0], vec![0.0, 0.0]];
    let mut cached = CachedEvaluator::new(fixture_campaign(90.0), 4);
    let first = cached.evaluate(&points).expect("fresh batch");
    let replay = cached.evaluate(&points).expect("replay batch");
    assert_eq!(cached.fresh_evals(), 3);
    assert_eq!(cached.cache_hits(), 3);
    // Replay vs the evaluator's own fresh pass: exact bits.
    for (f, r) in first.iter().zip(replay.iter()) {
        for (fs, rs) in f.per_scenario.iter().zip(r.per_scenario.iter()) {
            for (fv, rv) in fs.iter().zip(rs.iter()) {
                assert_eq!(fv.to_bits(), rv.to_bits());
            }
        }
    }
    // Replay vs an independent fresh evaluator (new cache, different
    // thread count): still exact bits.
    let mut fresh = CachedEvaluator::new(fixture_campaign(90.0), 1);
    let independent = fresh.evaluate(&points).expect("independent batch");
    assert_eq!(first, independent);
}

// (c) The audit trail is deterministic across 1/2/8 scheduler threads.
#[test]
fn audit_trail_is_deterministic_across_thread_counts() {
    let run = |threads: usize| {
        SequentialCampaign::new(fixture_campaign(90.0), 0, Goal::Maximize, 14)
            .expect("valid campaign")
            .with_threads(threads)
            .run()
            .expect("sequential campaign runs")
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    for other in [&two, &eight] {
        assert_eq!(one.audit_lines(), other.audit_lines());
        assert_eq!(one.best_coded, other.best_coded);
        assert_eq!(one.best_objective.to_bits(), other.best_objective.to_bits());
        assert_eq!(one.evals_used, other.evals_used);
        assert_eq!(one.cache_hits, other.cache_hits);
    }
    // The audit rendering carries every iteration.
    assert_eq!(one.audit_lines().len(), one.report.iterations.len());
}

// (d) Sequential matches or beats the one-shot CCD optimum at an equal
// evaluation budget on the fixture ensemble, with a nonzero cache-hit
// rate, both candidates fresh-sim verified.
#[test]
fn sequential_matches_or_beats_one_shot_at_equal_budget() {
    let campaign = fixture_campaign(120.0);
    let ccd = DesignChoice::FaceCenteredCcd { center_points: 3 };
    let budget = ccd.build(2).expect("ccd builds").n_runs();

    let surrogates = DoeFlow::new(ccd)
        .with_threads(4)
        .run_ensemble(&campaign)
        .expect("one-shot flow runs");
    let oneshot = surrogates
        .optimize_robust(0, Goal::Maximize, RobustGoal::WeightedMean, 42)
        .expect("robust optimisation");

    let outcome = SequentialCampaign::new(campaign.clone(), 0, Goal::Maximize, budget)
        .expect("valid campaign")
        .with_threads(4)
        .run()
        .expect("sequential campaign runs");
    assert!(outcome.evals_used <= budget, "equal budget violated");
    assert!(outcome.cache_hits > 0, "cache-hit rate must be nonzero");
    assert!(outcome.cache_hit_rate > 0.0);

    // Fresh verification of both candidates in one batched pass.
    let verify_design = Design::new(
        2,
        vec![oneshot.x.clone(), outcome.best_coded.clone()],
        "verify",
    )
    .expect("finite candidates");
    let verify = campaign
        .run_design(&verify_design, 4)
        .expect("verification sims");
    let oneshot_verified = verify.aggregate.responses[0][0];
    let sequential_verified = verify.aggregate.responses[1][0];
    assert!(
        sequential_verified >= oneshot_verified - 1e-9,
        "sequential {sequential_verified} must match or beat one-shot {oneshot_verified} \
         at the same {budget}-evaluation budget"
    );
    // The sequential claim is a simulated point: fresh verification
    // reproduces it bit-for-bit.
    assert_eq!(
        sequential_verified.to_bits(),
        outcome.best_objective.to_bits()
    );
}
