//! System-level verification that closed-loop frequency tuning pays for
//! itself under drifting excitation (experiment E5 in test form), and
//! that the behavioural power path agrees with the circuit-level
//! front-end.

use ehsim::node::{NodeConfig, SystemSimulator};
use ehsim::vibration::{DriftSchedule, Sine, VibrationSource};

#[test]
fn tuning_nets_more_energy_than_it_costs() {
    // The economics of tuning: the actuator spend is recouped during the
    // *stationary* period after a machine speed change — the machine
    // ramps 58 → 66 Hz in 15 minutes and then runs there for hours.
    // (During fast continuous drift the spend outpaces the gain; that
    // regime is exactly why the retune threshold is a DoE factor.)
    let mut base = NodeConfig::default_node();
    base.tick_s = 0.25;
    base.initial_position = base.harvester.position_for_frequency(58.0);
    base.storage.capacitance = 0.2;
    let duration = 6.5 * 3600.0;
    let src = DriftSchedule::new(vec![(0.0, 58.0), (900.0, 66.0)], 0.9).expect("valid schedule");

    let tuned = SystemSimulator::new(base.clone())
        .expect("valid config")
        .run(&src, duration)
        .expect("tuned run");
    let mut cfg_off = base;
    cfg_off.tuning.enabled = false;
    let untuned = SystemSimulator::new(cfg_off)
        .expect("valid config")
        .run(&src, duration)
        .expect("untuned run");

    let gain = tuned.harvested_energy_j - untuned.harvested_energy_j;
    assert!(
        gain > 2.0 * tuned.tuning_energy_j,
        "harvest gain {gain} J vs tuning cost {} J",
        tuned.tuning_energy_j
    );
    assert!(tuned.retune_count >= 2, "{tuned:?}");
    assert!(
        tuned.packets_delivered > 2 * untuned.packets_delivered,
        "tuned {} vs untuned {}",
        tuned.packets_delivered,
        untuned.packets_delivered
    );
}

#[test]
fn resonance_tracks_ambient_after_retunes() {
    let mut cfg = NodeConfig::default_node();
    cfg.tick_s = 0.25;
    cfg.tuning.check_interval_s = 60.0;
    cfg.initial_position = cfg.harvester.position_for_frequency(60.0);
    let src = DriftSchedule::new(vec![(0.0, 60.0), (1200.0, 68.0)], 0.9).expect("schedule");
    let (_, trace) = SystemSimulator::new(cfg)
        .expect("valid config")
        .run_with_trace(&src, 1800.0, 40)
        .expect("run with trace");
    let end_gap = (trace.resonance_hz.last().unwrap() - trace.ambient_hz.last().unwrap()).abs();
    assert!(end_gap < 2.0, "end gap {end_gap} Hz");
    // The resonance moved monotonically towards the ambient overall.
    let start_gap = (trace.resonance_hz[0] - trace.ambient_hz[0]).abs();
    assert!(end_gap <= start_gap + 1.0);
}

#[test]
fn behavioural_power_matches_circuit_frontend_magnitude() {
    // The node simulator's harvest path (analytic Thevenin + CW pump
    // fixed point) must land in the same ballpark as the circuit-level
    // front-end it abstracts.
    use ehsim::circuit::{LinearizedStateSpaceEngine, Probe, TransientConfig};
    use ehsim::power::frontend::build_frontend;
    use std::sync::Arc;

    let cfg = NodeConfig::default_node();
    let freq = 64.0;
    let amp = 0.9;
    let pos = cfg.harvester.position_for_frequency(freq);
    let v_store = 1.5;

    // Behavioural prediction.
    let (v_oc, z) = cfg
        .harvester
        .thevenin(pos, freq, amp)
        .expect("thevenin solves");
    let op = cfg
        .multiplier
        .operating_point(v_oc, z, freq, v_store)
        .expect("operating point solves");

    // Circuit measurement: charge a large cap pre-set to v_store and
    // read the average charging power from the voltage slope.
    let fe = build_frontend(
        &cfg.harvester,
        pos,
        Arc::new(Sine::new(amp, freq).expect("valid source")),
        &cfg.multiplier,
        2e-3,
        v_store,
        None,
    )
    .expect("frontend builds");
    let probe = Probe::NodeVoltage(fe.store_node_name.clone());
    let res = LinearizedStateSpaceEngine::default()
        .simulate(
            &fe.netlist,
            &TransientConfig::new(2.0, 2e-4).expect("config"),
            &[probe],
        )
        .expect("circuit runs");
    let sig = res
        .signal(&format!("v({})", fe.store_node_name))
        .expect("signal recorded");
    let k0 = sig.len() / 2;
    let dv = sig[sig.len() - 1] - sig[k0];
    let dt = res.time()[res.time().len() - 1] - res.time()[k0];
    let v_mid = 0.5 * (sig[sig.len() - 1] + sig[k0]);
    let p_circuit = 2e-3 * v_mid * dv / dt;

    assert!(
        op.p_store_w > 0.25 * p_circuit && op.p_store_w < 4.0 * p_circuit,
        "behavioural {} W vs circuit {} W",
        op.p_store_w,
        p_circuit
    );
}

#[test]
fn stationary_source_needs_no_retunes() {
    let mut cfg = NodeConfig::default_node();
    cfg.tick_s = 0.25;
    let f = cfg.harvester.resonant_frequency(cfg.initial_position);
    let src = Sine::new(0.9, f).expect("valid source");
    let m = SystemSimulator::new(cfg)
        .expect("valid config")
        .run(&src, 1800.0)
        .expect("run");
    assert_eq!(m.retune_count, 0, "{m:?}");
    assert!(m.measurement_count > 0);
    let _ = src.envelope(0.0);
}
