//! End-to-end accuracy of the DoE flow (experiment E1 in test form):
//! surrogates built from a moderate number of simulations must predict
//! fresh simulations with small error, and the whole flow must be
//! deterministic.

use ehsim::core::experiment::{Campaign, StandardFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::Scenario;
use ehsim::doe::optimize::Goal;

fn campaign(duration: f64) -> Campaign {
    Campaign::standard(
        StandardFactors::default(),
        Scenario::drifting_machine(duration),
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )
    .expect("valid campaign")
}

#[test]
fn rsm_predicts_fresh_simulations() {
    let c = campaign(1800.0);
    let surrogates = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
        .with_threads(8)
        .run(&c)
        .expect("flow succeeds");
    // Training fit is strong.
    assert!(
        surrogates.model(0).r_squared() > 0.9,
        "packets R² = {}",
        surrogates.model(0).r_squared()
    );
    assert!(
        surrogates.model(1).r_squared() > 0.95,
        "margin R² = {}",
        surrogates.model(1).r_squared()
    );
    // Validation against 15 fresh LHS simulations: errors are a modest
    // fraction of the response range ("high accuracy" claim). The
    // packet-rate response crosses the brown-out cliff at small storage
    // sizes, which a quadratic cannot capture exactly — it is the worst
    // case and still stays below a third of the range.
    let rows = surrogates.validate(&c, 15, 99, 8).expect("validation runs");
    for row in &rows {
        assert!(
            row.rmse_pct_of_range < 30.0,
            "{}: rmse {}% of range",
            row.indicator,
            row.rmse_pct_of_range
        );
    }
    // The brown-out margin surface is nearly exact.
    assert!(
        rows[1].rmse_pct_of_range < 10.0,
        "margin rmse {}%",
        rows[1].rmse_pct_of_range
    );
}

#[test]
fn flow_is_deterministic() {
    let c = campaign(600.0);
    let flow = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 }).with_threads(4);
    let a = flow.run(&c).expect("first run");
    let b = flow.run(&c).expect("second run");
    assert_eq!(a.campaign_result().responses, b.campaign_result().responses);
    for i in 0..a.indicators().len() {
        assert_eq!(a.model(i).coefficients(), b.model(i).coefficients());
    }
}

#[test]
fn optimum_on_surface_verifies_in_simulation() {
    let c = campaign(1800.0);
    let surrogates = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
        .with_threads(8)
        .run(&c)
        .expect("flow succeeds");
    let best = surrogates
        .optimize_constrained(0, Goal::Maximize, &[(1, 0.2)], 7)
        .expect("optimisation runs");
    let simulated = c.evaluate_coded(&best.x).expect("verification sim");
    // The model's predicted packet rate holds up in simulation.
    let rel_err = (best.value - simulated[0]).abs() / simulated[0].max(1.0);
    assert!(
        rel_err < 0.15,
        "predicted {} vs simulated {} ({}% error)",
        best.value,
        simulated[0],
        100.0 * rel_err
    );
    // And the constraint actually holds (with slack for model error).
    assert!(
        simulated[1] > 0.0,
        "margin constraint violated: {}",
        simulated[1]
    );
}

#[test]
fn stepwise_reduction_keeps_accuracy() {
    let c = campaign(900.0);
    let full = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
        .with_threads(8)
        .run(&c)
        .expect("full flow");
    let reduced = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
        .with_stepwise(0.05)
        .with_threads(8)
        .run(&c)
        .expect("reduced flow");
    // The reduced margin model uses fewer terms…
    assert!(reduced.model(1).p() <= full.model(1).p());
    // …but predicts essentially the same surface at probe points.
    for x in [
        [0.0, 0.0, 0.0, 0.0],
        [0.5, -0.5, 0.3, -0.7],
        [-0.8, 0.8, -0.2, 0.4],
    ] {
        let a = full.predict(1, &x).expect("full prediction");
        let b = reduced.predict(1, &x).expect("reduced prediction");
        assert!((a - b).abs() < 0.15, "full {a} vs reduced {b} at {x:?}");
    }
}
