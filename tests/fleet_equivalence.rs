//! Differential suite for the fleet simulator's node-phase dispatch.
//!
//! The contract under test: a [`FleetSimulator`] run — whatever the
//! dispatch strategy (auto, forced-batched, per-sim) and whatever the
//! scheduler thread count — is **bit-identical, node for node**, to a
//! sequential oracle loop that prepares and runs each node's
//! simulation by hand, straight from the spec, with no fleet machinery
//! involved. This is the network-layer extension of the batch kernel's
//! lane-for-lane bit-exactness contract, checked across 1/2/8 threads
//! for both homogeneous (batched-dispatch) and mixed-tick
//! (per-sim-fallback) fleets, and through to the derived
//! [`ehsim::net::FleetMetrics`] record.

use ehsim::net::{
    node_seed, Dispatch, FleetEnvironment, FleetSimulator, FleetSpec, Placement, Point,
};
use ehsim::node::{NodeConfig, NodeMetrics, PreparedSimulator};

/// The oracle: one hand-rolled `PreparedSimulator` per node, run
/// sequentially against the node's split vibration stream — no
/// `FleetSimulator`, no batch kernel, no scheduler.
fn oracle_metrics(spec: &FleetSpec) -> Vec<NodeMetrics> {
    spec.nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let sim = PreparedSimulator::with_solver(node.config.clone(), spec.solver)
                .expect("oracle node prepares");
            let source = spec
                .environment
                .source_for(node_seed(spec.fleet_seed, i))
                .expect("oracle node source builds");
            sim.run(source.as_ref(), spec.duration_s)
                .expect("oracle node runs")
        })
        .collect()
}

fn assert_metrics_bitwise_eq(a: &NodeMetrics, b: &NodeMetrics, node: usize, label: &str) {
    assert_eq!(
        a.packets_delivered, b.packets_delivered,
        "{label}: node {node} packets"
    );
    assert_eq!(
        a.brownout_count, b.brownout_count,
        "{label}: node {node} brownouts"
    );
    assert_eq!(
        a.retune_count, b.retune_count,
        "{label}: node {node} retunes"
    );
    assert_eq!(
        a.measurement_count, b.measurement_count,
        "{label}: node {node} measurements"
    );
    for (x, y, field) in [
        (a.uptime_fraction, b.uptime_fraction, "uptime_fraction"),
        (a.tuning_energy_j, b.tuning_energy_j, "tuning_energy_j"),
        (
            a.harvested_energy_j,
            b.harvested_energy_j,
            "harvested_energy_j",
        ),
        (
            a.consumed_energy_j,
            b.consumed_energy_j,
            "consumed_energy_j",
        ),
        (a.min_v_store, b.min_v_store, "min_v_store"),
        (a.final_v_store, b.final_v_store, "final_v_store"),
        (
            a.avg_harvest_power_w,
            b.avg_harvest_power_w,
            "avg_harvest_power_w",
        ),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: node {node} {field} differs ({x} vs {y})"
        );
    }
}

fn homogeneous_spec(n: usize) -> FleetSpec {
    let positions = Placement::UniformRandom {
        n,
        width_m: 80.0,
        height_m: 80.0,
        seed: 17,
    }
    .positions()
    .expect("valid placement");
    let mut cfg = NodeConfig::default_node();
    cfg.tick_s = 0.5;
    let mut spec = FleetSpec::homogeneous(cfg, positions, Point::new(40.0, 40.0), 30.0, 45.0);
    spec.environment = FleetEnvironment::factory_floor();
    spec
}

/// A mixed-tick fleet: same floor, but a third of the nodes run a
/// finer tick — batched dispatch must refuse it and auto dispatch
/// must fall back per-sim without changing a bit.
fn mixed_tick_spec(n: usize) -> FleetSpec {
    let mut spec = homogeneous_spec(n);
    for (i, node) in spec.nodes.iter_mut().enumerate() {
        if i % 3 == 0 {
            node.config.tick_s = 0.25;
        }
    }
    spec
}

#[test]
fn homogeneous_fleet_auto_dispatches_to_batches() {
    let fleet = FleetSimulator::new(homogeneous_spec(13)).expect("valid fleet");
    assert!(fleet.is_homogeneous());
}

#[test]
fn mixed_tick_fleet_is_heterogeneous() {
    let fleet = FleetSimulator::new(mixed_tick_spec(13)).expect("valid fleet");
    assert!(!fleet.is_homogeneous());
    assert!(fleet.run_with_dispatch(2, Dispatch::Batched).is_err());
}

#[test]
fn batched_dispatch_is_bit_identical_to_oracle_across_threads() {
    let spec = homogeneous_spec(13);
    let oracle = oracle_metrics(&spec);
    let fleet = FleetSimulator::new(spec).expect("valid fleet");
    for threads in [1, 2, 8] {
        for (dispatch, label) in [
            (Dispatch::Auto, "auto"),
            (Dispatch::Batched, "batched"),
            (Dispatch::PerSim, "per-sim"),
        ] {
            let out = fleet
                .run_with_dispatch(threads, dispatch)
                .expect("fleet runs");
            assert_eq!(out.per_node.len(), oracle.len());
            for (i, (a, b)) in oracle.iter().zip(&out.per_node).enumerate() {
                assert_metrics_bitwise_eq(a, b, i, &format!("{label}@{threads}t"));
            }
        }
    }
}

#[test]
fn mixed_tick_fleet_is_bit_identical_to_oracle_across_threads() {
    let spec = mixed_tick_spec(11);
    let oracle = oracle_metrics(&spec);
    let fleet = FleetSimulator::new(spec).expect("valid fleet");
    for threads in [1, 2, 8] {
        let out = fleet.run(threads).expect("fleet runs");
        for (i, (a, b)) in oracle.iter().zip(&out.per_node).enumerate() {
            assert_metrics_bitwise_eq(a, b, i, &format!("mixed-auto@{threads}t"));
        }
    }
}

#[test]
fn fleet_metrics_are_invariant_to_threads_and_dispatch() {
    let fleet = FleetSimulator::new(homogeneous_spec(13)).expect("valid fleet");
    let base = fleet
        .run_with_dispatch(1, Dispatch::PerSim)
        .expect("fleet runs");
    for threads in [1, 2, 8] {
        for dispatch in [Dispatch::Auto, Dispatch::Batched, Dispatch::PerSim] {
            let out = fleet
                .run_with_dispatch(threads, dispatch)
                .expect("fleet runs");
            let (m, n) = (&base.metrics, &out.metrics);
            for (a, b, field) in [
                (
                    m.packets_originated,
                    n.packets_originated,
                    "packets_originated",
                ),
                (
                    m.packets_delivered,
                    n.packets_delivered,
                    "packets_delivered",
                ),
                (m.relay_energy_j, n.relay_energy_j, "relay_energy_j"),
                (m.first_death_s, n.first_death_s, "first_death_s"),
                (m.residual_mean_j, n.residual_mean_j, "residual_mean_j"),
                (
                    m.residual_spread_j,
                    n.residual_spread_j,
                    "residual_spread_j",
                ),
                (
                    m.min_brownout_margin_v,
                    n.min_brownout_margin_v,
                    "min_brownout_margin_v",
                ),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{dispatch:?}@{threads}t: {field} differs ({a} vs {b})"
                );
            }
            for (i, (x, y)) in base.net.iter().zip(&out.net).enumerate() {
                assert_eq!(x, y, "{dispatch:?}@{threads}t: node {i} net stats differ");
            }
        }
    }
}

/// Per-node error capture: a fleet with one invalid node reports the
/// smallest failing node index through the aggregate entry point while
/// `run_nodes` captures the failure individually.
#[test]
fn smallest_failing_node_is_reported() {
    let mut spec = homogeneous_spec(9);
    // Zero-capacitance storage fails preparation.
    spec.nodes[4].config.storage.capacitance = 0.0;
    spec.nodes[7].config.storage.capacitance = 0.0;
    match FleetSimulator::new(spec) {
        Err(ehsim::net::NetError::Node { node, .. }) => assert_eq!(node, 4),
        Err(other) => panic!("expected smallest-failing-node error, got {other:?}"),
        Ok(_) => panic!("expected smallest-failing-node error, got a fleet"),
    }
}

// ---------------------------------------------------------------------------
// Route epochs, parallel prep, and the legacy static-accounting oracle
// ---------------------------------------------------------------------------

use ehsim::net::{NetError, RoutingPolicy, Topology};

/// A homogeneous fleet with one deliberately starved node: a small
/// supercap, no tuning controller (its startup actuation would empty
/// the cap instantly anyway), and a heavy fixed sensing duty, so the
/// node browns out partway through the run and the exclusion-set /
/// route-repair machinery has real work to do. The tick is unchanged,
/// so the fleet stays batched-dispatch eligible.
fn starved_node_spec(n: usize) -> FleetSpec {
    let mut spec = homogeneous_spec(n);
    let cfg = &mut spec.nodes[3].config;
    cfg.policy = ehsim::node::DutyCyclePolicy::Fixed;
    cfg.tuning.enabled = false;
    cfg.storage.capacitance = 0.0015;
    cfg.task.period_s = 1.0;
    cfg.task.sense_power_w = 0.02;
    spec
}

/// A faithful reimplementation of the *original* (pre-route-epoch)
/// single-pass network accounting, straight from the spec: all-pairs
/// topology build, `O(V²)` reference Dijkstra, one headroom/demand/
/// flow pass over the full-run node metrics.
struct LegacyAccounts {
    originated: Vec<f64>,
    delivered: Vec<f64>,
    demand: Vec<f64>,
    spent: Vec<f64>,
    headroom: Vec<f64>,
    residual: Vec<f64>,
    hops: Vec<Option<usize>>,
    browned: Vec<bool>,
    death_s: Vec<Option<f64>>,
    first_death_s: f64,
    relay_hops: f64,
    residual_mean: f64,
    residual_spread: f64,
}

fn legacy_static_accounting(spec: &FleetSpec, per_node: &[NodeMetrics]) -> LegacyAccounts {
    let n = per_node.len();
    let positions: Vec<Point> = spec.nodes.iter().map(|nd| nd.position).collect();
    let topo =
        Topology::new_all_pairs(positions, spec.sink, spec.range_m).expect("oracle topology");
    let sink = topo.sink_index();
    let browned: Vec<bool> = per_node.iter().map(|m| m.brownout_count > 0).collect();
    let routes = match spec.routing {
        RoutingPolicy::MinHop => topo.min_hop_routes(),
        RoutingPolicy::EnergyAware => topo
            .energy_aware_routes_reference(&spec.radio, spec.payload_bits, &browned)
            .expect("oracle routes"),
    };
    let paths: Vec<Option<Vec<usize>>> = (0..n).map(|i| routes.path(i).ok()).collect();
    let vpos = |v: usize| {
        if v == sink {
            topo.sink()
        } else {
            topo.position(v)
        }
    };
    let hop_energy = |path: &[usize], j: usize| {
        let d = vpos(path[j]).distance_m(&vpos(path[j + 1]));
        spec.radio.hop_energy_j(spec.payload_bits, d)
    };

    let headroom: Vec<f64> = (0..n)
        .map(|i| {
            if browned[i] {
                0.0
            } else {
                let cfg = &spec.nodes[i].config;
                (cfg.storage.energy_j(per_node[i].final_v_store)
                    - cfg.storage.energy_j(cfg.thresholds.v_off))
                .max(0.0)
            }
        })
        .collect();
    let originated: Vec<f64> = (0..n)
        .map(|i| per_node[i].packets_delivered as f64)
        .collect();

    let mut demand = vec![0.0f64; n];
    for i in 0..n {
        let Some(path) = &paths[i] else { continue };
        for j in 1..path.len() - 1 {
            demand[path[j]] += originated[i] * hop_energy(path, j);
        }
    }
    let scale: Vec<f64> = (0..n)
        .map(|u| {
            if demand[u] > headroom[u] && demand[u] > 0.0 {
                headroom[u] / demand[u]
            } else {
                1.0
            }
        })
        .collect();

    let mut spent = vec![0.0f64; n];
    let mut delivered = vec![0.0f64; n];
    let mut relay_hops = 0.0f64;
    for i in 0..n {
        let Some(path) = &paths[i] else { continue };
        let mut flow = originated[i];
        for j in 1..path.len() - 1 {
            let u = path[j];
            let d = vpos(u).distance_m(&vpos(path[j + 1]));
            let arriving = flow;
            flow *= scale[u];
            spent[u] += arriving * spec.radio.rx_energy_j(spec.payload_bits)
                + flow * spec.radio.tx_energy_j(spec.payload_bits, d);
            relay_hops += arriving;
        }
        delivered[i] = flow;
    }

    let mut death_s: Vec<Option<f64>> = vec![None; n];
    let mut first_death_s = spec.duration_s;
    for u in 0..n {
        if !browned[u] && demand[u] > headroom[u] {
            let t = spec.duration_s * headroom[u] / demand[u];
            if t < first_death_s {
                first_death_s = t;
            }
            death_s[u] = Some(t);
        }
    }

    let residual: Vec<f64> = (0..n).map(|u| (headroom[u] - spent[u]).max(0.0)).collect();
    let residual_mean = residual.iter().sum::<f64>() / n as f64;
    let residual_spread = (residual
        .iter()
        .map(|r| (r - residual_mean) * (r - residual_mean))
        .sum::<f64>()
        / n as f64)
        .sqrt();

    LegacyAccounts {
        hops: paths
            .iter()
            .map(|p| p.as_ref().map(|p| p.len() - 1))
            .collect(),
        originated,
        delivered,
        demand,
        spent,
        headroom,
        residual,
        browned,
        death_s,
        first_death_s,
        relay_hops,
        residual_mean,
        residual_spread,
    }
}

/// The static-routing regression: a `route_epochs = 1` run reproduces
/// the original single-pass accounting **bit for bit** — metrics and
/// every per-node network account — for both routing policies, with
/// a browned-out node in the fleet so the exclusion and fluid-scaling
/// branches are genuinely exercised.
#[test]
fn single_epoch_run_reproduces_legacy_static_accounting() {
    for routing in [RoutingPolicy::EnergyAware, RoutingPolicy::MinHop] {
        let mut spec = starved_node_spec(13);
        spec.routing = routing;
        assert_eq!(spec.route_epochs, 1, "homogeneous() must default static");
        let fleet = FleetSimulator::new(spec.clone()).expect("valid fleet");
        let out = fleet.run(4).expect("fleet runs");
        assert!(
            out.per_node.iter().any(|m| m.brownout_count > 0),
            "{routing:?}: the starved node must brown out for this regression to bite"
        );
        let legacy = legacy_static_accounting(&spec, &out.per_node);

        assert_eq!(out.metrics.route_repairs, 0, "{routing:?}: static run");
        assert_eq!(out.metrics.epochs.len(), 1, "{routing:?}: one epoch");
        for (i, s) in out.net.iter().enumerate() {
            let label = format!("{routing:?} node {i}");
            assert_eq!(
                s.originated.to_bits(),
                legacy.originated[i].to_bits(),
                "{label} originated"
            );
            assert_eq!(
                s.delivered.to_bits(),
                legacy.delivered[i].to_bits(),
                "{label} delivered"
            );
            assert_eq!(
                s.relay_demand_j.to_bits(),
                legacy.demand[i].to_bits(),
                "{label} demand"
            );
            assert_eq!(
                s.relay_spent_j.to_bits(),
                legacy.spent[i].to_bits(),
                "{label} spent"
            );
            assert_eq!(
                s.headroom_j.to_bits(),
                legacy.headroom[i].to_bits(),
                "{label} headroom"
            );
            assert_eq!(
                s.residual_j.to_bits(),
                legacy.residual[i].to_bits(),
                "{label} residual"
            );
            assert_eq!(s.hops_to_sink, legacy.hops[i], "{label} hops");
            assert_eq!(s.browned_out, legacy.browned[i], "{label} browned");
            assert_eq!(s.dead, legacy.death_s[i].is_some(), "{label} dead");
            assert_eq!(
                s.death_s.map(f64::to_bits),
                legacy.death_s[i].map(f64::to_bits),
                "{label} death_s"
            );
        }
        let m = &out.metrics;
        let orig: f64 = legacy.originated.iter().sum();
        let del: f64 = legacy.delivered.iter().sum();
        let relay: f64 = legacy.spent.iter().sum();
        assert_eq!(m.packets_originated.to_bits(), orig.to_bits());
        assert_eq!(m.packets_delivered.to_bits(), del.to_bits());
        assert_eq!(m.relay_energy_j.to_bits(), relay.to_bits());
        let frac = if orig > 0.0 { del / orig } else { 1.0 };
        assert_eq!(m.delivery_fraction.to_bits(), frac.to_bits());
        let hop = if legacy.relay_hops > 0.0 {
            relay / legacy.relay_hops
        } else {
            0.0
        };
        assert_eq!(m.mean_hop_relay_energy_j.to_bits(), hop.to_bits());
        assert_eq!(m.first_death_s.to_bits(), legacy.first_death_s.to_bits());
        assert_eq!(m.residual_mean_j.to_bits(), legacy.residual_mean.to_bits());
        assert_eq!(
            m.residual_spread_j.to_bits(),
            legacy.residual_spread.to_bits()
        );
        assert_eq!(
            m.dead_nodes as usize,
            legacy.death_s.iter().filter(|d| d.is_some()).count()
        );
        assert_eq!(
            m.browned_out_nodes as usize,
            legacy.browned.iter().filter(|&&b| b).count()
        );
        assert_eq!(
            m.unreachable_nodes as usize,
            legacy.hops.iter().filter(|h| h.is_none()).count()
        );
    }
}

/// Route epochs keep the determinism contract: a multi-epoch run with
/// a mid-run brown-out and a real route repair is bit-identical —
/// metrics, audit trail, per-node accounts — across thread counts and
/// dispatch strategies.
#[test]
fn epoch_runs_are_bit_identical_across_threads_and_dispatch() {
    let mut spec = starved_node_spec(13);
    spec.route_epochs = 4;
    let fleet = FleetSimulator::new(spec).expect("valid fleet");
    let base = fleet
        .run_with_dispatch(1, Dispatch::PerSim)
        .expect("base run");
    assert!(
        base.metrics.route_repairs >= 1,
        "the starved node's brown-out must trigger a repair"
    );
    assert_eq!(base.metrics.epochs.len(), 4);
    for threads in [1, 2, 8] {
        for dispatch in [Dispatch::Auto, Dispatch::Batched, Dispatch::PerSim] {
            let out = fleet
                .run_with_dispatch(threads, dispatch)
                .expect("fleet runs");
            let label = format!("{dispatch:?}@{threads}t");
            assert_eq!(
                base.metrics.route_repairs, out.metrics.route_repairs,
                "{label}: route_repairs"
            );
            for (a, b) in base.metrics.epochs.iter().zip(&out.metrics.epochs) {
                assert_eq!(a.epoch, b.epoch, "{label}: epoch index");
                assert_eq!(a.newly_browned, b.newly_browned, "{label}: newly_browned");
                assert_eq!(
                    a.newly_stranded, b.newly_stranded,
                    "{label}: newly_stranded"
                );
                assert_eq!(a.rerouted, b.rerouted, "{label}: rerouted");
                assert_eq!(
                    a.packets_delivered.to_bits(),
                    b.packets_delivered.to_bits(),
                    "{label}: epoch {} delivered",
                    a.epoch
                );
                assert_eq!(
                    a.packets_originated.to_bits(),
                    b.packets_originated.to_bits(),
                    "{label}: epoch {} originated",
                    a.epoch
                );
            }
            for (x, y, field) in [
                (
                    base.metrics.packets_delivered,
                    out.metrics.packets_delivered,
                    "packets_delivered",
                ),
                (
                    base.metrics.relay_energy_j,
                    out.metrics.relay_energy_j,
                    "relay_energy_j",
                ),
                (
                    base.metrics.first_death_s,
                    out.metrics.first_death_s,
                    "first_death_s",
                ),
                (
                    base.metrics.residual_spread_j,
                    out.metrics.residual_spread_j,
                    "residual_spread_j",
                ),
            ] {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: {field}");
            }
            for (i, (x, y)) in base.net.iter().zip(&out.net).enumerate() {
                assert_eq!(x, y, "{label}: node {i} net stats differ");
            }
            for (i, (a, b)) in base.per_node.iter().zip(&out.per_node).enumerate() {
                assert_metrics_bitwise_eq(a, b, i, &label);
            }
        }
    }
}

/// Parallel per-node preparation is bit-identical to sequential
/// preparation: same prepared fleet, same run output — for both the
/// homogeneous and the mixed-tick (per-sim fallback) fleet shapes.
#[test]
fn parallel_prep_is_bit_identical_to_sequential() {
    for (spec, what) in [
        (homogeneous_spec(13), "homogeneous"),
        (mixed_tick_spec(11), "mixed-tick"),
    ] {
        let seq = FleetSimulator::new(spec.clone()).expect("sequential prep");
        for threads in [2, 8] {
            let par = FleetSimulator::prepare(spec.clone(), threads).expect("parallel prep");
            assert_eq!(seq.node_count(), par.node_count(), "{what}: node count");
            assert_eq!(
                seq.is_homogeneous(),
                par.is_homogeneous(),
                "{what}: homogeneity"
            );
            let a = seq.run(2).expect("sequential-prep fleet runs");
            let b = par.run(2).expect("parallel-prep fleet runs");
            for (i, (x, y)) in a.per_node.iter().zip(&b.per_node).enumerate() {
                assert_metrics_bitwise_eq(x, y, i, &format!("{what} prep@{threads}t"));
            }
            assert_eq!(
                a.metrics.packets_delivered.to_bits(),
                b.metrics.packets_delivered.to_bits(),
                "{what} prep@{threads}t: packets_delivered"
            );
            assert_eq!(
                a.metrics.residual_spread_j.to_bits(),
                b.metrics.residual_spread_j.to_bits(),
                "{what} prep@{threads}t: residual_spread_j"
            );
            for (i, (x, y)) in a.net.iter().zip(&b.net).enumerate() {
                assert_eq!(x, y, "{what} prep@{threads}t: node {i} net stats");
            }
        }
    }
}

/// The smallest-failing-node contract holds for *parallel* prep at
/// every thread count: validation is total (no node's check is
/// abandoned because another failed first), so the reported node is
/// always 4 — never 7, never a scheduling accident.
#[test]
fn smallest_failing_node_is_thread_count_invariant() {
    let mut spec = homogeneous_spec(9);
    spec.nodes[4].config.storage.capacitance = 0.0;
    spec.nodes[7].config.storage.capacitance = 0.0;
    for threads in [1, 2, 8] {
        match FleetSimulator::prepare(spec.clone(), threads) {
            Err(NetError::Node { node, .. }) => {
                assert_eq!(node, 4, "prep@{threads}t reported the wrong node")
            }
            Err(other) => panic!("prep@{threads}t: expected node error, got {other:?}"),
            Ok(_) => panic!("prep@{threads}t: expected node error, got a fleet"),
        }
    }
}

/// Environment-factory failures obey the same contract: with factory
/// failures at nodes 2 and 5 *and* a config failure at node 6, the
/// surfaced error is always node 2's environment error — across
/// every thread count, with no node's validation abandoned.
#[test]
fn env_factory_failure_reports_smallest_node_across_threads() {
    let mut spec = homogeneous_spec(9);
    spec.nodes[6].config.storage.capacitance = 0.0;
    let bad = [node_seed(spec.fleet_seed, 2), node_seed(spec.fleet_seed, 5)];
    let floor = FleetEnvironment::factory_floor();
    spec.environment = FleetEnvironment::new("failing-floor", move |seed| {
        if bad.contains(&seed) {
            Err(NetError::InvalidParameter {
                message: format!("synthetic factory failure for stream seed {seed}"),
            })
        } else {
            floor.source_for(seed)
        }
    });
    for threads in [1, 2, 8] {
        match FleetSimulator::prepare(spec.clone(), threads) {
            Err(NetError::InvalidParameter { message }) => {
                assert!(
                    message.starts_with("node 2:"),
                    "prep@{threads}t surfaced the wrong failure: {message}"
                );
            }
            Err(other) => panic!("prep@{threads}t: expected env error, got {other:?}"),
            Ok(_) => panic!("prep@{threads}t: expected env error, got a fleet"),
        }
    }
}
