//! Differential suite for the fleet simulator's node-phase dispatch.
//!
//! The contract under test: a [`FleetSimulator`] run — whatever the
//! dispatch strategy (auto, forced-batched, per-sim) and whatever the
//! scheduler thread count — is **bit-identical, node for node**, to a
//! sequential oracle loop that prepares and runs each node's
//! simulation by hand, straight from the spec, with no fleet machinery
//! involved. This is the network-layer extension of the batch kernel's
//! lane-for-lane bit-exactness contract, checked across 1/2/8 threads
//! for both homogeneous (batched-dispatch) and mixed-tick
//! (per-sim-fallback) fleets, and through to the derived
//! [`ehsim::net::FleetMetrics`] record.

use ehsim::net::{
    node_seed, Dispatch, FleetEnvironment, FleetSimulator, FleetSpec, Placement, Point,
};
use ehsim::node::{NodeConfig, NodeMetrics, PreparedSimulator};

/// The oracle: one hand-rolled `PreparedSimulator` per node, run
/// sequentially against the node's split vibration stream — no
/// `FleetSimulator`, no batch kernel, no scheduler.
fn oracle_metrics(spec: &FleetSpec) -> Vec<NodeMetrics> {
    spec.nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let sim = PreparedSimulator::with_solver(node.config.clone(), spec.solver)
                .expect("oracle node prepares");
            let source = spec
                .environment
                .source_for(node_seed(spec.fleet_seed, i))
                .expect("oracle node source builds");
            sim.run(source.as_ref(), spec.duration_s)
                .expect("oracle node runs")
        })
        .collect()
}

fn assert_metrics_bitwise_eq(a: &NodeMetrics, b: &NodeMetrics, node: usize, label: &str) {
    assert_eq!(
        a.packets_delivered, b.packets_delivered,
        "{label}: node {node} packets"
    );
    assert_eq!(
        a.brownout_count, b.brownout_count,
        "{label}: node {node} brownouts"
    );
    assert_eq!(
        a.retune_count, b.retune_count,
        "{label}: node {node} retunes"
    );
    assert_eq!(
        a.measurement_count, b.measurement_count,
        "{label}: node {node} measurements"
    );
    for (x, y, field) in [
        (a.uptime_fraction, b.uptime_fraction, "uptime_fraction"),
        (a.tuning_energy_j, b.tuning_energy_j, "tuning_energy_j"),
        (
            a.harvested_energy_j,
            b.harvested_energy_j,
            "harvested_energy_j",
        ),
        (
            a.consumed_energy_j,
            b.consumed_energy_j,
            "consumed_energy_j",
        ),
        (a.min_v_store, b.min_v_store, "min_v_store"),
        (a.final_v_store, b.final_v_store, "final_v_store"),
        (
            a.avg_harvest_power_w,
            b.avg_harvest_power_w,
            "avg_harvest_power_w",
        ),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: node {node} {field} differs ({x} vs {y})"
        );
    }
}

fn homogeneous_spec(n: usize) -> FleetSpec {
    let positions = Placement::UniformRandom {
        n,
        width_m: 80.0,
        height_m: 80.0,
        seed: 17,
    }
    .positions()
    .expect("valid placement");
    let mut cfg = NodeConfig::default_node();
    cfg.tick_s = 0.5;
    let mut spec = FleetSpec::homogeneous(cfg, positions, Point::new(40.0, 40.0), 30.0, 45.0);
    spec.environment = FleetEnvironment::factory_floor();
    spec
}

/// A mixed-tick fleet: same floor, but a third of the nodes run a
/// finer tick — batched dispatch must refuse it and auto dispatch
/// must fall back per-sim without changing a bit.
fn mixed_tick_spec(n: usize) -> FleetSpec {
    let mut spec = homogeneous_spec(n);
    for (i, node) in spec.nodes.iter_mut().enumerate() {
        if i % 3 == 0 {
            node.config.tick_s = 0.25;
        }
    }
    spec
}

#[test]
fn homogeneous_fleet_auto_dispatches_to_batches() {
    let fleet = FleetSimulator::new(homogeneous_spec(13)).expect("valid fleet");
    assert!(fleet.is_homogeneous());
}

#[test]
fn mixed_tick_fleet_is_heterogeneous() {
    let fleet = FleetSimulator::new(mixed_tick_spec(13)).expect("valid fleet");
    assert!(!fleet.is_homogeneous());
    assert!(fleet.run_with_dispatch(2, Dispatch::Batched).is_err());
}

#[test]
fn batched_dispatch_is_bit_identical_to_oracle_across_threads() {
    let spec = homogeneous_spec(13);
    let oracle = oracle_metrics(&spec);
    let fleet = FleetSimulator::new(spec).expect("valid fleet");
    for threads in [1, 2, 8] {
        for (dispatch, label) in [
            (Dispatch::Auto, "auto"),
            (Dispatch::Batched, "batched"),
            (Dispatch::PerSim, "per-sim"),
        ] {
            let out = fleet
                .run_with_dispatch(threads, dispatch)
                .expect("fleet runs");
            assert_eq!(out.per_node.len(), oracle.len());
            for (i, (a, b)) in oracle.iter().zip(&out.per_node).enumerate() {
                assert_metrics_bitwise_eq(a, b, i, &format!("{label}@{threads}t"));
            }
        }
    }
}

#[test]
fn mixed_tick_fleet_is_bit_identical_to_oracle_across_threads() {
    let spec = mixed_tick_spec(11);
    let oracle = oracle_metrics(&spec);
    let fleet = FleetSimulator::new(spec).expect("valid fleet");
    for threads in [1, 2, 8] {
        let out = fleet.run(threads).expect("fleet runs");
        for (i, (a, b)) in oracle.iter().zip(&out.per_node).enumerate() {
            assert_metrics_bitwise_eq(a, b, i, &format!("mixed-auto@{threads}t"));
        }
    }
}

#[test]
fn fleet_metrics_are_invariant_to_threads_and_dispatch() {
    let fleet = FleetSimulator::new(homogeneous_spec(13)).expect("valid fleet");
    let base = fleet
        .run_with_dispatch(1, Dispatch::PerSim)
        .expect("fleet runs");
    for threads in [1, 2, 8] {
        for dispatch in [Dispatch::Auto, Dispatch::Batched, Dispatch::PerSim] {
            let out = fleet
                .run_with_dispatch(threads, dispatch)
                .expect("fleet runs");
            let (m, n) = (&base.metrics, &out.metrics);
            for (a, b, field) in [
                (
                    m.packets_originated,
                    n.packets_originated,
                    "packets_originated",
                ),
                (
                    m.packets_delivered,
                    n.packets_delivered,
                    "packets_delivered",
                ),
                (m.relay_energy_j, n.relay_energy_j, "relay_energy_j"),
                (m.first_death_s, n.first_death_s, "first_death_s"),
                (m.residual_mean_j, n.residual_mean_j, "residual_mean_j"),
                (
                    m.residual_spread_j,
                    n.residual_spread_j,
                    "residual_spread_j",
                ),
                (
                    m.min_brownout_margin_v,
                    n.min_brownout_margin_v,
                    "min_brownout_margin_v",
                ),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{dispatch:?}@{threads}t: {field} differs ({a} vs {b})"
                );
            }
            for (i, (x, y)) in base.net.iter().zip(&out.net).enumerate() {
                assert_eq!(x, y, "{dispatch:?}@{threads}t: node {i} net stats differ");
            }
        }
    }
}

/// Per-node error capture: a fleet with one invalid node reports the
/// smallest failing node index through the aggregate entry point while
/// `run_nodes` captures the failure individually.
#[test]
fn smallest_failing_node_is_reported() {
    let mut spec = homogeneous_spec(9);
    // Zero-capacitance storage fails preparation.
    spec.nodes[4].config.storage.capacitance = 0.0;
    spec.nodes[7].config.storage.capacitance = 0.0;
    match FleetSimulator::new(spec) {
        Err(ehsim::net::NetError::Node { node, .. }) => assert_eq!(node, 4),
        Err(other) => panic!("expected smallest-failing-node error, got {other:?}"),
        Ok(_) => panic!("expected smallest-failing-node error, got a fleet"),
    }
}
