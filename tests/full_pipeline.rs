//! Full-stack pipeline smoke tests: every public layer of the
//! workspace composed together, from vibration input to a validated
//! optimised design.

use ehsim::core::experiment::{Campaign, Configure, StandardFactors};
use ehsim::core::explorer::{sweep_1d, sweep_2d};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::Scenario;
use ehsim::core::space::{DesignSpace, Factor};
use ehsim::core::tradeoff::pareto_front;
use ehsim::doe::anova::{anova, lack_of_fit};
use ehsim::doe::optimize::Goal;
use ehsim::doe::rsm::ResponseSurface;
use ehsim::node::NodeConfig;
use std::sync::Arc;

#[test]
fn custom_campaign_over_policy_parameters() {
    // A bespoke design problem over *energy-management* parameters:
    // tuning check interval and measurement cost — the knobs the paper's
    // title points at.
    let space = DesignSpace::new(vec![
        Factor::new("check_interval_s", 30.0, 600.0).expect("factor"),
        Factor::new("measure_energy_uj", 20.0, 500.0).expect("factor"),
    ])
    .expect("space");
    let configure: Configure = Arc::new(|phys: &[f64]| {
        let mut cfg = NodeConfig::default_node();
        cfg.tick_s = 0.25;
        cfg.tuning.check_interval_s = phys[0];
        cfg.tuning.measure_energy_j = phys[1] * 1e-6;
        cfg.initial_position = cfg.harvester.position_for_frequency(58.0);
        cfg
    });
    let campaign = Campaign::new(
        space,
        configure,
        Scenario::drifting_machine(1800.0),
        vec![Indicator::EnergyBalanceJ, Indicator::RetuneCount],
    )
    .expect("campaign");
    let surrogates = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
        .with_threads(8)
        .run(&campaign)
        .expect("flow");
    // Energy balance must degrade as measurements get more expensive.
    let cheap = surrogates.predict(0, &[0.0, -1.0]).expect("predict");
    let dear = surrogates.predict(0, &[0.0, 1.0]).expect("predict");
    assert!(
        cheap > dear,
        "cheap measurement {cheap} J vs expensive {dear} J"
    );
}

#[test]
fn anova_and_canonical_analysis_on_real_surfaces() {
    let campaign = Campaign::standard(
        StandardFactors::default(),
        Scenario::drifting_machine(1800.0),
        vec![Indicator::BrownoutMarginV],
    )
    .expect("campaign");
    let surrogates = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 4 })
        .with_threads(8)
        .run(&campaign)
        .expect("flow");
    let model = surrogates.model(0);
    // The margin response is strongly explained by the factors.
    let table = anova(model).expect("anova");
    assert!(table.p_value < 1e-6, "model F p-value {}", table.p_value);
    // Lack-of-fit is defined thanks to the centre replicates.
    let lof = lack_of_fit(model).expect("lof computes");
    assert!(lof.is_some());
    // Canonical analysis executes on the fitted quadratic.
    let rs = ResponseSurface::from_fitted(model).expect("surface");
    assert_eq!(rs.eigenvalues().len(), 4);
}

#[test]
fn exploration_tools_compose() {
    let campaign = Campaign::standard(
        StandardFactors::default(),
        Scenario::stationary_machine(600.0),
        vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
    )
    .expect("campaign");
    let surrogates = DoeFlow::new(DesignChoice::BoxBehnken { center_points: 3 })
        .with_threads(8)
        .run(&campaign)
        .expect("flow");
    let base = surrogates.space().center();
    let s1 = sweep_1d(&surrogates, 0, 1, &base, 15).expect("1d");
    assert_eq!(s1.xs.len(), 15);
    let s2 = sweep_2d(&surrogates, 0, 0, 1, &base, 10).expect("2d");
    assert!(!s2.ascii().is_empty());
    let front = pareto_front(
        &surrogates,
        &[(0, Goal::Maximize), (1, Goal::Maximize)],
        600,
        3,
    )
    .expect("front");
    assert!(!front.is_empty());
}
