//! Wall-clock isolation: the `wall` durations recorded by campaigns
//! and flows are reporting-only. Two runs of the same seeded work read
//! different clock values, yet every response bit, every RSM
//! coefficient, and every CSV byte must be identical — this is the
//! property the `lint:allow(D2)` annotations in `ehsim-core` and
//! `ehsim-circuit` assert in prose, checked mechanically.

use ehsim::core::experiment::{Campaign, StandardFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::report::write_csv;
use ehsim::core::scenario::Scenario;
use ehsim::doe::design::lhs::latin_hypercube;

fn small_campaign() -> Campaign {
    Campaign::standard(
        StandardFactors::default(),
        Scenario::industrial_spectrum(60.0),
        vec![Indicator::PacketsPerHour, Indicator::FinalStorageV],
    )
    .expect("campaign")
}

#[test]
fn campaign_csv_bytes_are_independent_of_the_clock() {
    let campaign = small_campaign();
    let design = latin_hypercube(4, 8, 42).expect("design");
    let a = campaign.run_design(&design, 2).expect("first run");
    // Burn a little wall time so the two runs cannot share a clock
    // reading even on a coarse timer.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let b = campaign.run_design(&design, 2).expect("second run");

    // The runs observed the clock independently...
    assert_ne!(a.wall, b.wall, "distinct runs read distinct wall times");

    // ...but every result bit is identical.
    assert_eq!(a.coded, b.coded);
    assert_eq!(a.physical, b.physical);
    for (ra, rb) in a.responses.iter().zip(&b.responses) {
        for (va, vb) in ra.iter().zip(rb) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    // And the CSV rendered from each result is byte-identical: the
    // wall duration has no path into the report.
    let dir = std::env::temp_dir().join(format!("ehsim-wall-iso-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let headers = ["x0", "x1", "x2", "x3", "pph", "vstore"];
    let render = |result: &ehsim::core::experiment::CampaignResult, name: &str| {
        let rows: Vec<Vec<f64>> = result
            .physical
            .iter()
            .zip(&result.responses)
            .map(|(p, r)| p.iter().chain(r).copied().collect())
            .collect();
        let path = dir.join(name);
        write_csv(&path, &headers, &rows).expect("csv writes");
        std::fs::read(&path).expect("csv reads back")
    };
    let csv_a = render(&a, "a.csv");
    let csv_b = render(&b, "b.csv");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(csv_a, csv_b, "CSV bytes must not depend on wall time");
}

#[test]
fn rsm_inputs_are_independent_of_the_clock() {
    let campaign = small_campaign();
    let flow = DoeFlow::new(DesignChoice::LatinHypercube { n: 20, seed: 7 }).with_threads(2);
    let first = flow.run(&campaign).expect("first flow");
    std::thread::sleep(std::time::Duration::from_millis(5));
    let second = flow.run(&campaign).expect("second flow");
    for i in 0..2 {
        let ca = first.model(i).coefficients();
        let cb = second.model(i).coefficients();
        assert_eq!(ca.len(), cb.len());
        for (a, b) in ca.iter().zip(cb) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "RSM coefficients must not depend on wall time"
            );
        }
    }
}
