//! Reproducibility: every stochastic component in the workspace is
//! seeded, so identical inputs must yield bit-identical outputs across
//! the entire stack.

use ehsim::core::baselines::{genetic, simulated_annealing};
use ehsim::core::experiment::{Campaign, StandardFactors};
use ehsim::core::flow::{DesignChoice, DoeFlow};
use ehsim::core::indicators::Indicator;
use ehsim::core::scenario::Scenario;
use ehsim::doe::design::doptimal::d_optimal_grid;
use ehsim::doe::design::lhs::latin_hypercube;
use ehsim::doe::model::ModelSpec;
use ehsim::node::{NodeConfig, SystemSimulator};
use ehsim::vibration::{BandNoise, VibrationSource};

#[test]
fn noise_sources_are_seeded() {
    let a = BandNoise::new(60.0, 8.0, 1.0, 24, 9).expect("valid");
    let b = BandNoise::new(60.0, 8.0, 1.0, 24, 9).expect("valid");
    for k in 0..100 {
        let t = k as f64 * 0.37e-3;
        assert_eq!(a.acceleration(t), b.acceleration(t));
    }
}

#[test]
fn designs_are_seeded() {
    assert_eq!(
        latin_hypercube(4, 25, 77).expect("lhs").points(),
        latin_hypercube(4, 25, 77).expect("lhs").points()
    );
    let spec = ModelSpec::quadratic(3).expect("spec");
    assert_eq!(
        d_optimal_grid(&spec, 12, 3).expect("d-opt").points(),
        d_optimal_grid(&spec, 12, 3).expect("d-opt").points()
    );
}

#[test]
fn node_simulation_is_bit_deterministic() {
    let cfg = NodeConfig::default_node();
    let noise = BandNoise::new(64.0, 4.0, 0.9, 16, 5).expect("valid");
    let sim = SystemSimulator::new(cfg).expect("valid config");
    let a = sim.run(&noise, 900.0).expect("run");
    let b = sim.run(&noise, 900.0).expect("run");
    assert_eq!(a, b);
}

#[test]
fn campaign_is_deterministic_across_thread_counts() {
    let campaign = Campaign::standard(
        StandardFactors::default(),
        Scenario::industrial_spectrum(300.0),
        vec![Indicator::PacketsPerHour, Indicator::FinalStorageV],
    )
    .expect("campaign");
    let design = latin_hypercube(4, 10, 31).expect("design");
    let one = campaign.run_design(&design, 1).expect("serial");
    let many = campaign.run_design(&design, 8).expect("parallel");
    assert_eq!(one.responses, many.responses);
}

/// Runs a small seeded DoE flow and renders every RSM coefficient as
/// its exact bit pattern.
fn rsm_coefficient_fingerprint() -> String {
    let campaign = Campaign::standard(
        StandardFactors::default(),
        Scenario::industrial_spectrum(120.0),
        vec![Indicator::PacketsPerHour, Indicator::FinalStorageV],
    )
    .expect("campaign");
    let surrogates = DoeFlow::new(DesignChoice::LatinHypercube { n: 20, seed: 77 })
        .with_threads(4)
        .run(&campaign)
        .expect("flow runs");
    let mut bits = Vec::new();
    for i in 0..2 {
        for c in surrogates.model(i).coefficients() {
            bits.push(format!("{:016x}", c.to_bits()));
        }
    }
    bits.join(",")
}

/// Same RNG seed → bit-identical RSM coefficients, not just within one
/// process but across *fresh* processes: the test re-executes its own
/// test binary twice in child mode and compares the exact coefficient
/// bit patterns (guards against address-dependent iteration order,
/// uninitialised state, or time-seeded randomness sneaking in).
#[test]
fn rsm_coefficients_are_bit_identical_across_processes() {
    const CHILD_FLAG: &str = "EHSIM_REPRO_CHILD";
    if std::env::var_os(CHILD_FLAG).is_some() {
        println!("coeffs:{}", rsm_coefficient_fingerprint());
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let spawn_child = || -> String {
        let out = std::process::Command::new(&exe)
            .args([
                "rsm_coefficients_are_bit_identical_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_FLAG, "1")
            .output()
            .expect("child test process runs");
        assert!(
            out.status.success(),
            "child process failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The libtest harness writes its own "test ... ok" text around
        // (and sometimes onto the same line as) our println, so locate
        // the marker anywhere in the stream.
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let start = stdout.find("coeffs:").expect("child printed a fingerprint");
        stdout[start..]
            .split_whitespace()
            .next()
            .expect("fingerprint is non-empty")
            .to_string()
    };

    let first = spawn_child();
    let second = spawn_child();
    assert_eq!(first, second, "fresh processes disagree on RSM bits");
    assert_eq!(
        first,
        format!("coeffs:{}", rsm_coefficient_fingerprint()),
        "parent process disagrees with children"
    );
}

#[test]
fn stochastic_optimisers_are_seeded() {
    let peak = |x: &[f64]| -> f64 { -(x[0] - 0.3) * (x[0] - 0.3) - x[1] * x[1] };
    let mut f1 = |x: &[f64]| peak(x);
    let mut f2 = |x: &[f64]| peak(x);
    assert_eq!(
        simulated_annealing(&mut f1, 2, 150, 21).expect("sa"),
        simulated_annealing(&mut f2, 2, 150, 21).expect("sa")
    );
    let mut f3 = |x: &[f64]| peak(x);
    let mut f4 = |x: &[f64]| peak(x);
    assert_eq!(
        genetic(&mut f3, 2, 10, 5, 8).expect("ga"),
        genetic(&mut f4, 2, 10, 5, 8).expect("ga")
    );
}
