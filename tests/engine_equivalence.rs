//! Cross-validation of the two circuit engines on the complete
//! harvester front-end, and verification of the linearized engine's
//! cost advantage (experiments E2/E7 in test form).

use ehsim::circuit::{LinearizedStateSpaceEngine, NewtonRaphsonEngine, Probe, TransientConfig};
use ehsim::harvester::Harvester;
use ehsim::power::frontend::build_frontend;
use ehsim::power::Multiplier;
use ehsim::vibration::Sine;
use std::sync::Arc;

fn frontend() -> (ehsim::circuit::Netlist, String) {
    let h = Harvester::default_tunable();
    let pos = h.position_for_frequency(64.0);
    let fe = build_frontend(
        &h,
        pos,
        Arc::new(Sine::new(0.9, 64.0).expect("valid source")),
        &Multiplier::default(),
        47e-6,
        0.0,
        None,
    )
    .expect("frontend builds");
    let name = format!("v({})", fe.store_node_name);
    (fe.netlist, name)
}

#[test]
fn engines_agree_on_storage_charging() {
    let (nl, signal) = frontend();
    let probe = Probe::NodeVoltage(
        signal
            .trim_start_matches("v(")
            .trim_end_matches(')')
            .to_string(),
    );
    let t_end = 0.4;

    let nr = NewtonRaphsonEngine::default()
        .simulate(
            &nl,
            &TransientConfig::new(t_end, 2e-5).expect("config"),
            &[probe.clone()],
        )
        .expect("newton engine runs");
    let lss = LinearizedStateSpaceEngine::default()
        .simulate(
            &nl,
            &TransientConfig::new(t_end, 2e-4).expect("config"),
            &[probe],
        )
        .expect("lss engine runs");

    let v_nr = *nr.signal(&signal).expect("signal recorded").last().unwrap();
    let v_lss = *lss
        .signal(&signal)
        .expect("signal recorded")
        .last()
        .unwrap();
    assert!(v_nr > 0.005, "storage must charge: {v_nr}");
    // The engines use different diode models (Shockley vs PWL); they
    // must agree within ~15% on the charged voltage.
    let rel = (v_nr - v_lss).abs() / v_nr;
    assert!(
        rel < 0.15,
        "nr {v_nr} vs lss {v_lss} ({:.1}% apart)",
        100.0 * rel
    );
}

#[test]
fn lss_is_vastly_cheaper_in_lu_work() {
    let (nl, _) = frontend();
    let t_end = 0.2;
    let nr = NewtonRaphsonEngine::default()
        .simulate(
            &nl,
            &TransientConfig::new(t_end, 2e-5).expect("config"),
            &[],
        )
        .expect("newton engine runs");
    let lss = LinearizedStateSpaceEngine::default()
        .simulate(
            &nl,
            &TransientConfig::new(t_end, 2e-4).expect("config"),
            &[],
        )
        .expect("lss engine runs");
    // Factorisation counts differ by orders of magnitude: the NR engine
    // refactors every iteration of every step, the LSS engine once per
    // conduction topology.
    assert!(
        nr.stats.lu_factorizations > 500 * lss.stats.lu_factorizations.max(1),
        "nr {} vs lss {}",
        nr.stats.lu_factorizations,
        lss.stats.lu_factorizations
    );
    // And the topology cache is effective.
    assert!(
        lss.stats.topology_cache_hits > 10 * lss.stats.lu_factorizations,
        "{:?}",
        lss.stats
    );
}

#[test]
fn lss_matches_reference_on_linear_harvester() {
    // With the multiplier removed (pure resistive load) the system is
    // linear and the LSS engine is exact up to input discretisation:
    // compare against the analytic steady state.
    let h = Harvester::default_tunable();
    let pos = h.position_for_frequency(64.0);
    let (mut nl, out) = h
        .build_netlist(pos, Arc::new(Sine::new(0.9, 64.0).expect("valid")))
        .expect("netlist builds");
    let r_load = 20e3;
    nl.resistor("Rload", out, ehsim::circuit::Netlist::GROUND, r_load)
        .expect("load attaches");
    let cfg = TransientConfig::new(3.0, 2e-4).expect("config");
    let res = LinearizedStateSpaceEngine::default()
        .simulate(&nl, &cfg, &[Probe::element_power("Rload")])
        .expect("lss runs");
    let p = res.signal("p(Rload)").expect("power recorded");
    let tail = &p[p.len() * 2 / 3..];
    let p_avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
    let p_exact = h
        .steady_state(pos, 64.0, 0.9, r_load)
        .expect("steady state")
        .load_power_w;
    assert!(
        (p_avg - p_exact).abs() < 0.08 * p_exact,
        "sim {p_avg} vs analytic {p_exact}"
    );
}
