//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the ehsim property suites use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range and collection strategies, `prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the case index and the
//!   assertion message; re-running is deterministic, so the failure is
//!   reproducible by test name alone.
//! - **Deterministic seeding.** Each test derives its RNG seed from a
//!   hash of the test's name, so runs are identical across processes
//!   and machines. There is no `PROPTEST_CASES`-style env override.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// The RNG handed to strategies. Deterministic per test name.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable, dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn unit_f64(&mut self) -> f64 {
        self.0.random::<f64>()
    }

    pub fn below(&mut self, n: usize) -> usize {
        self.0.random_range(0..n)
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree: `sample` draws a
/// concrete value directly and nothing shrinks.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i32);

/// A fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed length or a half-open range.
    pub trait SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    /// `prop::collection::vec(strategy, len)` — a vector whose length is
    /// drawn from `size` and whose elements come from `elem`.
    pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Runs one proptest-style test: draws cases until `cases` of them are
/// accepted (i.e. not rejected by `prop_assume!`), panicking on the
/// first failure. Called by the [`proptest!`] expansion.
pub fn run_cases<F>(test_name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(test_name);
    let mut accepted: u32 = 0;
    let mut attempts: u64 = 0;
    let max_attempts = (config.cases as u64).saturating_mul(100).max(1000);
    while accepted < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "proptest stub: {test_name} rejected too many inputs \
                 ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
        }
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest failure in {test_name}, case {accepted}: {msg}")
            }
        }
    }
}

/// Property-test entry point. Supports:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///     #[test]
///     fn name(a in 0.0f64..1.0, v in prop::collection::vec(0usize..4, 3)) {
///         prop_assert!(a < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                $cfg,
                |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Assert inside a proptest body; failure aborts the whole test with
/// the offending expression (or formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format_args!($($fmt)+),
            )));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
}

/// Reject the current inputs and draw a fresh case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(
            fixed in prop::collection::vec(0.0f64..1.0, 7),
            ranged in prop::collection::vec(0.0f64..1.0, 2..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn prop_map_applies(y in (0.0f64..1.0).prop_map(|v| v + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }

        #[test]
        fn assume_rejects_and_redraws(x in 0.0f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failures_panic() {
        crate::run_cases("failures_panic", ProptestConfig::with_cases(1), |_rng| {
            prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
