//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! - [`RngExt::random`] / [`RngExt::random_range`]
//! - [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64. The stream
//! for a given seed is stable across processes, platforms, and
//! releases — several regression tests assert bit-identical results
//! for a fixed seed, so changing the algorithm is a breaking change.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `u64` convenience path is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's "standard" range
/// (`[0, 1)` for floats, the full domain for integers).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-sampled uniform integer in `[0, span)`, bias-free.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Subtract in the u64 two's-complement domain: a span
                // wider than the signed type (e.g. i32::MIN..i32::MAX)
                // would wrap if computed in $t first.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`, under the name the codebase uses).
pub trait RngExt: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, RngExt};

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    /// The stream for seed 0xDA7E13 is pinned to hard-coded constants:
    /// reproducibility tests across the workspace assert bit-identical
    /// results, so swapping the generator algorithm must fail here.
    #[test]
    fn pinned_stream_regression() {
        let mut rng = StdRng::seed_from_u64(0xDA7E13);
        let first: Vec<u64> = (0..4).map(|_| rng.random::<u64>()).collect();
        assert_eq!(
            first,
            [
                2662843121481710645,
                4813814441015218814,
                10464031956913031917,
                11257424208582844719,
            ]
        );
    }

    /// Spans wider than the signed type must not wrap (the subtraction
    /// happens in the u64 two's-complement domain).
    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.random_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&v), "{v}");
            let w = rng.random_range(i64::MIN..=i64::MAX);
            let _ = w; // full-domain draw must simply not panic
        }
    }
}
