//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/API surface the ehsim benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` / `measurement_time`) backed by
//! a simple wall-clock harness: warm up, estimate the per-iteration
//! cost, then time enough iterations to fill the measurement budget and
//! report mean / best per-iteration times on stdout.
//!
//! No statistics, plots, or baselines — just honest timings so
//! `cargo bench` produces useful numbers without crates.io access.

use std::time::{Duration, Instant};

/// Passed to the closure given to `bench_function`; `iter` runs and
/// times the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + cost estimate.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let per_iter = warm.elapsed().max(Duration::from_nanos(1));

        let budget = self
            .measurement_time
            .div_duration_f64(per_iter)
            .clamp(1.0, 5_000_000.0) as usize;
        let iters = budget.max(self.sample_size);

        self.samples.reserve(iters);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// Top-level benchmark context, one per `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

fn pretty(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one<F>(id: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut samples = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let best = *samples.iter().min().expect("non-empty");
    println!(
        "{id:<40} mean {:>12}   best {:>12}   ({} iters)",
        pretty(mean),
        pretty(best),
        samples.len()
    );
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` works as well as
/// `std::hint::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // harness has no options, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls >= 3);
    }

    #[test]
    fn groups_honour_sample_settings() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        group.bench_function("inner", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
    }
}
