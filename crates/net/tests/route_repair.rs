//! The route-repair fixture: a committed 4-node geometry in which a
//! relay browns out mid-run and tick-interleaved route repair
//! demonstrably pays off.
//!
//! Geometry (radio range 13 m, sink at the origin):
//!
//! ```text
//!   sink(0,0) ---10.0--- R(10,0) ---12.9--- S1(22.9,0)
//!        \                /   \
//!        10.2         8.06    12.8
//!          \            /       \
//!          A(2,-10) --9.22-- S2(11,-8)
//! ```
//!
//! * `S1` (node 0) can reach **only** the relay `R` — every other
//!   vertex is out of range.
//! * `S2` (node 1) reaches both `R` and `A`; via `R` is the cheaper
//!   energy-aware route (squared-distance sum 165 vs 189), so its
//!   initial route relays through `R` and repair must move it to `A`.
//! * `R` (node 2) carries a deliberately starved config — a small
//!   supercap and a heavy sense duty — so it browns out mid-run.
//! * `A` (node 3) and the sink survive throughout.
//!
//! Contracts pinned here:
//!
//! * the epoch-by-epoch audit shows `R` browning out in a *middle*
//!   epoch (it survives epoch 0) and routes being repaired at that
//!   boundary;
//! * a static-routing run (`route_epochs = 1`) of the same spec
//!   excludes `R` for the whole accounting pass — stranding `S1`
//!   completely — so the repaired run delivers **strictly more
//!   packets**, with `S1`'s pre-brown-out traffic the difference;
//! * the repaired run's full outcome (metrics, audit trail, per-node
//!   accounts) is bit-identical across 1/2/8 threads and every
//!   dispatch strategy.

use ehsim_net::{
    Dispatch, EpochAudit, FleetMetrics, FleetNode, FleetOutcome, FleetSimulator, FleetSpec, Point,
    RadioEnergyModel, RoutingPolicy, Topology,
};
use ehsim_node::NodeConfig;

const RANGE_M: f64 = 13.0;
const DURATION_S: f64 = 240.0;
const EPOCHS: usize = 4;

const S1: usize = 0;
const S2: usize = 1;
const RELAY: usize = 2;
const ALT: usize = 3;

fn fixture_spec(route_epochs: usize) -> FleetSpec {
    let mut cfg = NodeConfig::default_node();
    cfg.tick_s = 0.5;
    // Fixed duty cycle: every node fires at its nominal period, so
    // packets originate uniformly through the run and each epoch's
    // slice of traffic is predictable (the adaptive default would
    // front-load a silence then burst, muddying the per-epoch audit).
    cfg.policy = ehsim_node::DutyCyclePolicy::Fixed;

    // The relay's starved twin: a supercap two orders of magnitude
    // smaller and a sensing duty heavy enough (~130 µW net drain
    // against a ~14 µW harvest) that it browns out around t ≈ 133 s —
    // inside epoch 2 of 4 — after relaying faithfully through epochs
    // 0 and 1. Tuning is disabled because the startup retune's
    // actuation energy (~78 mJ) would empty the small cap instantly.
    // Same tick, so the fleet stays batched-dispatch eligible.
    let mut relay_cfg = cfg.clone();
    relay_cfg.storage.capacitance = 0.008;
    relay_cfg.tuning.enabled = false;
    relay_cfg.task.period_s = 1.0;
    relay_cfg.task.sense_power_w = 0.02;

    let positions = [
        Point::new(22.9, 0.0),  // S1 — only neighbour is R
        Point::new(11.0, -8.0), // S2 — reaches R and A
        Point::new(10.0, 0.0),  // R — the browning relay
        Point::new(2.0, -10.0), // A — the repair detour
    ];
    let nodes = positions
        .iter()
        .enumerate()
        .map(|(i, &position)| FleetNode {
            config: if i == RELAY {
                relay_cfg.clone()
            } else {
                cfg.clone()
            },
            position,
        })
        .collect();

    let mut spec =
        FleetSpec::homogeneous(cfg, Vec::new(), Point::new(0.0, 0.0), RANGE_M, DURATION_S);
    spec.nodes = nodes;
    spec.route_epochs = route_epochs;
    spec.routing = RoutingPolicy::EnergyAware;
    spec
}

fn assert_audits_bit_identical(a: &EpochAudit, b: &EpochAudit, label: &str) {
    assert_eq!(a.epoch, b.epoch, "{label}: epoch index");
    assert_eq!(
        a.t_start_s.to_bits(),
        b.t_start_s.to_bits(),
        "{label}: epoch {} t_start",
        a.epoch
    );
    assert_eq!(
        a.t_end_s.to_bits(),
        b.t_end_s.to_bits(),
        "{label}: epoch {} t_end",
        a.epoch
    );
    assert_eq!(
        a.excluded_relays, b.excluded_relays,
        "{label}: epoch {} excluded_relays",
        a.epoch
    );
    assert_eq!(
        a.newly_browned, b.newly_browned,
        "{label}: epoch {} newly_browned",
        a.epoch
    );
    assert_eq!(
        a.rerouted, b.rerouted,
        "{label}: epoch {} rerouted",
        a.epoch
    );
    assert_eq!(
        a.unreachable_nodes, b.unreachable_nodes,
        "{label}: epoch {} unreachable_nodes",
        a.epoch
    );
    assert_eq!(
        a.newly_stranded, b.newly_stranded,
        "{label}: epoch {} newly_stranded",
        a.epoch
    );
    assert_eq!(
        a.packets_originated.to_bits(),
        b.packets_originated.to_bits(),
        "{label}: epoch {} packets_originated",
        a.epoch
    );
    assert_eq!(
        a.packets_delivered.to_bits(),
        b.packets_delivered.to_bits(),
        "{label}: epoch {} packets_delivered",
        a.epoch
    );
}

fn assert_fleet_metrics_bit_identical(a: &FleetMetrics, b: &FleetMetrics, label: &str) {
    for (x, y, field) in [
        (a.duration_s, b.duration_s, "duration_s"),
        (
            a.packets_originated,
            b.packets_originated,
            "packets_originated",
        ),
        (
            a.packets_delivered,
            b.packets_delivered,
            "packets_delivered",
        ),
        (
            a.delivery_fraction,
            b.delivery_fraction,
            "delivery_fraction",
        ),
        (a.relay_energy_j, b.relay_energy_j, "relay_energy_j"),
        (
            a.mean_hop_relay_energy_j,
            b.mean_hop_relay_energy_j,
            "mean_hop_relay_energy_j",
        ),
        (a.first_death_s, b.first_death_s, "first_death_s"),
        (a.residual_mean_j, b.residual_mean_j, "residual_mean_j"),
        (
            a.residual_spread_j,
            b.residual_spread_j,
            "residual_spread_j",
        ),
        (
            a.min_brownout_margin_v,
            b.min_brownout_margin_v,
            "min_brownout_margin_v",
        ),
        (
            a.mean_uptime_fraction,
            b.mean_uptime_fraction,
            "mean_uptime_fraction",
        ),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: {field} ({x} vs {y})");
    }
    assert_eq!(a.n_nodes, b.n_nodes, "{label}: n_nodes");
    assert_eq!(a.dead_nodes, b.dead_nodes, "{label}: dead_nodes");
    assert_eq!(
        a.browned_out_nodes, b.browned_out_nodes,
        "{label}: browned_out_nodes"
    );
    assert_eq!(
        a.unreachable_nodes, b.unreachable_nodes,
        "{label}: unreachable_nodes"
    );
    assert_eq!(a.route_repairs, b.route_repairs, "{label}: route_repairs");
    assert_eq!(a.epochs.len(), b.epochs.len(), "{label}: epoch count");
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_audits_bit_identical(x, y, label);
    }
}

fn assert_outcomes_bit_identical(a: &FleetOutcome, b: &FleetOutcome, label: &str) {
    assert_fleet_metrics_bit_identical(&a.metrics, &b.metrics, label);
    assert_eq!(a.net.len(), b.net.len(), "{label}: net length");
    for (i, (x, y)) in a.net.iter().zip(&b.net).enumerate() {
        assert_eq!(
            x.originated.to_bits(),
            y.originated.to_bits(),
            "{label}: node {i} originated"
        );
        assert_eq!(
            x.delivered.to_bits(),
            y.delivered.to_bits(),
            "{label}: node {i} delivered"
        );
        assert_eq!(x.hops_to_sink, y.hops_to_sink, "{label}: node {i} hops");
        assert_eq!(
            x.relay_spent_j.to_bits(),
            y.relay_spent_j.to_bits(),
            "{label}: node {i} relay_spent_j"
        );
        assert_eq!(
            x.death_s.map(f64::to_bits),
            y.death_s.map(f64::to_bits),
            "{label}: node {i} death_s"
        );
        assert_eq!(x.browned_out, y.browned_out, "{label}: node {i} browned");
    }
    for (i, (x, y)) in a.per_node.iter().zip(&b.per_node).enumerate() {
        assert_eq!(
            x.packets_delivered, y.packets_delivered,
            "{label}: node {i} packets"
        );
        assert_eq!(
            x.final_v_store.to_bits(),
            y.final_v_store.to_bits(),
            "{label}: node {i} final_v_store"
        );
    }
}

/// The headline acceptance criterion: mid-run route repair reroutes
/// around the browned-out relay, so the repaired run delivers
/// **strictly more** packets than the static-routing run of the
/// *identical* spec.
#[test]
fn repaired_run_beats_static_routing() {
    let static_run = FleetSimulator::new(fixture_spec(1))
        .expect("static fixture prepares")
        .run(2)
        .expect("static fixture runs");
    let repaired = FleetSimulator::new(fixture_spec(EPOCHS))
        .expect("repaired fixture prepares")
        .run(2)
        .expect("repaired fixture runs");

    // Static routing excludes the (eventually browned) relay for the
    // whole accounting pass, stranding S1 from t = 0: its traffic
    // never arrives and it has no route.
    assert_eq!(static_run.metrics.route_repairs, 0);
    assert_eq!(static_run.metrics.epochs.len(), 1);
    assert_eq!(static_run.net[S1].delivered, 0.0);
    assert_eq!(static_run.net[S1].hops_to_sink, None);

    // The repaired run carried S1's traffic while the relay was
    // alive: strictly more delivered packets overall.
    assert!(repaired.net[S1].delivered > 0.0);
    assert!(
        repaired.metrics.packets_delivered > static_run.metrics.packets_delivered,
        "repair must beat static routing: {} vs {}",
        repaired.metrics.packets_delivered,
        static_run.metrics.packets_delivered
    );
    assert_eq!(repaired.metrics.route_repairs, 1);
}

/// The audit trail tells the story: the relay survives epoch 0,
/// browns out in a middle epoch, routes are repaired at exactly that
/// boundary, and S1 — whose only neighbour it was — is stranded from
/// then on.
#[test]
fn audit_trail_shows_midrun_brownout_and_repair() {
    let fleet = FleetSimulator::new(fixture_spec(EPOCHS)).expect("fixture prepares");
    let out = fleet.run(2).expect("fixture runs");
    let audits = &out.metrics.epochs;
    assert_eq!(audits.len(), EPOCHS);

    // Epoch 0: everyone alive, everyone reachable, no repair.
    assert_eq!(audits[0].excluded_relays, 0);
    assert_eq!(audits[0].unreachable_nodes, 0);
    assert!(!audits[0].rerouted);
    assert!(audits[0].newly_browned.is_empty());
    assert!(audits[0].packets_delivered > 0.0);

    // The relay browns out in a *middle* epoch — after relaying for
    // at least one full epoch, with at least one epoch of aftermath.
    let e = audits
        .iter()
        .position(|a| a.newly_browned.contains(&RELAY))
        .expect("the relay must brown out during the run");
    assert!(
        (1..EPOCHS - 1).contains(&e),
        "relay browned in epoch {e}, not mid-run"
    );
    assert_eq!(audits[e].newly_browned, vec![RELAY]);
    assert!(audits[e].rerouted, "brown-out must trigger a route repair");
    assert_eq!(audits[e].excluded_relays, 1);
    // S1 loses its only neighbour at exactly that boundary.
    assert_eq!(audits[e].newly_stranded, vec![S1]);
    assert_eq!(audits[e - 1].unreachable_nodes, 0);
    // The aftermath: the exclusion persists, nothing else reroutes.
    for a in &audits[e..] {
        assert_eq!(a.unreachable_nodes, 1);
        assert_eq!(a.excluded_relays, 1);
    }
    for a in &audits[e + 1..] {
        assert!(!a.rerouted);
        assert!(a.newly_stranded.is_empty());
    }
    // Delivery keeps flowing for the survivors after the repair.
    assert!(audits[EPOCHS - 1].packets_delivered > 0.0);
}

/// The topology-level view of the same story: with the relay alive,
/// S2's cheapest route goes through it; with the relay excluded, the
/// router moves S2 to the detour node and S1 has no route at all.
#[test]
fn repair_moves_s2_to_the_detour() {
    let spec = fixture_spec(EPOCHS);
    let positions: Vec<Point> = spec.nodes.iter().map(|n| n.position).collect();
    let topo = Topology::new(positions, spec.sink, spec.range_m).expect("fixture topology");
    let radio = RadioEnergyModel::typical();

    let before = topo
        .energy_aware_routes(&radio, spec.payload_bits, &[false; 4])
        .expect("routes with the relay alive");
    assert_eq!(before.next_hop(S1), Some(RELAY));
    assert_eq!(before.next_hop(S2), Some(RELAY));

    let mut blocked = [false; 4];
    blocked[RELAY] = true;
    let after = topo
        .energy_aware_routes(&radio, spec.payload_bits, &blocked)
        .expect("routes with the relay excluded");
    assert_eq!(after.next_hop(S2), Some(ALT), "S2 must reroute via A");
    assert_eq!(after.next_hop(S1), None, "S1's only neighbour is gone");
    assert!(after.is_reachable(ALT), "the detour node keeps its route");
}

/// Under [`PartitionPolicy::Error`] the stranding is a typed error
/// naming the first affected epoch and the smallest stranded node —
/// never a silent zero in the delivery column.
#[test]
fn partition_policy_error_names_epoch_and_node() {
    let mut spec = fixture_spec(EPOCHS);
    spec.on_partition = ehsim_net::PartitionPolicy::Error;
    let fleet = FleetSimulator::new(spec).expect("fixture prepares");
    match fleet.run(2) {
        Err(ehsim_net::NetError::Partitioned { epoch, node }) => {
            assert_eq!(node, S1);
            assert!((1..EPOCHS).contains(&epoch), "partition at epoch {epoch}");
        }
        other => panic!("expected a typed partition error, got {other:?}"),
    }
}

/// The repaired run — audit trail included — is bit-identical across
/// thread counts and every dispatch strategy.
#[test]
fn repaired_run_is_bit_identical_across_threads_and_dispatch() {
    let fleet = FleetSimulator::new(fixture_spec(EPOCHS)).expect("fixture prepares");
    let base = fleet
        .run_with_dispatch(1, Dispatch::PerSim)
        .expect("base run");
    assert_eq!(base.metrics.route_repairs, 1);
    for (threads, dispatch) in [
        (1, Dispatch::Batched),
        (2, Dispatch::Auto),
        (2, Dispatch::PerSim),
        (8, Dispatch::Batched),
        (8, Dispatch::Auto),
    ] {
        let out = fleet
            .run_with_dispatch(threads, dispatch)
            .expect("variant run");
        assert_outcomes_bit_identical(
            &base,
            &out,
            &format!("threads={threads} dispatch={dispatch:?}"),
        );
    }
}
