//! Differential battery: the grid-bucket topology build against the
//! all-pairs oracle, and the heap router against the `O(V²)`
//! reference.
//!
//! Contracts proven here, over randomized and adversarial geometries:
//!
//! * [`Topology::new`] (grid-bucket) produces the **same link set in
//!   the same deterministic order, bit for bit** — same neighbour
//!   indices, same link distances — as [`Topology::new_all_pairs`];
//! * both routers produce the same parents from either build: min-hop
//!   and energy-aware route tables (parents *and* costs) are
//!   bit-identical whether the topology came from the grid or the
//!   all-pairs scan, and the heap Dijkstra matches the `O(V²)`
//!   selection reference with arbitrary relay-exclusion sets;
//! * degenerate inputs fail identically: a co-located pair is
//!   rejected by both builds with the **same error at the same
//!   `(a, b)` site**, and non-finite coordinates never reach the
//!   bucketing;
//! * adversarial geometries hold: nodes *exactly on cell boundaries*
//!   (lattice multiples of the radio range, including pairs at
//!   distance exactly `range`), co-located pairs, and isolated tail
//!   clusters far outside the main bounding box.

use ehsim_net::{Point, RadioEnergyModel, Routes, Topology};
use proptest::prelude::*;

fn zip_points(xs: &[f64], ys: &[f64]) -> Vec<Point> {
    xs.iter().zip(ys).map(|(&x, &y)| Point::new(x, y)).collect()
}

fn assert_topologies_bit_identical(grid: &Topology, oracle: &Topology) -> Result<(), String> {
    if grid.n_nodes() != oracle.n_nodes() {
        return Err("node counts differ".into());
    }
    for v in 0..=grid.n_nodes() {
        let (a, b) = (grid.neighbors(v), oracle.neighbors(v));
        if a.len() != b.len() {
            return Err(format!(
                "vertex {v}: grid degree {} vs oracle degree {}",
                a.len(),
                b.len()
            ));
        }
        for (x, y) in a.iter().zip(b) {
            if x.from != y.from || x.to != y.to {
                return Err(format!(
                    "vertex {v}: link ({}, {}) vs ({}, {})",
                    x.from, x.to, y.from, y.to
                ));
            }
            if x.distance_m.to_bits() != y.distance_m.to_bits() {
                return Err(format!(
                    "vertex {v} link to {}: distance {} vs {}",
                    x.to, x.distance_m, y.distance_m
                ));
            }
        }
    }
    Ok(())
}

fn assert_routes_bit_identical(a: &Routes, b: &Routes, n: usize, what: &str) -> Result<(), String> {
    for v in 0..=n {
        if a.next_hop(v) != b.next_hop(v) {
            return Err(format!(
                "{what}: vertex {v} parent {:?} vs {:?}",
                a.next_hop(v),
                b.next_hop(v)
            ));
        }
        if a.cost(v).map(f64::to_bits) != b.cost(v).map(f64::to_bits) {
            return Err(format!(
                "{what}: vertex {v} cost {:?} vs {:?}",
                a.cost(v),
                b.cost(v)
            ));
        }
    }
    Ok(())
}

/// The full differential: build both ways; identical topologies (or
/// identical errors), identical min-hop parents, identical
/// energy-aware parents/costs from both builds and both Dijkstra
/// implementations, under a pseudorandom relay-exclusion set.
fn full_differential(
    positions: Vec<Point>,
    sink: Point,
    range_m: f64,
    blocked_bits: u64,
) -> Result<(), String> {
    let grid = Topology::new(positions.clone(), sink, range_m);
    let oracle = Topology::new_all_pairs(positions, sink, range_m);
    let (g, o) = match (grid, oracle) {
        (Ok(g), Ok(o)) => (g, o),
        (Err(ge), Err(oe)) => {
            let (ge, oe) = (format!("{ge}"), format!("{oe}"));
            if ge != oe {
                return Err(format!("errors differ: grid {ge:?} vs oracle {oe:?}"));
            }
            return Ok(());
        }
        (g, o) => {
            return Err(format!(
                "builds disagree: grid ok = {}, oracle ok = {}",
                g.is_ok(),
                o.is_ok()
            ))
        }
    };
    assert_topologies_bit_identical(&g, &o)?;
    let n = g.n_nodes();
    assert_routes_bit_identical(&g.min_hop_routes(), &o.min_hop_routes(), n, "min-hop")?;
    let radio = RadioEnergyModel::typical();
    let blocked: Vec<bool> = (0..n)
        .map(|i| (blocked_bits >> (i % 64)) & 1 == 1)
        .collect();
    let heap_g = g
        .energy_aware_routes(&radio, 1024, &blocked)
        .map_err(|e| format!("grid heap router: {e}"))?;
    let heap_o = o
        .energy_aware_routes(&radio, 1024, &blocked)
        .map_err(|e| format!("oracle heap router: {e}"))?;
    let reference = o
        .energy_aware_routes_reference(&radio, 1024, &blocked)
        .map_err(|e| format!("reference router: {e}"))?;
    assert_routes_bit_identical(&heap_g, &heap_o, n, "energy-aware grid-vs-oracle")?;
    assert_routes_bit_identical(&heap_o, &reference, n, "energy-aware heap-vs-reference")?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Uniform random placements, random sink, random radio range.
    #[test]
    fn random_placements_match_all_pairs(
        xs in prop::collection::vec(-60.0f64..60.0, 1..70),
        ys in prop::collection::vec(-60.0f64..60.0, 1..70),
        sx in -60.0f64..60.0,
        sy in -60.0f64..60.0,
        range_m in 2.0f64..80.0,
        blocked_bits in 0u64..u64::MAX,
    ) {
        let k = xs.len().min(ys.len()).max(1);
        let pts = zip_points(&xs[..k.min(xs.len())], &ys[..k.min(ys.len())]);
        prop_assume!(!pts.is_empty());
        let r = full_differential(pts, Point::new(sx, sy), range_m, blocked_bits);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Adversarial: every vertex exactly on a cell boundary (lattice
    /// multiples of the radio range), so nearest-neighbour pairs sit
    /// at distance *exactly* `range` and every coordinate lands on a
    /// bucket edge.
    #[test]
    fn cell_boundary_lattice_matches_all_pairs(
        cells in prop::collection::vec(0usize..81, 1..40),
        range_m in 1.0f64..20.0,
        sink_cell in 0usize..81,
        blocked_bits in 0u64..u64::MAX,
    ) {
        // Distinct lattice sites on a 9×9 grid scaled by the range.
        let mut sites = cells;
        sites.sort_unstable();
        sites.dedup();
        let at = |c: usize| Point::new((c % 9) as f64 * range_m, (c / 9) as f64 * range_m);
        // The sink takes a lattice site too; drop a node there if one
        // collided (co-location is covered by its own test below).
        let pts: Vec<Point> = sites
            .iter()
            .filter(|&&c| c != sink_cell)
            .map(|&c| at(c))
            .collect();
        prop_assume!(!pts.is_empty());
        let r = full_differential(pts, at(sink_cell), range_m, blocked_bits);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Adversarial: a co-located pair must be rejected by *both*
    /// builds with the same error at the same `(a, b)` site.
    #[test]
    fn colocated_pair_fails_identically_in_both_builds(
        cells in prop::collection::vec(0usize..64, 2..30),
        dup_from in 0usize..1000,
        dup_to in 0usize..1000,
        range_m in 1.0f64..15.0,
    ) {
        let mut sites = cells;
        sites.sort_unstable();
        sites.dedup();
        let mut pts: Vec<Point> = sites
            .iter()
            .map(|&c| Point::new((c % 8) as f64 * range_m, (c / 8) as f64 * range_m))
            .collect();
        prop_assume!(pts.len() >= 2);
        // Duplicate one node's position onto another slot.
        let dup = pts[dup_from % pts.len()];
        let slot = dup_to % pts.len();
        if pts[slot].x.to_bits() == dup.x.to_bits() && pts[slot].y.to_bits() == dup.y.to_bits() {
            pts.push(dup);
        } else {
            pts[slot] = dup;
        }
        let sink = Point::new(-3.0 * range_m, -3.0 * range_m);
        let grid = Topology::new(pts.clone(), sink, range_m);
        let oracle = Topology::new_all_pairs(pts, sink, range_m);
        prop_assert!(grid.is_err(), "grid build accepted a co-located pair");
        prop_assert!(oracle.is_err(), "all-pairs build accepted a co-located pair");
        prop_assert_eq!(
            format!("{}", grid.unwrap_err()),
            format!("{}", oracle.unwrap_err())
        );
    }

    /// Adversarial: an isolated tail cluster far outside the main
    /// bounding box — stretches the bucket grid to its cell-count cap
    /// and leaves the tail with no route to the sink.
    #[test]
    fn isolated_tail_clusters_match_all_pairs(
        xs_a in prop::collection::vec(-20.0f64..20.0, 1..25),
        ys_a in prop::collection::vec(-20.0f64..20.0, 1..25),
        xs_b in prop::collection::vec(-20.0f64..20.0, 1..25),
        ys_b in prop::collection::vec(-20.0f64..20.0, 1..25),
        offset in 1000.0f64..50_000.0,
        range_m in 2.0f64..30.0,
        blocked_bits in 0u64..u64::MAX,
    ) {
        let ka = xs_a.len().min(ys_a.len()).max(1);
        let kb = xs_b.len().min(ys_b.len()).max(1);
        let mut pts = zip_points(&xs_a[..ka.min(xs_a.len())], &ys_a[..ka.min(ys_a.len())]);
        for p in zip_points(&xs_b[..kb.min(xs_b.len())], &ys_b[..kb.min(ys_b.len())]) {
            pts.push(Point::new(p.x + offset, p.y + offset));
        }
        prop_assume!(!pts.is_empty());
        let r = full_differential(pts, Point::new(0.0, 0.0), range_m, blocked_bits);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}

/// A node placed exactly at the sink position: co-located with vertex
/// `n`, rejected identically by both builds.
#[test]
fn node_at_sink_position_fails_identically() {
    let sink = Point::new(5.0, 5.0);
    let pts = vec![Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
    let grid = Topology::new(pts.clone(), sink, 10.0);
    let oracle = Topology::new_all_pairs(pts, sink, 10.0);
    assert!(grid.is_err());
    assert!(oracle.is_err());
    assert_eq!(
        format!("{}", grid.unwrap_err()),
        format!("{}", oracle.unwrap_err())
    );
}

/// Deterministic mid-scale identity check: 1,500 nodes at constant
/// density — large enough that the bucket grid has real structure
/// (hundreds of cells), small enough for the all-pairs oracle.
#[test]
fn mid_scale_identity_1500_nodes() {
    let positions = ehsim_net::Placement::UniformRandom {
        n: 1500,
        width_m: 245.0,
        height_m: 245.0,
        seed: 0x10_0B,
    }
    .positions()
    .expect("valid placement");
    let sink = Point::new(122.5, 122.5);
    let r = full_differential(positions, sink, 12.0, 0xDEAD_BEEF_CAFE_F00D);
    assert!(r.is_ok(), "{}", r.unwrap_err());
}
