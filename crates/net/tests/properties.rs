//! Property suite for the radio energy model and the fleet seed
//! splitter.
//!
//! Contracts proven here:
//!
//! * transmit/receive energy is **strictly monotone** in distance and
//!   in payload bits, for every admissible model parameterisation;
//! * the τ = 2 / τ = 4 family calibrated to cross at `d₀`
//!   (`ε₄ = ε₂ / d₀²`) really crosses there: the steeper exponent is
//!   strictly cheaper below the crossover and strictly costlier above
//!   it;
//! * zero-distance self-sends are unrepresentable — rejected at
//!   [`Link`] construction, so no energy computation ever sees
//!   `d = 0`;
//! * [`ehsim_net::node_seed`] splits one fleet seed into per-node
//!   vibration streams with no sharing: seeds are injective in the
//!   node index, pinned against silent derivation changes, and two
//!   identically-configured nodes of one fleet really follow distinct
//!   simulated trajectories.

use ehsim_net::{node_seed, FleetSimulator, FleetSpec, Link, Placement, Point, RadioEnergyModel};
use ehsim_node::NodeConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// E_tx is strictly increasing in distance at fixed bits.
    #[test]
    fn tx_energy_strictly_monotone_in_distance(
        e_elec in 1e-9f64..1e-6,
        eps in 1e-13f64..1e-9,
        tau in 1.0f64..6.0,
        d in 0.5f64..200.0,
        step in 0.01f64..50.0,
        bits in 1u64..100_000,
    ) {
        let m = RadioEnergyModel::new(e_elec, eps, tau).expect("admissible model");
        prop_assert!(m.tx_energy_j(bits, d + step) > m.tx_energy_j(bits, d));
    }

    /// E_tx and E_rx are strictly increasing in payload bits at fixed
    /// distance.
    #[test]
    fn energy_strictly_monotone_in_bits(
        e_elec in 1e-9f64..1e-6,
        eps in 1e-13f64..1e-9,
        tau in 1.0f64..6.0,
        d in 0.5f64..200.0,
        bits in 1u64..100_000,
        extra in 1u64..100_000,
    ) {
        let m = RadioEnergyModel::new(e_elec, eps, tau).expect("admissible model");
        prop_assert!(m.tx_energy_j(bits + extra, d) > m.tx_energy_j(bits, d));
        prop_assert!(m.rx_energy_j(bits + extra) > m.rx_energy_j(bits));
    }

    /// A τ = 4 model calibrated to meet a τ = 2 model at crossover
    /// distance d₀ (ε₄ = ε₂/d₀²) is strictly cheaper below d₀ and
    /// strictly costlier above it, and agrees at d₀ to float
    /// tolerance — the free-space/multipath dual-slope behaviour.
    #[test]
    fn tau_crossover_behaves(
        e_elec in 1e-9f64..1e-6,
        eps2 in 1e-13f64..1e-10,
        d0 in 5.0f64..100.0,
        below in 0.05f64..0.95,
        above in 1.05f64..5.0,
        bits in 1u64..100_000,
    ) {
        let free_space = RadioEnergyModel::new(e_elec, eps2, 2.0).expect("admissible model");
        let multipath =
            RadioEnergyModel::new(e_elec, eps2 / (d0 * d0), 4.0).expect("admissible model");
        prop_assert!(
            multipath.tx_energy_j(bits, below * d0) < free_space.tx_energy_j(bits, below * d0)
        );
        prop_assert!(
            multipath.tx_energy_j(bits, above * d0) > free_space.tx_energy_j(bits, above * d0)
        );
        let at2 = free_space.tx_energy_j(bits, d0);
        let at4 = multipath.tx_energy_j(bits, d0);
        prop_assert!((at2 - at4).abs() <= 1e-9 * at2.abs());
    }

    /// Self-sends and degenerate distances are rejected at `Link`
    /// construction.
    #[test]
    fn zero_distance_self_send_rejected(
        node in 0usize..1000,
        other in 0usize..1000,
        d in -10.0f64..200.0,
    ) {
        prop_assert!(Link::new(node, node, d.abs().max(1.0)).is_err());
        prop_assert!(Link::new(node, other, 0.0).is_err());
        if d <= 0.0 {
            prop_assert!(Link::new(node, other, d).is_err());
        } else if node != other {
            prop_assert!(Link::new(node, other, d).is_ok());
        }
    }

    /// The seed splitter is injective in the node index for any fleet
    /// seed (spot-checked over random index pairs).
    #[test]
    fn node_seeds_injective(
        fleet_seed in 0u64..u64::MAX,
        a in 0usize..100_000,
        b in 0usize..100_000,
    ) {
        if a != b {
            prop_assert!(node_seed(fleet_seed, a) != node_seed(fleet_seed, b));
        }
        prop_assert_eq!(node_seed(fleet_seed, a), node_seed(fleet_seed, a));
    }
}

/// Regression pin on the seed derivation: these constants are the
/// SplitMix64 stream-split outputs shipped with the fleet layer. A
/// silent change to the derivation (dropping the fleet-seed pre-mix,
/// reordering the finalizer, …) re-seeds every node's vibration
/// stream and moves every fleet artefact; this test makes that loud.
#[test]
fn node_seed_values_are_pinned() {
    assert_eq!(node_seed(0, 0), 0x9311_8A61_ED9E_9E14);
    assert_eq!(node_seed(0, 1), 0xD942_59DF_0D44_0A18);
    assert_eq!(node_seed(42, 7), 0x3026_4F0B_6A70_ECF2);
    assert_eq!(node_seed(0x5EED_F1EE, 0), 0xB70D_79B4_C602_736F);
}

/// Two identically-configured nodes of one fleet must follow distinct
/// trajectories: their vibration streams are split from the fleet
/// seed, so their harvested energy (and with it the whole metric
/// record) must not be bitwise equal. This is the end-to-end
/// regression for the seed-reuse hazard.
#[test]
fn identical_nodes_get_distinct_trajectories() {
    let positions = Placement::Grid {
        rows: 2,
        cols: 2,
        spacing_m: 15.0,
    }
    .positions()
    .expect("valid grid");
    let mut cfg = NodeConfig::default_node();
    cfg.tick_s = 0.5;
    let spec = FleetSpec::homogeneous(cfg, positions, Point::new(7.5, 7.5), 25.0, 60.0);
    let fleet = FleetSimulator::new(spec).expect("valid fleet");
    let out = fleet.run(1).expect("fleet runs");
    for i in 0..out.per_node.len() {
        for j in (i + 1)..out.per_node.len() {
            assert_ne!(
                out.per_node[i].harvested_energy_j.to_bits(),
                out.per_node[j].harvested_energy_j.to_bits(),
                "nodes {i} and {j} share a vibration trajectory"
            );
        }
    }
}

/// The same fleet seed reproduces the same fleet bit-for-bit; a
/// different fleet seed re-realises every node's environment.
#[test]
fn fleet_seed_controls_the_realisation() {
    let positions = Placement::Grid {
        rows: 1,
        cols: 3,
        spacing_m: 12.0,
    }
    .positions()
    .expect("valid grid");
    let mut cfg = NodeConfig::default_node();
    cfg.tick_s = 0.5;
    let mut spec = FleetSpec::homogeneous(cfg, positions, Point::new(-10.0, 0.0), 15.0, 40.0);
    let a = FleetSimulator::new(spec.clone())
        .expect("valid fleet")
        .run(1)
        .expect("fleet runs");
    let b = FleetSimulator::new(spec.clone())
        .expect("valid fleet")
        .run(1)
        .expect("fleet runs");
    for (x, y) in a.per_node.iter().zip(&b.per_node) {
        assert_eq!(
            x.harvested_energy_j.to_bits(),
            y.harvested_energy_j.to_bits()
        );
        assert_eq!(x.final_v_store.to_bits(), y.final_v_store.to_bits());
    }
    spec.fleet_seed ^= 1;
    let c = FleetSimulator::new(spec)
        .expect("valid fleet")
        .run(1)
        .expect("fleet runs");
    assert!(a
        .per_node
        .iter()
        .zip(&c.per_node)
        .any(|(x, y)| x.harvested_energy_j.to_bits() != y.harvested_energy_j.to_bits()));
}
