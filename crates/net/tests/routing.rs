//! Routing tests against hand-built fixtures.
//!
//! * Min-hop routes are checked against an independent reference
//!   Dijkstra (unit edge weights) on every fixture — equal
//!   reachability and equal hop counts everywhere, and equal paths
//!   where the shortest path is unique.
//! * Energy-aware routing never relays through a blocked
//!   (browned-out) node, even when that forces a strictly costlier
//!   route, and drops to unreachable when the blocked node was the
//!   only bridge.
//! * An unreachable sink surfaces the typed
//!   [`NetError::UnreachableSink`] — never a hang.

use ehsim_net::{NetError, Point, RadioEnergyModel, Topology};

/// Reference shortest-path: textbook Dijkstra with unit weights over
/// the topology's link set, smallest-index tie-break. Deliberately a
/// different implementation shape from the BFS under test.
fn dijkstra_unit_hops(t: &Topology) -> Vec<Option<usize>> {
    let n_vertices = t.n_nodes() + 1;
    let sink = t.sink_index();
    let mut dist = vec![usize::MAX; n_vertices];
    let mut settled = vec![false; n_vertices];
    dist[sink] = 0;
    loop {
        let mut v = None;
        for i in 0..n_vertices {
            if !settled[i] && dist[i] != usize::MAX && v.map_or(true, |b: usize| dist[i] < dist[b])
            {
                v = Some(i);
            }
        }
        let Some(v) = v else { break };
        settled[v] = true;
        for link in t.neighbors(v) {
            if dist[v] + 1 < dist[link.to] {
                dist[link.to] = dist[v] + 1;
            }
        }
    }
    dist.into_iter()
        .map(|d| (d != usize::MAX).then_some(d))
        .collect()
}

/// A 5-node cross: sink at the origin, node 0 adjacent to the sink,
/// nodes 1–2 one ring out, nodes 3–4 behind them.
fn cross_fixture() -> Topology {
    let positions = vec![
        Point::new(8.0, 0.0),  // 0: one hop
        Point::new(16.0, 0.0), // 1: two hops via 0
        Point::new(8.0, 9.0),  // 2: two hops via 0
        Point::new(24.0, 0.0), // 3: three hops via 1, 0
        Point::new(16.0, 9.0), // 4: adjacent to 1 and 2
    ];
    Topology::new(positions, Point::new(0.0, 0.0), 10.0).expect("valid fixture")
}

#[test]
fn min_hop_matches_reference_dijkstra_on_fixtures() {
    let fixtures: Vec<Topology> = vec![
        cross_fixture(),
        // Line: 1 → 2 → 3 → 4 hops.
        Topology::new(
            (1..=4).map(|i| Point::new(10.0 * i as f64, 0.0)).collect(),
            Point::new(0.0, 0.0),
            10.5,
        )
        .expect("valid line"),
        // Star: everything one hop.
        Topology::new(
            vec![
                Point::new(5.0, 0.0),
                Point::new(0.0, 5.0),
                Point::new(-5.0, 0.0),
                Point::new(0.0, -5.0),
            ],
            Point::new(0.0, 0.0),
            6.0,
        )
        .expect("valid star"),
        // Disconnected tail: node 2 stranded.
        Topology::new(
            vec![
                Point::new(7.0, 0.0),
                Point::new(14.0, 0.0),
                Point::new(500.0, 0.0),
            ],
            Point::new(0.0, 0.0),
            8.0,
        )
        .expect("valid split"),
    ];
    for (f, t) in fixtures.iter().enumerate() {
        let routes = t.min_hop_routes();
        let reference = dijkstra_unit_hops(t);
        for i in 0..t.n_nodes() {
            assert_eq!(
                routes.hop_count(i),
                reference[i],
                "fixture {f}, node {i}: BFS hop count disagrees with Dijkstra"
            );
            assert_eq!(routes.is_reachable(i), reference[i].is_some());
        }
    }
}

#[test]
fn min_hop_unique_shortest_paths_are_exact() {
    // On the line fixture every shortest path is unique — check the
    // full path, not just its length.
    let t = Topology::new(
        (1..=3).map(|i| Point::new(10.0 * i as f64, 0.0)).collect(),
        Point::new(0.0, 0.0),
        10.5,
    )
    .expect("valid line");
    let routes = t.min_hop_routes();
    assert_eq!(
        routes.path(2).expect("reachable"),
        vec![2, 1, 0, t.sink_index()]
    );
    assert_eq!(routes.path(0).expect("reachable"), vec![0, t.sink_index()]);
}

#[test]
fn energy_aware_matches_min_hop_cost_structure_unblocked() {
    // With no blocked nodes and a line topology the energy-aware tree
    // must be the chain too (any detour costs strictly more energy).
    let t = Topology::new(
        (1..=4).map(|i| Point::new(10.0 * i as f64, 0.0)).collect(),
        Point::new(0.0, 0.0),
        10.5,
    )
    .expect("valid line");
    let routes = t
        .energy_aware_routes(&RadioEnergyModel::typical(), 1024, &[false; 4])
        .expect("routes");
    assert_eq!(
        routes.path(3).expect("reachable"),
        vec![3, 2, 1, 0, t.sink_index()]
    );
}

#[test]
fn energy_aware_never_relays_through_blocked_node() {
    let t = cross_fixture();
    let radio = RadioEnergyModel::typical();
    // Unblocked, node 4 routes via a two-hop relay (1 or 2).
    let open = t
        .energy_aware_routes(&radio, 1024, &[false; 5])
        .expect("routes");
    let open_path = open.path(4).expect("reachable");
    assert!(open_path.len() > 2, "fixture should force node 4 to relay");
    // Block every possible relay of node 4 except the detour 2 → 0.
    let blocked = [false, true, false, false, false];
    let routed = t
        .energy_aware_routes(&radio, 1024, &blocked)
        .expect("routes");
    for i in 0..t.n_nodes() {
        let Ok(path) = routed.path(i) else { continue };
        for &relay in &path[1..path.len() - 1] {
            assert!(
                !blocked[relay],
                "node {i}'s path {path:?} relays through blocked node {relay}"
            );
        }
    }
    // Node 1 itself may still originate: it stays reachable (its own
    // next hop just cannot be another blocked node).
    assert!(routed.is_reachable(1));
}

#[test]
fn blocking_the_only_bridge_strands_the_tail() {
    // Line sink—0—1: node 0 is the only bridge for node 1.
    let t = Topology::new(
        vec![Point::new(10.0, 0.0), Point::new(20.0, 0.0)],
        Point::new(0.0, 0.0),
        10.5,
    )
    .expect("valid line");
    let radio = RadioEnergyModel::typical();
    let routes = t
        .energy_aware_routes(&radio, 1024, &[true, false])
        .expect("routes");
    assert!(routes.is_reachable(0), "blocked node still originates");
    assert!(!routes.is_reachable(1), "tail must be stranded");
    match routes.path(1) {
        Err(NetError::UnreachableSink { node: 1 }) => {}
        other => panic!("expected typed UnreachableSink, got {other:?}"),
    }
}

#[test]
fn unreachable_sink_is_a_typed_error_not_a_hang() {
    // No node in range of the sink at all.
    let t = Topology::new(
        vec![Point::new(100.0, 0.0), Point::new(108.0, 0.0)],
        Point::new(0.0, 0.0),
        9.0,
    )
    .expect("valid topology");
    for routes in [
        t.min_hop_routes(),
        t.energy_aware_routes(&RadioEnergyModel::typical(), 256, &[false, false])
            .expect("routes"),
    ] {
        for i in 0..2 {
            assert!(!routes.is_reachable(i));
            assert!(routes.cost(i).is_none());
            match routes.path(i) {
                Err(NetError::UnreachableSink { node }) => assert_eq!(node, i),
                other => panic!("expected typed UnreachableSink, got {other:?}"),
            }
        }
    }
}
