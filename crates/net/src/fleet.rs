//! The fleet simulator: thousands of node simulations composed with a
//! radio/routing layer under one deterministic scheduler.
//!
//! # Execution model: node phase × route epochs
//!
//! A [`FleetSimulator::run`] interleaves two phases over
//! [`FleetSpec::route_epochs`] equal time slices:
//!
//! 1. **Node phase** — every node's `ehsim-node` simulation runs
//!    against its own vibration stream (seeds split from the fleet
//!    seed via [`crate::node_seed`]). Homogeneous fleets (all lanes
//!    sharing the tick length, bit for bit) auto-dispatch to
//!    contiguous [`BatchSimulator`] chunks of at most
//!    [`MAX_BATCH_WIDTH`] lanes; heterogeneous (mixed-tick) fleets
//!    fall back to per-sim jobs. Both paths run on the same
//!    deterministic self-scheduling queue, and the batch kernel is
//!    bit-identical lane-for-lane to the per-sim path, so **the node
//!    metrics do not depend on the dispatch strategy or the thread
//!    count**. Per-node failures are captured individually
//!    ([`FleetSimulator::run_nodes`]); the aggregate entry points
//!    surface the **smallest failing node index** as a typed
//!    [`NetError::Node`].
//!
//! 2. **Network phase** — a sequential, node-index-ordered energy
//!    accounting pass per epoch. Packets originate at each node
//!    (`packets_delivered` of the node simulation — the node's own
//!    radio cost is already inside its energy trace) and flow to the
//!    sink along the epoch's routing tree. Each relay pays
//!    [`RadioEnergyModel::hop_energy_j`] per forwarded packet out of
//!    its **energy headroom** — the stored energy above its brown-out
//!    threshold at the epoch boundary, minus what earlier epochs
//!    already spent (zero once the node has browned out). A relay
//!    whose epoch demand exceeds its available headroom forwards only
//!    the fraction it can afford (a deterministic fluid approximation:
//!    each packet stream is scaled by the product of its relays'
//!    forwarding fractions), and its extrapolated exhaustion time
//!    feeds the fleet's first-node-death indicator.
//!
//! **Route repair**: at each epoch boundary, relays that have browned
//! out are excluded and the energy-aware routes are recomputed on the
//! surviving graph ([`crate::Topology::energy_aware_routes`]), with an
//! epoch-by-epoch audit trail ([`EpochAudit`]) in [`FleetMetrics`] and
//! a typed [`NetError::Partitioned`] — under
//! [`PartitionPolicy::Error`] — instead of silent stranding.
//! [`RoutingPolicy::MinHop`] stays deliberately oblivious: its routes
//! are computed once and never repaired, making it the static
//! baseline route repair is measured against.
//!
//! Node trajectories are independent of the run duration tick for
//! tick (the vibration sources are pure functions of time), so each
//! epoch boundary snapshot is an *exact prefix* of the full run and
//! per-epoch deltas are exact — at `route_epochs = 1` the whole
//! machinery collapses, bit for bit, to the original
//! single-accounting-pass fleet run (pinned by
//! `tests/fleet_equivalence.rs`).
//!
//! The network phase is plain sequential float arithmetic in a fixed
//! order, so the full [`FleetMetrics`] record inherits the node
//! phase's bit-exactness contract: identical [`FleetSpec`]s give
//! bit-identical metrics for any thread count and dispatch.

use crate::sched::{run_jobs, run_jobs_capturing};
use crate::topology::{Routes, Topology};
use crate::{NetError, Point, RadioEnergyModel, Result};
use ehsim_node::{BatchSimulator, NodeConfig, NodeMetrics, PreparedSimulator, SolverMode};
use ehsim_vibration::{FilteredNoise, VibrationSource};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// Upper bound on the lane width of one batched-dispatch chunk —
/// mirrors the campaign scheduler's bound (wide enough to fill the
/// lock-step PPU rounds, small enough to stay cache-resident).
pub const MAX_BATCH_WIDTH: usize = 64;

/// How packets are routed to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Fewest hops ([`Topology::min_hop_routes`]); oblivious to node
    /// energy state — routes may pass through browned-out relays,
    /// whose zero headroom then drops the traffic.
    MinHop,
    /// Cheapest total per-packet relay energy, never relaying through
    /// a browned-out node ([`Topology::energy_aware_routes`]).
    EnergyAware,
}

/// What a fleet run does when an epoch's routing leaves nodes with no
/// path to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Record stranded nodes in the [`EpochAudit`] trail and in
    /// [`FleetMetrics::unreachable_nodes`], and carry on — their
    /// traffic simply never arrives (the default, and the historical
    /// behaviour).
    Tolerate,
    /// Fail the run with a typed [`NetError::Partitioned`] naming the
    /// earliest affected epoch and its smallest stranded node — no
    /// silent stranding.
    Error,
}

/// Audit record of one route epoch — the per-epoch trail
/// [`FleetMetrics::epochs`] carries so a fleet run can show *when*
/// relays dropped out, *whether* repair rerouted around them, and
/// *what* each slice of the run actually delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochAudit {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Epoch start time (s).
    pub t_start_s: f64,
    /// Epoch end time (s).
    pub t_end_s: f64,
    /// Relays excluded from this epoch's routes (browned out by the
    /// epoch's end; always 0 under [`RoutingPolicy::MinHop`], which
    /// never excludes).
    pub excluded_relays: u32,
    /// Nodes newly browned out during this epoch (ascending indices).
    pub newly_browned: Vec<usize>,
    /// Whether routes were recomputed at this epoch's boundary (always
    /// `false` for epoch 0 — the initial routes — and under min-hop
    /// routing).
    pub rerouted: bool,
    /// Nodes with no route to the sink under this epoch's routes.
    pub unreachable_nodes: u32,
    /// Nodes that *lost* their route at this boundary — reachable
    /// under the previous epoch's routes, stranded under this one
    /// (ascending indices; empty for epoch 0).
    pub newly_stranded: Vec<usize>,
    /// Packets originated fleet-wide during this epoch.
    pub packets_originated: f64,
    /// Packets delivered to the sink during this epoch (fluid count).
    pub packets_delivered: f64,
}

/// One node of the fleet: its simulator configuration and position.
#[derive(Debug, Clone)]
pub struct FleetNode {
    /// Node-simulator configuration.
    pub config: NodeConfig,
    /// Position (m).
    pub position: Point,
}

/// A deterministic per-node vibration-environment factory: given a
/// node's stream seed (from [`crate::node_seed`]), produces that
/// node's [`VibrationSource`]. Cloning shares the factory.
#[derive(Clone)]
pub struct FleetEnvironment {
    label: String,
    make: Arc<dyn Fn(u64) -> Result<Arc<dyn VibrationSource>> + Send + Sync>,
}

impl FleetEnvironment {
    /// Wraps a seed-to-source factory under a display label. The
    /// factory is fallible (determinism rule D4: no `expect` in
    /// library code) — a draw outside a source's valid range surfaces
    /// as a typed [`NetError`] from [`FleetSimulator::new`] instead of
    /// aborting mid-prep.
    pub fn new(
        label: impl Into<String>,
        make: impl Fn(u64) -> Result<Arc<dyn VibrationSource>> + Send + Sync + 'static,
    ) -> Self {
        FleetEnvironment {
            label: label.into(),
            make: Arc::new(make),
        }
    }

    /// The canonical fleet environment: every node bolted to a
    /// different spot of the same nominal-64 Hz machinery floor. The
    /// stream seed drives the *spatial* variation — each mounting
    /// point sees its own dominant frequency (61–67 Hz) and vibration
    /// level (0.65–0.95 m/s² RMS) plus its own noise realisation — so
    /// two nodes of one fleet never share an excitation trajectory,
    /// and a node's harvester tuning actually has per-node work to do.
    pub fn factory_floor() -> Self {
        FleetEnvironment::new("factory-floor-64Hz", |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let resonance_hz = 64.0 + 6.0 * (rng.random::<f64>() - 0.5);
            let rms = 0.65 + 0.3 * rng.random::<f64>();
            let source = FilteredNoise::new(resonance_hz, 8.0, (40.0, 90.0), rms, 24, seed)
                .map_err(|e| {
                    NetError::invalid(format!("factory-floor source for stream seed {seed}: {e}"))
                })?;
            Ok(Arc::new(source) as Arc<dyn VibrationSource>)
        })
    }

    /// Display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Instantiates the source for one node's stream seed.
    ///
    /// # Errors
    ///
    /// Propagates the factory's typed error (e.g. a drawn parameter
    /// outside the source's valid range).
    pub fn source_for(&self, seed: u64) -> Result<Arc<dyn VibrationSource>> {
        (self.make)(seed)
    }
}

impl fmt::Debug for FleetEnvironment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetEnvironment")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Complete, declarative description of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The nodes (configs + positions).
    pub nodes: Vec<FleetNode>,
    /// Sink position (m); the sink is mains-powered.
    pub sink: Point,
    /// Radio range linking vertices into the topology (m).
    pub range_m: f64,
    /// Per-bit radio energy model for relay traffic.
    pub radio: RadioEnergyModel,
    /// Application packet size on the air (bits).
    pub payload_bits: u64,
    /// Routing policy.
    pub routing: RoutingPolicy,
    /// Fleet master seed; per-node vibration streams are split from it
    /// via [`crate::node_seed`].
    pub fleet_seed: u64,
    /// Per-node vibration-environment factory.
    pub environment: FleetEnvironment,
    /// PPU solver mode for every node simulation.
    pub solver: SolverMode,
    /// Simulated duration (s).
    pub duration_s: f64,
    /// Number of route epochs the run is sliced into (≥ 1). At 1 the
    /// run reproduces the original static-routing accounting bit for
    /// bit; larger values buy mid-run route repair around browned-out
    /// relays at the cost of re-simulating prefixes of the node phase
    /// (the node simulators are snapshot-free, so epoch `e` re-runs
    /// ticks `0..t_e` — roughly `(E+1)/2` node phases for `E` epochs).
    pub route_epochs: usize,
    /// What to do when an epoch's routing leaves nodes stranded.
    pub on_partition: PartitionPolicy,
}

impl FleetSpec {
    /// A homogeneous fleet: one config replicated over `positions`.
    pub fn homogeneous(
        config: NodeConfig,
        positions: Vec<Point>,
        sink: Point,
        range_m: f64,
        duration_s: f64,
    ) -> Self {
        FleetSpec {
            nodes: positions
                .into_iter()
                .map(|position| FleetNode {
                    config: config.clone(),
                    position,
                })
                .collect(),
            sink,
            range_m,
            radio: RadioEnergyModel::typical(),
            payload_bits: 1024,
            routing: RoutingPolicy::EnergyAware,
            fleet_seed: 0x5EED_F1EE,
            environment: FleetEnvironment::factory_floor(),
            solver: SolverMode::Exact,
            duration_s,
            route_epochs: 1,
            on_partition: PartitionPolicy::Tolerate,
        }
    }
}

/// Node-phase dispatch strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Batched chunks when the fleet is homogeneous, per-sim
    /// otherwise (the default).
    Auto,
    /// Force batched chunks; errors on a heterogeneous fleet.
    Batched,
    /// Force one job per node (the differential-testing oracle path).
    PerSim,
}

/// Network-layer per-node account after a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeNetStats {
    /// Packets the node's own simulation delivered into the network.
    pub originated: f64,
    /// Packets from this node that reached the sink (fluid count).
    pub delivered: f64,
    /// Route length in hops, `None` if the sink is unreachable.
    pub hops_to_sink: Option<usize>,
    /// Relay energy demanded of this node by others' traffic (J).
    pub relay_demand_j: f64,
    /// Relay energy actually spent (after forwarding scaling) (J).
    pub relay_spent_j: f64,
    /// Energy headroom above brown-out at end of run (J); zero if the
    /// node browned out during the run.
    pub headroom_j: f64,
    /// Headroom left after relay spending (J).
    pub residual_j: f64,
    /// Whether the node browned out during its own simulation.
    pub browned_out: bool,
    /// Whether relay demand exhausted the node's headroom.
    pub dead: bool,
    /// Extrapolated relay-exhaustion time (s), when `dead`.
    pub death_s: Option<f64>,
}

/// Fleet-level indicators of one run — the DoE response record.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Simulated duration (s).
    pub duration_s: f64,
    /// Fleet size.
    pub n_nodes: usize,
    /// Total packets originated by node simulations.
    pub packets_originated: f64,
    /// Total packets that reached the sink (fluid count).
    pub packets_delivered: f64,
    /// `packets_delivered / packets_originated` (1 when nothing was
    /// originated).
    pub delivery_fraction: f64,
    /// Total relay energy spent fleet-wide (J).
    pub relay_energy_j: f64,
    /// Mean relay energy per forwarded packet-hop (J).
    pub mean_hop_relay_energy_j: f64,
    /// Earliest relay-exhaustion time (s); `duration_s` if no node
    /// died relaying.
    pub first_death_s: f64,
    /// Nodes whose relay demand exhausted their headroom.
    pub dead_nodes: u32,
    /// Nodes that browned out during their own simulation.
    pub browned_out_nodes: u32,
    /// Nodes with no route to the sink.
    pub unreachable_nodes: u32,
    /// Mean end-of-run residual headroom (J).
    pub residual_mean_j: f64,
    /// Population standard deviation of residual headroom (J) — the
    /// energy-balance spread across the fleet.
    pub residual_spread_j: f64,
    /// Worst per-node brown-out margin `min_v_store − v_off` (V).
    pub min_brownout_margin_v: f64,
    /// Mean per-node uptime fraction.
    pub mean_uptime_fraction: f64,
    /// Epoch boundaries at which routes were actually recomputed
    /// (exclusion set changed); 0 for a static-routing run.
    pub route_repairs: u32,
    /// The epoch-by-epoch audit trail (one entry per route epoch).
    pub epochs: Vec<EpochAudit>,
}

/// Everything a fleet run produces: raw node metrics, the network
/// accounts, and the fleet-level indicator record.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Phase-1 node-simulation metrics, node-indexed.
    pub per_node: Vec<NodeMetrics>,
    /// Phase-2 network accounts, node-indexed.
    pub net: Vec<NodeNetStats>,
    /// Fleet-level indicators.
    pub metrics: FleetMetrics,
}

/// Prepared, validated fleet: every node's simulator constructed once,
/// vibration streams split, topology built.
pub struct FleetSimulator {
    spec: FleetSpec,
    prepared: Vec<PreparedSimulator>,
    sources: Vec<Arc<dyn VibrationSource>>,
    topology: Topology,
    homogeneous: bool,
}

impl FleetSimulator {
    /// Validates the spec, prepares every node simulator, derives
    /// per-node vibration streams and builds the topology — on one
    /// thread. Equivalent to [`FleetSimulator::prepare`]`(spec, 1)`.
    ///
    /// # Errors
    ///
    /// As [`FleetSimulator::prepare`].
    pub fn new(spec: FleetSpec) -> Result<Self> {
        Self::prepare(spec, 1)
    }

    /// Validates the spec and prepares every node — simulator
    /// construction *and* vibration-source instantiation fused into
    /// one per-node job — on the deterministic self-scheduling queue
    /// across `threads` workers, then builds the topology
    /// (grid-bucket, `O(n + links)`).
    ///
    /// **Determinism contract**: per-node preparation is *total* — a
    /// failure at node `i` never abandons the validation of any node
    /// `j > i` — and the surfaced error is always the **smallest
    /// failing node index**, whatever the thread count. (A node's
    /// config error takes precedence over its own environment error,
    /// since the config is validated first within the fused job; across
    /// nodes, only the index decides.)
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] for an empty fleet, a
    /// non-positive payload, an invalid duration, zero route epochs,
    /// an invalid topology, or an environment-factory failure
    /// (smallest failing node); [`NetError::Node`] (smallest failing
    /// index) if a node config fails preparation.
    pub fn prepare(spec: FleetSpec, threads: usize) -> Result<Self> {
        if spec.nodes.is_empty() {
            return Err(NetError::invalid("fleet needs at least one node"));
        }
        if spec.payload_bits == 0 {
            return Err(NetError::invalid("payload must be at least one bit"));
        }
        if !(spec.duration_s > 0.0) || !spec.duration_s.is_finite() {
            return Err(NetError::invalid(format!(
                "duration must be positive and finite, got {}",
                spec.duration_s
            )));
        }
        if spec.route_epochs == 0 {
            return Err(NetError::invalid(
                "route_epochs must be at least 1 (1 = static routing)",
            ));
        }
        // Total validation on the capturing queue: every node's result
        // exists, and the ascending scan below makes the
        // smallest-failing-node error thread-count-invariant.
        let results = run_jobs_capturing(spec.nodes.len(), threads, |i| {
            let prepared =
                PreparedSimulator::with_solver(spec.nodes[i].config.clone(), spec.solver)
                    .map_err(|source| NetError::Node { node: i, source })?;
            let source = spec
                .environment
                .source_for(crate::node_seed(spec.fleet_seed, i))
                .map_err(|e| NetError::invalid(format!("node {i}: {e}")))?;
            Ok((prepared, source))
        });
        let mut prepared = Vec::with_capacity(spec.nodes.len());
        let mut sources: Vec<Arc<dyn VibrationSource>> = Vec::with_capacity(spec.nodes.len());
        for r in results {
            let (p, s) = r?;
            prepared.push(p);
            sources.push(s);
        }
        let positions: Vec<Point> = spec.nodes.iter().map(|n| n.position).collect();
        let topology = Topology::new(positions, spec.sink, spec.range_m)?;
        let homogeneous = prepared
            .windows(2)
            .all(|w| w[0].config().tick_s.to_bits() == w[1].config().tick_s.to_bits());
        Ok(FleetSimulator {
            spec,
            prepared,
            sources,
            topology,
            homogeneous,
        })
    }

    /// The spec this simulator was built from.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Fleet size.
    pub fn node_count(&self) -> usize {
        self.prepared.len()
    }

    /// Whether every lane shares the tick length (bitwise) — the
    /// batched-dispatch eligibility test.
    pub fn is_homogeneous(&self) -> bool {
        self.homogeneous
    }

    /// The prepared per-node simulators (oracle access for the
    /// differential suite).
    pub fn prepared(&self) -> &[PreparedSimulator] {
        &self.prepared
    }

    /// The per-node vibration sources, node-indexed (oracle access
    /// for the differential suite).
    pub fn sources(&self) -> &[Arc<dyn VibrationSource>] {
        &self.sources
    }

    /// Runs phase 1 only, returning each node's own `Result` — lane
    /// failures do not disturb other nodes.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] if `dispatch` is
    /// [`Dispatch::Batched`] on a heterogeneous fleet.
    pub fn run_nodes(
        &self,
        threads: usize,
        dispatch: Dispatch,
    ) -> Result<Vec<ehsim_node::Result<NodeMetrics>>> {
        self.run_nodes_for(threads, dispatch, self.spec.duration_s)
    }

    /// Phase 1 truncated to `duration_s` — the epoch loop runs this at
    /// every epoch boundary. Node trajectories depend only on the tick
    /// index (sources are pure in time), so a shorter run is an exact
    /// prefix of a longer one, on either dispatch path.
    fn run_nodes_for(
        &self,
        threads: usize,
        dispatch: Dispatch,
        duration_s: f64,
    ) -> Result<Vec<ehsim_node::Result<NodeMetrics>>> {
        let batched = match dispatch {
            Dispatch::Auto => self.homogeneous,
            Dispatch::PerSim => false,
            Dispatch::Batched => {
                if !self.homogeneous {
                    return Err(NetError::invalid(
                        "batched dispatch requires a homogeneous (shared-tick) fleet",
                    ));
                }
                true
            }
        };
        let n = self.prepared.len();
        if batched {
            // Contiguous chunks, one batch kernel per chunk. The chunk
            // width depends only on (n, threads) and results are
            // collected in chunk order, so the flattened output is
            // invariant to scheduling.
            let width = n.div_ceil(threads.clamp(1, n)).clamp(1, MAX_BATCH_WIDTH);
            let n_chunks = n.div_ceil(width);
            let chunks = run_jobs(n_chunks, threads, |c| {
                let lo = c * width;
                let hi = ((c + 1) * width).min(n);
                let batch = BatchSimulator::new(self.prepared[lo..hi].to_vec())
                    .map_err(|source| NetError::Node { node: lo, source })?;
                let srcs: Vec<&dyn VibrationSource> =
                    self.sources[lo..hi].iter().map(|s| s.as_ref()).collect();
                batch
                    .run_lanes_with_sources(&srcs, duration_s)
                    .map_err(|source| NetError::Node { node: lo, source })
            })?;
            Ok(chunks.into_iter().flatten().collect())
        } else {
            run_jobs(n, threads, |i| {
                Ok(self.prepared[i].run(self.sources[i].as_ref(), duration_s))
            })
        }
    }

    /// Runs the fleet with auto dispatch.
    ///
    /// # Errors
    ///
    /// [`NetError::Node`] with the **smallest failing node index** if
    /// any node simulation fails.
    pub fn run(&self, threads: usize) -> Result<FleetOutcome> {
        self.run_with_dispatch(threads, Dispatch::Auto)
    }

    /// Runs the fleet with an explicit dispatch strategy.
    ///
    /// # Errors
    ///
    /// As [`FleetSimulator::run`], plus
    /// [`NetError::InvalidParameter`] for a forced-batched dispatch of
    /// a heterogeneous fleet.
    pub fn run_with_dispatch(&self, threads: usize, dispatch: Dispatch) -> Result<FleetOutcome> {
        let epochs = self.spec.route_epochs;
        // One node-phase snapshot per epoch boundary. Each snapshot is
        // an exact prefix of the full run (sources are pure in time),
        // so per-epoch deltas in the accounting pass are exact. The
        // final boundary is `duration_s` itself — not
        // `duration_s·E/E`, which need not round to the same bits.
        let mut snapshots: Vec<Vec<NodeMetrics>> = Vec::with_capacity(epochs);
        for e in 1..=epochs {
            let t_end = if e == epochs {
                self.spec.duration_s
            } else {
                self.spec.duration_s * e as f64 / epochs as f64
            };
            let lanes = self.run_nodes_for(threads, dispatch, t_end)?;
            let mut snap = Vec::with_capacity(lanes.len());
            for (i, lane) in lanes.into_iter().enumerate() {
                match lane {
                    Ok(m) => snap.push(m),
                    Err(source) => return Err(NetError::Node { node: i, source }),
                }
            }
            snapshots.push(snap);
        }
        let (net, metrics) = self.network_accounting(&snapshots)?;
        let Some(per_node) = snapshots.pop() else {
            // route_epochs ≥ 1 is validated at prep; unreachable.
            return Err(NetError::invalid("fleet run produced no snapshots"));
        };
        Ok(FleetOutcome {
            per_node,
            net,
            metrics,
        })
    }

    /// The network phase: a sequential energy-accounting pass per
    /// route epoch over the node-phase boundary snapshots
    /// (`snapshots[e]` = every node's metrics at the end of epoch
    /// `e`; the last snapshot is the full run).
    ///
    /// With one snapshot this is exactly the original single-pass
    /// accounting — every epoch-generalised expression reduces bit
    /// for bit to its static form (pinned by
    /// `tests/fleet_equivalence.rs`).
    fn network_accounting(
        &self,
        snapshots: &[Vec<NodeMetrics>],
    ) -> Result<(Vec<NodeNetStats>, FleetMetrics)> {
        let Some(per_node) = snapshots.last() else {
            // route_epochs ≥ 1 is validated at prep; unreachable.
            return Err(NetError::invalid("network accounting needs snapshots"));
        };
        let n = per_node.len();
        let epochs = snapshots.len();
        let sink = self.topology.sink_index();
        let duration_s = self.spec.duration_s;
        let radio = &self.spec.radio;
        let bits = self.spec.payload_bits;

        let vpos = |v: usize| {
            if v == sink {
                self.topology.sink()
            } else {
                self.topology.position(v)
            }
        };
        // Per-packet forwarding energy of relay `path[j]` on a path:
        // receive, then transmit to `path[j + 1]`.
        let hop_energy = |path: &[usize], j: usize| {
            let d = vpos(path[j]).distance_m(&vpos(path[j + 1]));
            radio.hop_energy_j(bits, d)
        };

        // Cumulative state threaded across epochs.
        let mut spent = vec![0.0f64; n];
        let mut originated_total = vec![0.0f64; n];
        let mut delivered_total = vec![0.0f64; n];
        let mut demand_total = vec![0.0f64; n];
        let mut death_s: Vec<Option<f64>> = vec![None; n];
        let mut first_death_s = duration_s;
        let mut relay_hops = 0.0f64;
        let mut prev_packets: Vec<u64> = vec![0; n];
        let mut prev_browned = vec![false; n];
        let mut prev_reachable: Vec<bool> = Vec::new();
        let mut routes: Option<Routes> = None;
        let mut route_repairs = 0u32;
        let mut audits: Vec<EpochAudit> = Vec::with_capacity(epochs);
        let mut t_prev = 0.0f64;
        let mut last_paths: Vec<Option<Vec<usize>>> = Vec::new();
        let mut last_headroom = vec![0.0f64; n];

        for (e, snap) in snapshots.iter().enumerate() {
            let t_end = if e + 1 == epochs {
                duration_s
            } else {
                duration_s * (e + 1) as f64 / epochs as f64
            };
            // Brown-outs are cumulative (each snapshot is a prefix of
            // the next), so `browned` only ever grows across epochs.
            let browned: Vec<bool> = snap.iter().map(|m| m.brownout_count > 0).collect();
            let newly_browned: Vec<usize> =
                (0..n).filter(|&i| browned[i] && !prev_browned[i]).collect();

            // Route repair: energy-aware routes are recomputed
            // whenever the exclusion set changed; min-hop stays the
            // static baseline (computed once, never repaired).
            let recompute = match self.spec.routing {
                RoutingPolicy::MinHop => routes.is_none(),
                RoutingPolicy::EnergyAware => routes.is_none() || browned != prev_browned,
            };
            let rerouted = recompute && e > 0;
            if recompute {
                let r = match self.spec.routing {
                    RoutingPolicy::MinHop => self.topology.min_hop_routes(),
                    RoutingPolicy::EnergyAware => {
                        self.topology.energy_aware_routes(radio, bits, &browned)?
                    }
                };
                if rerouted {
                    route_repairs += 1;
                }
                routes = Some(r);
            }
            let Some(routes_e) = routes.as_ref() else {
                return Err(NetError::invalid("routes unavailable after recompute"));
            };
            let paths: Vec<Option<Vec<usize>>> = (0..n).map(|i| routes_e.path(i).ok()).collect();
            if self.spec.on_partition == PartitionPolicy::Error {
                if let Some(node) = (0..n).find(|&i| paths[i].is_none()) {
                    return Err(NetError::Partitioned { epoch: e, node });
                }
            }
            let newly_stranded: Vec<usize> = if e == 0 {
                Vec::new()
            } else {
                (0..n)
                    .filter(|&i| prev_reachable[i] && paths[i].is_none())
                    .collect()
            };

            // Headroom at this epoch's boundary: stored energy above
            // the brown-out threshold (zero once browned out), less
            // what earlier epochs' relaying already spent.
            let headroom: Vec<f64> = (0..n)
                .map(|i| {
                    if browned[i] {
                        0.0
                    } else {
                        let cfg = self.prepared[i].config();
                        (cfg.storage.energy_j(snap[i].final_v_store)
                            - cfg.storage.energy_j(cfg.thresholds.v_off))
                        .max(0.0)
                    }
                })
                .collect();
            let available: Vec<f64> = (0..n).map(|u| (headroom[u] - spent[u]).max(0.0)).collect();

            // Packets this epoch: exact prefix deltas.
            let originated: Vec<f64> = (0..n)
                .map(|i| snap[i].packets_delivered.saturating_sub(prev_packets[i]) as f64)
                .collect();

            // Pass 1 — relay demand at full (unscaled) epoch traffic.
            let mut demand = vec![0.0f64; n];
            for i in 0..n {
                let Some(path) = &paths[i] else { continue };
                for j in 1..path.len() - 1 {
                    demand[path[j]] += originated[i] * hop_energy(path, j);
                }
            }

            // Forwarding fraction: what share of its demanded traffic
            // each relay can still afford.
            let scale: Vec<f64> = (0..n)
                .map(|u| {
                    if demand[u] > available[u] && demand[u] > 0.0 {
                        available[u] / demand[u]
                    } else {
                        1.0
                    }
                })
                .collect();

            // Pass 2 — fluid flow: each stream attenuates through its
            // relays' forwarding fractions; relays pay rx on what
            // arrives and tx on what they forward.
            let mut delivered = vec![0.0f64; n];
            for i in 0..n {
                let Some(path) = &paths[i] else { continue };
                let mut flow = originated[i];
                for j in 1..path.len() - 1 {
                    let u = path[j];
                    let d = vpos(u).distance_m(&vpos(path[j + 1]));
                    let arriving = flow;
                    flow *= scale[u];
                    spent[u] +=
                        arriving * radio.rx_energy_j(bits) + flow * radio.tx_energy_j(bits, d);
                    relay_hops += arriving;
                }
                delivered[i] = flow;
            }

            // Relay death: extrapolated exhaustion time, within this
            // epoch, of over-demanded relays that had survived their
            // own duty cycle. First death wins per node.
            for u in 0..n {
                if !browned[u] && demand[u] > available[u] && death_s[u].is_none() {
                    let t = t_prev + (t_end - t_prev) * available[u] / demand[u];
                    if t < first_death_s {
                        first_death_s = t;
                    }
                    death_s[u] = Some(t);
                }
            }

            for i in 0..n {
                originated_total[i] += originated[i];
                delivered_total[i] += delivered[i];
                demand_total[i] += demand[i];
            }
            audits.push(EpochAudit {
                epoch: e,
                t_start_s: t_prev,
                t_end_s: t_end,
                excluded_relays: match self.spec.routing {
                    RoutingPolicy::MinHop => 0,
                    RoutingPolicy::EnergyAware => browned.iter().filter(|&&b| b).count() as u32,
                },
                newly_browned,
                rerouted,
                unreachable_nodes: paths.iter().filter(|p| p.is_none()).count() as u32,
                newly_stranded,
                packets_originated: originated.iter().sum(),
                packets_delivered: delivered.iter().sum(),
            });

            prev_reachable = paths.iter().map(|p| p.is_some()).collect();
            for i in 0..n {
                prev_packets[i] = snap[i].packets_delivered;
            }
            prev_browned = browned;
            last_headroom = headroom;
            last_paths = paths;
            t_prev = t_end;
        }

        let residual: Vec<f64> = (0..n)
            .map(|u| (last_headroom[u] - spent[u]).max(0.0))
            .collect();
        let residual_mean = residual.iter().sum::<f64>() / n as f64;
        let residual_spread = (residual
            .iter()
            .map(|r| (r - residual_mean) * (r - residual_mean))
            .sum::<f64>()
            / n as f64)
            .sqrt();

        let packets_originated: f64 = originated_total.iter().sum();
        let packets_delivered: f64 = delivered_total.iter().sum();
        let relay_energy_j: f64 = spent.iter().sum();
        let dead_nodes = death_s.iter().filter(|d| d.is_some()).count() as u32;
        let min_brownout_margin_v = (0..n)
            .map(|i| per_node[i].min_v_store - self.prepared[i].config().thresholds.v_off)
            .fold(f64::INFINITY, f64::min);
        let mean_uptime_fraction =
            per_node.iter().map(|m| m.uptime_fraction).sum::<f64>() / n as f64;

        let net: Vec<NodeNetStats> = (0..n)
            .map(|i| NodeNetStats {
                originated: originated_total[i],
                delivered: delivered_total[i],
                hops_to_sink: last_paths[i].as_ref().map(|p| p.len() - 1),
                relay_demand_j: demand_total[i],
                relay_spent_j: spent[i],
                headroom_j: last_headroom[i],
                residual_j: residual[i],
                browned_out: prev_browned[i],
                dead: death_s[i].is_some(),
                death_s: death_s[i],
            })
            .collect();

        let metrics = FleetMetrics {
            duration_s,
            n_nodes: n,
            packets_originated,
            packets_delivered,
            delivery_fraction: if packets_originated > 0.0 {
                packets_delivered / packets_originated
            } else {
                1.0
            },
            relay_energy_j,
            mean_hop_relay_energy_j: if relay_hops > 0.0 {
                relay_energy_j / relay_hops
            } else {
                0.0
            },
            first_death_s,
            dead_nodes,
            browned_out_nodes: prev_browned.iter().filter(|&&b| b).count() as u32,
            unreachable_nodes: last_paths.iter().filter(|p| p.is_none()).count() as u32,
            residual_mean_j: residual_mean,
            residual_spread_j: residual_spread,
            min_brownout_margin_v,
            mean_uptime_fraction,
            route_repairs,
            epochs: audits,
        };
        Ok((net, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placement;

    fn tiny_spec(n: usize, duration_s: f64) -> FleetSpec {
        let positions = Placement::UniformRandom {
            n,
            width_m: 60.0,
            height_m: 60.0,
            seed: 11,
        }
        .positions()
        .unwrap();
        let mut cfg = NodeConfig::default_node();
        cfg.tick_s = 0.5;
        FleetSpec::homogeneous(cfg, positions, Point::new(30.0, 30.0), 25.0, duration_s)
    }

    #[test]
    fn fleet_runs_and_accounts() {
        let fleet = FleetSimulator::new(tiny_spec(12, 30.0)).unwrap();
        assert!(fleet.is_homogeneous());
        let out = fleet.run(2).unwrap();
        assert_eq!(out.per_node.len(), 12);
        assert_eq!(out.net.len(), 12);
        let m = &out.metrics;
        assert!(m.packets_delivered <= m.packets_originated);
        assert!((0.0..=1.0).contains(&m.delivery_fraction));
        assert!(m.first_death_s <= m.duration_s);
        assert!(m.relay_energy_j >= 0.0);
    }

    #[test]
    fn thread_count_and_dispatch_do_not_change_bits() {
        let fleet = FleetSimulator::new(tiny_spec(10, 30.0)).unwrap();
        let base = fleet.run_with_dispatch(1, Dispatch::PerSim).unwrap();
        for (threads, dispatch) in [
            (1, Dispatch::Batched),
            (4, Dispatch::Batched),
            (4, Dispatch::PerSim),
        ] {
            let out = fleet.run_with_dispatch(threads, dispatch).unwrap();
            assert_eq!(
                base.metrics.packets_delivered.to_bits(),
                out.metrics.packets_delivered.to_bits()
            );
            assert_eq!(
                base.metrics.residual_spread_j.to_bits(),
                out.metrics.residual_spread_j.to_bits()
            );
            for (a, b) in base.per_node.iter().zip(&out.per_node) {
                assert_eq!(a.final_v_store.to_bits(), b.final_v_store.to_bits());
            }
        }
    }

    #[test]
    fn forced_batched_rejects_mixed_ticks() {
        let mut spec = tiny_spec(4, 10.0);
        spec.nodes[2].config.tick_s = 0.25;
        let fleet = FleetSimulator::new(spec).unwrap();
        assert!(!fleet.is_homogeneous());
        assert!(fleet.run_with_dispatch(2, Dispatch::Batched).is_err());
        // Auto falls back per-sim and still runs.
        assert!(fleet.run(2).is_ok());
    }

    #[test]
    fn empty_fleet_and_zero_payload_rejected() {
        let mut spec = tiny_spec(3, 10.0);
        spec.payload_bits = 0;
        assert!(FleetSimulator::new(spec).is_err());
        let mut spec = tiny_spec(3, 10.0);
        spec.nodes.clear();
        assert!(FleetSimulator::new(spec).is_err());
        let mut spec = tiny_spec(3, 10.0);
        spec.duration_s = f64::INFINITY;
        assert!(FleetSimulator::new(spec).is_err());
    }
}
