//! Static connectivity and routing.
//!
//! A [`Topology`] is `n` sensor nodes plus one mains-powered sink,
//! with a bidirectional link between every pair within the radio
//! range. Routing produces a [`Routes`] table — one next-hop per node,
//! forming a tree rooted at the sink — under one of two metrics:
//!
//! * **Min-hop** ([`Topology::min_hop_routes`]): breadth-first search
//!   from the sink; every route has the provably minimum hop count
//!   (BFS on unit weights *is* Dijkstra), parents tie-broken
//!   deterministically toward the smallest node index.
//! * **Energy-aware** ([`Topology::energy_aware_routes`]): Dijkstra
//!   from the sink with the per-packet hop energy
//!   ([`RadioEnergyModel::hop_energy_j`]) as the edge weight, and
//!   *excluded relays*: a node marked blocked (e.g. browned out) may
//!   still originate packets but is never used as an intermediate.
//!
//! Both routers are total: a node with no path simply has no next hop,
//! and asking for its path returns the typed
//! [`NetError::UnreachableSink`] — never a hang, never a panic.

use crate::placement::Point;
use crate::radio::{Link, RadioEnergyModel};
use crate::{NetError, Result};

/// Static fleet connectivity: node positions, one sink, and the link
/// set induced by a radio range.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Point>,
    sink: Point,
    range_m: f64,
    /// Adjacency over `n + 1` vertices (vertex `n` is the sink), each
    /// list sorted by neighbour index — the determinism anchor for
    /// both routers.
    adj: Vec<Vec<Link>>,
}

impl Topology {
    /// Builds the topology over `positions` with the sink at `sink`,
    /// linking every vertex pair within `range_m`.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] for an empty fleet, a
    /// non-positive / non-finite range, or two coincident vertices
    /// (a zero-distance link is a self-send; see [`Link::new`]).
    pub fn new(positions: Vec<Point>, sink: Point, range_m: f64) -> Result<Self> {
        if positions.is_empty() {
            return Err(NetError::invalid("topology needs at least one node"));
        }
        if !(range_m > 0.0) || !range_m.is_finite() {
            return Err(NetError::invalid(format!(
                "radio range must be positive and finite, got {range_m}"
            )));
        }
        let n = positions.len();
        let vertex = |i: usize| if i == n { sink } else { positions[i] };
        let mut adj: Vec<Vec<Link>> = vec![Vec::new(); n + 1];
        for a in 0..=n {
            for b in (a + 1)..=n {
                let d = vertex(a).distance_m(&vertex(b));
                if !(d > 0.0) || !d.is_finite() {
                    return Err(NetError::invalid(format!(
                        "vertices {a} and {b} are coincident (d = {d}); a zero-distance \
                         link is a self-send"
                    )));
                }
                if d <= range_m {
                    adj[a].push(Link::new(a, b, d)?);
                    adj[b].push(Link::new(b, a, d)?);
                }
            }
        }
        // Pairs are visited in ascending (a, b), so each list is
        // already sorted by neighbour index; assert the invariant.
        debug_assert!(adj.iter().all(|l| l.windows(2).all(|w| w[0].to < w[1].to)));
        Ok(Topology {
            positions,
            sink,
            range_m,
            adj,
        })
    }

    /// Number of sensor nodes (the sink is not counted).
    pub fn n_nodes(&self) -> usize {
        self.positions.len()
    }

    /// The sink's vertex index (`n_nodes()`).
    pub fn sink_index(&self) -> usize {
        self.positions.len()
    }

    /// Position of node `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// The sink position.
    pub fn sink(&self) -> Point {
        self.sink
    }

    /// The radio range (m).
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Links incident to vertex `i` (sorted by neighbour index).
    pub fn neighbors(&self, i: usize) -> &[Link] {
        &self.adj[i]
    }

    /// Minimum-hop routing: BFS from the sink over the (symmetric)
    /// link set, neighbours expanded in ascending index so the parent
    /// choice — and therefore every path — is deterministic.
    pub fn min_hop_routes(&self) -> Routes {
        let n = self.n_nodes();
        let sink = self.sink_index();
        let mut next_hop: Vec<Option<usize>> = vec![None; n + 1];
        let mut hops: Vec<Option<usize>> = vec![None; n + 1];
        hops[sink] = Some(0);
        // The queue carries each vertex's hop count alongside it, so no
        // `expect` is needed to read it back out of `hops`.
        let mut queue = std::collections::VecDeque::from([(sink, 0usize)]);
        while let Some((v, h)) = queue.pop_front() {
            for link in &self.adj[v] {
                let u = link.to;
                if hops[u].is_none() {
                    hops[u] = Some(h + 1);
                    next_hop[u] = Some(v);
                    queue.push_back((u, h + 1));
                }
            }
        }
        Routes {
            sink,
            cost: hops.iter().map(|h| h.map(|c| c as f64)).collect(),
            next_hop,
        }
    }

    /// Energy-aware routing: Dijkstra from the sink with the
    /// per-packet relay hop energy `E_rx + E_tx(d)` as the edge
    /// weight (receiving at the sink is free — it is mains-powered).
    ///
    /// `relay_blocked[i] = true` removes node `i` from every *relay*
    /// position: it may still originate packets (its own cost is
    /// computed) but no other node's route passes through it.
    /// Ties are broken toward the smallest vertex index, so the route
    /// tree is deterministic.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] if `relay_blocked.len()` differs
    /// from the node count.
    pub fn energy_aware_routes(
        &self,
        radio: &RadioEnergyModel,
        payload_bits: u64,
        relay_blocked: &[bool],
    ) -> Result<Routes> {
        let n = self.n_nodes();
        if relay_blocked.len() != n {
            return Err(NetError::invalid(format!(
                "got {} relay-blocked flags for {n} nodes",
                relay_blocked.len()
            )));
        }
        let sink = self.sink_index();
        let mut dist: Vec<f64> = vec![f64::INFINITY; n + 1];
        let mut next_hop: Vec<Option<usize>> = vec![None; n + 1];
        let mut settled = vec![false; n + 1];
        dist[sink] = 0.0;
        // O(V²) selection keeps the float comparisons explicit and the
        // tie-break (smallest index) obvious; fleets are ≤ a few
        // thousand vertices, so this is never the bottleneck.
        loop {
            let mut v: Option<usize> = None;
            for (i, &d) in dist.iter().enumerate() {
                if !settled[i] && d.is_finite() && v.map_or(true, |b| d < dist[b]) {
                    v = Some(i);
                }
            }
            let Some(v) = v else { break };
            settled[v] = true;
            // A blocked vertex is settled (its own route cost is
            // final) but never relaxes its neighbours — nothing routes
            // *through* it.
            if v != sink && relay_blocked[v] {
                continue;
            }
            for link in &self.adj[v] {
                let u = link.to;
                if settled[u] {
                    continue;
                }
                // Cost for u to hand a packet to v: u transmits over
                // the link; v receives unless it is the sink.
                let rx = if v == sink {
                    0.0
                } else {
                    radio.rx_energy_j(payload_bits)
                };
                let cand = dist[v] + radio.tx_energy_j(payload_bits, link.distance_m) + rx;
                if cand < dist[u] {
                    dist[u] = cand;
                    next_hop[u] = Some(v);
                }
            }
        }
        Ok(Routes {
            sink,
            cost: dist.iter().map(|&d| d.is_finite().then_some(d)).collect(),
            next_hop,
        })
    }
}

/// A routing table: the next hop toward the sink for every node, plus
/// the route cost under the metric that built it (hop count for
/// min-hop, joules per packet for energy-aware).
#[derive(Debug, Clone)]
pub struct Routes {
    sink: usize,
    next_hop: Vec<Option<usize>>,
    cost: Vec<Option<f64>>,
}

impl Routes {
    /// The sink's vertex index.
    pub fn sink_index(&self) -> usize {
        self.sink
    }

    /// Next hop of node `i`, or `None` if the sink is unreachable.
    pub fn next_hop(&self, i: usize) -> Option<usize> {
        self.next_hop[i]
    }

    /// Whether node `i` can reach the sink.
    pub fn is_reachable(&self, i: usize) -> bool {
        i == self.sink || self.next_hop[i].is_some()
    }

    /// Route cost of node `i` under the builder's metric, or `None`
    /// if unreachable.
    pub fn cost(&self, i: usize) -> Option<f64> {
        self.cost[i]
    }

    /// The full path `[i, …, sink]` of node `i`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnreachableSink`] if node `i` has no route — a
    /// typed error, never a hang (the next-hop table is a tree by
    /// construction, and the walk is additionally bounded by the
    /// vertex count).
    pub fn path(&self, i: usize) -> Result<Vec<usize>> {
        let mut path = vec![i];
        let mut v = i;
        while v != self.sink {
            match self.next_hop[v] {
                Some(next) => {
                    path.push(next);
                    v = next;
                }
                None => return Err(NetError::UnreachableSink { node: i }),
            }
            if path.len() > self.next_hop.len() {
                // Unreachable with a well-formed table; a defensive
                // bound so a corrupted table can never loop.
                return Err(NetError::UnreachableSink { node: i });
            }
        }
        Ok(path)
    }

    /// Hop count of node `i`'s route, or `None` if unreachable.
    pub fn hop_count(&self, i: usize) -> Option<usize> {
        self.path(i).ok().map(|p| p.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> Topology {
        // Nodes at x = s, 2s, …, ns; sink at the origin.
        let pts = (1..=n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::new(pts, Point::new(0.0, 0.0), spacing * 1.01).unwrap()
    }

    #[test]
    fn line_topology_routes_through_chain() {
        let t = line(4, 10.0);
        let r = t.min_hop_routes();
        assert_eq!(r.path(3).unwrap(), vec![3, 2, 1, 0, t.sink_index()]);
        assert_eq!(r.hop_count(3), Some(4));
        assert_eq!(r.cost(0), Some(1.0));
    }

    #[test]
    fn coincident_vertices_are_rejected() {
        let pts = vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        assert!(Topology::new(pts, Point::new(0.0, 0.0), 5.0).is_err());
    }

    #[test]
    fn unreachable_is_typed_error() {
        // Two nodes far apart, only node 0 in sink range.
        let pts = vec![Point::new(5.0, 0.0), Point::new(100.0, 0.0)];
        let t = Topology::new(pts, Point::new(0.0, 0.0), 10.0).unwrap();
        let r = t.min_hop_routes();
        assert!(r.is_reachable(0));
        assert!(!r.is_reachable(1));
        match r.path(1) {
            Err(NetError::UnreachableSink { node: 1 }) => {}
            other => panic!("expected UnreachableSink, got {other:?}"),
        }
    }
}
