//! Static connectivity and routing.
//!
//! A [`Topology`] is `n` sensor nodes plus one mains-powered sink,
//! with a bidirectional link between every pair within the radio
//! range. The production build ([`Topology::new`]) runs on a
//! grid-bucket spatial index — cells at least one radio range wide, so
//! every in-range pair lives in adjacent cells — and is `O(n + L)` for
//! `L` links; the quadratic all-pairs construction is preserved as
//! [`Topology::new_all_pairs`], the differential-testing oracle, and
//! both produce the **same link set in the same deterministic order**
//! (each adjacency list ascending by neighbour index, distances
//! computed by the same [`Point::distance_m`] call — pinned bitwise by
//! `crates/net/tests/topology_grid.rs`).
//!
//! Routing produces a [`Routes`] table — one next-hop per node,
//! forming a tree rooted at the sink — under one of two metrics:
//!
//! * **Min-hop** ([`Topology::min_hop_routes`]): breadth-first search
//!   from the sink; every route has the provably minimum hop count
//!   (BFS on unit weights *is* Dijkstra), parents tie-broken
//!   deterministically toward the smallest node index.
//! * **Energy-aware** ([`Topology::energy_aware_routes`]): Dijkstra
//!   from the sink with the per-packet hop energy
//!   ([`RadioEnergyModel::hop_energy_j`]) as the edge weight, and
//!   *excluded relays*: a node marked blocked (e.g. browned out) may
//!   still originate packets but is never used as an intermediate.
//!   The production router is a binary-heap Dijkstra (`O(E log V)`,
//!   the shape route repair re-runs at every epoch boundary); the
//!   `O(V²)` selection loop survives as
//!   [`Topology::energy_aware_routes_reference`], its settle-order
//!   oracle — both settle vertices in ascending `(cost, index)` order
//!   and relax adjacency lists in ascending neighbour order, so the
//!   parent trees and route costs are bit-identical.
//!
//! Both routers are total: a node with no path simply has no next hop,
//! and asking for its path returns the typed
//! [`NetError::UnreachableSink`] — never a hang, never a panic.

use crate::placement::Point;
use crate::radio::{Link, RadioEnergyModel};
use crate::{NetError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Static fleet connectivity: node positions, one sink, and the link
/// set induced by a radio range.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Point>,
    sink: Point,
    range_m: f64,
    /// Adjacency over `n + 1` vertices (vertex `n` is the sink), each
    /// list sorted by neighbour index — the determinism anchor for
    /// both routers.
    adj: Vec<Vec<Link>>,
}

/// Grid-cell budget multiplier: the bucket grid never allocates more
/// than ~4 cells per vertex, whatever the ratio of area to radio
/// range, so sparse fleets over huge floors stay `O(n)` in memory.
const MAX_CELLS_PER_VERTEX: usize = 4;

fn validate_common(positions: &[Point], range_m: f64) -> Result<()> {
    if positions.is_empty() {
        return Err(NetError::invalid("topology needs at least one node"));
    }
    if !(range_m > 0.0) || !range_m.is_finite() {
        return Err(NetError::invalid(format!(
            "radio range must be positive and finite, got {range_m}"
        )));
    }
    Ok(())
}

fn coincident_error(a: usize, b: usize, d: f64) -> NetError {
    NetError::invalid(format!(
        "vertices {a} and {b} are coincident (d = {d}); a zero-distance \
         link is a self-send"
    ))
}

impl Topology {
    /// Builds the topology over `positions` with the sink at `sink`,
    /// linking every vertex pair within `range_m`.
    ///
    /// This is the grid-bucket production build: vertices are bucketed
    /// into cells at least one radio range wide, and each vertex scans
    /// only the cell window covering its range disc. The result is
    /// bit-identical — same links, same order, same distances — to the
    /// all-pairs oracle [`Topology::new_all_pairs`].
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] for an empty fleet, a
    /// non-positive / non-finite range, a non-finite vertex
    /// coordinate, or two coincident vertices (a zero-distance link is
    /// a self-send; see [`Link::new`]). The first coincident pair in
    /// ascending `(a, b)` order is reported — the same pair the
    /// all-pairs oracle reports.
    pub fn new(positions: Vec<Point>, sink: Point, range_m: f64) -> Result<Self> {
        validate_common(&positions, range_m)?;
        let n = positions.len();
        let vertex = |i: usize| if i == n { sink } else { positions[i] };

        // The all-pairs oracle rejects non-finite coordinates through
        // its distance check; the grid path must reject them *before*
        // bucketing (a NaN coordinate has no cell).
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for i in 0..=n {
            let p = vertex(i);
            if !p.x.is_finite() || !p.y.is_finite() {
                return Err(NetError::invalid(format!(
                    "vertex {i} has a non-finite coordinate ({}, {})",
                    p.x, p.y
                )));
            }
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let span_x = max_x - min_x;
        let span_y = max_y - min_y;

        // Cells per axis: ideally floor(span / range) (cell edge >=
        // range), capped so the grid stays O(n) cells even when the
        // floor dwarfs the radio range. Correctness never depends on
        // the cell edge: each vertex scans the cell window covering
        // [x - range, x + range] x [y - range, y + range] exactly, so
        // a capped (coarser) grid only widens the windows.
        let n_vertices = n + 1;
        let max_cells = MAX_CELLS_PER_VERTEX * n_vertices + 16;
        let cells_axis = |span: f64| -> usize {
            if span > range_m {
                // Truncation saturates for astronomically large ratios,
                // which the cap below immediately pulls back to O(n).
                ((span / range_m) as usize).max(1)
            } else {
                1
            }
        };
        let mut nx = cells_axis(span_x).min(max_cells);
        let mut ny = cells_axis(span_y).min(max_cells);
        while nx * ny > max_cells {
            if nx >= ny {
                nx = nx.div_ceil(2);
            } else {
                ny = ny.div_ceil(2);
            }
        }

        // Monotone cell coordinate; clamped at both ends so
        // out-of-box probes (x - range below the floor plan) land on
        // the border cells. A negative float truncates to 0 via the
        // saturating `as` conversion.
        let cell_x = move |x: f64| -> usize {
            if span_x <= 0.0 {
                return 0;
            }
            (((x - min_x) / span_x) * nx as f64).min((nx - 1) as f64) as usize
        };
        let cell_y = move |y: f64| -> usize {
            if span_y <= 0.0 {
                return 0;
            }
            (((y - min_y) / span_y) * ny as f64).min((ny - 1) as f64) as usize
        };

        // Bucket vertices into a flat CSR layout (counts → offsets →
        // fill) — no per-cell allocations. Filling in vertex-index
        // order keeps every cell's occupant slice ascending.
        let n_cells = nx * ny;
        let mut cell_of = vec![0usize; n_vertices];
        let mut counts = vec![0usize; n_cells + 1];
        for i in 0..=n {
            let p = vertex(i);
            let c = cell_y(p.y) * nx + cell_x(p.x);
            cell_of[i] = c;
            counts[c + 1] += 1;
        }
        for c in 0..n_cells {
            counts[c + 1] += counts[c];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        // Occupants carry their coordinates inline so the hot
        // candidate scan below reads one contiguous stream instead of
        // chasing indices back into `positions`.
        let mut occupants = vec![(0usize, Point { x: 0.0, y: 0.0 }); n_vertices];
        for i in 0..=n {
            let c = cell_of[i];
            occupants[cursor[c]] = (i, vertex(i));
            cursor[c] += 1;
        }

        // Conservative squared-distance gate: any candidate with
        // dx² + dy² strictly above range² · (1 + 1e-12) has a true
        // distance above range by far more than one ulp of sqrt
        // rounding, so it can be dropped without computing the root.
        // Survivors (including the degenerate 0 / inf cases) still go
        // through the exact `distance_m` test, so the link set and
        // every distance bit match the all-pairs oracle.
        let range_sq_hi = range_m * range_m * (1.0 + 1e-12);
        let mut adj: Vec<Vec<Link>> = vec![Vec::new(); n + 1];
        let mut near: Vec<(usize, f64)> = Vec::new();
        for a in 0..=n {
            let pa = vertex(a);
            near.clear();
            // The window covering a's range disc — exact by cell_x/y
            // monotonicity, so no in-range neighbour can sit outside
            // it whatever the cell edge rounding.
            let (cx0, cx1) = (cell_x(pa.x - range_m), cell_x(pa.x + range_m));
            let (cy0, cy1) = (cell_y(pa.y - range_m), cell_y(pa.y + range_m));
            for cy in cy0..=cy1 {
                // Adjacent cells in a row are adjacent in the CSR
                // array, so the whole row window is one slice.
                let row = cy * nx;
                for &(b, pb) in &occupants[offsets[row + cx0]..offsets[row + cx1 + 1]] {
                    if b == a {
                        continue;
                    }
                    let dx = pa.x - pb.x;
                    let dy = pa.y - pb.y;
                    let d_sq = dx * dx + dy * dy;
                    if d_sq > range_sq_hi && d_sq.is_finite() {
                        continue;
                    }
                    let d = pa.distance_m(&pb);
                    if d <= range_m || !(d > 0.0) || !d.is_finite() {
                        near.push((b, d));
                    }
                }
            }
            // Ascending neighbour order: the determinism anchor, and
            // what makes the degenerate-pair error site match the
            // all-pairs scan (the lexicographically smallest coincident
            // pair is found at its smaller endpoint, smallest partner
            // first).
            near.sort_unstable_by_key(|&(b, _)| b);
            let mut links = Vec::with_capacity(near.len());
            for &(b, d) in &near {
                if !(d > 0.0) || !d.is_finite() {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    return Err(coincident_error(lo, hi, d));
                }
                links.push(Link::new(a, b, d)?);
            }
            adj[a] = links;
        }
        debug_assert!(adj.iter().all(|l| l.windows(2).all(|w| w[0].to < w[1].to)));
        Ok(Topology {
            positions,
            sink,
            range_m,
            adj,
        })
    }

    /// The quadratic all-pairs reference build — the oracle the
    /// differential suite holds [`Topology::new`] against. Checks
    /// every vertex pair, so it is `O(n²)` and unusable beyond a few
    /// thousand nodes; it exists to define the link set the grid
    /// build must reproduce bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Topology::new`].
    pub fn new_all_pairs(positions: Vec<Point>, sink: Point, range_m: f64) -> Result<Self> {
        validate_common(&positions, range_m)?;
        let n = positions.len();
        let vertex = |i: usize| if i == n { sink } else { positions[i] };
        let mut adj: Vec<Vec<Link>> = vec![Vec::new(); n + 1];
        for a in 0..=n {
            for b in (a + 1)..=n {
                let d = vertex(a).distance_m(&vertex(b));
                if !(d > 0.0) || !d.is_finite() {
                    return Err(coincident_error(a, b, d));
                }
                if d <= range_m {
                    adj[a].push(Link::new(a, b, d)?);
                    adj[b].push(Link::new(b, a, d)?);
                }
            }
        }
        // Pairs are visited in ascending (a, b), so each list is
        // already sorted by neighbour index; assert the invariant.
        debug_assert!(adj.iter().all(|l| l.windows(2).all(|w| w[0].to < w[1].to)));
        Ok(Topology {
            positions,
            sink,
            range_m,
            adj,
        })
    }

    /// Number of sensor nodes (the sink is not counted).
    pub fn n_nodes(&self) -> usize {
        self.positions.len()
    }

    /// The sink's vertex index (`n_nodes()`).
    pub fn sink_index(&self) -> usize {
        self.positions.len()
    }

    /// Position of node `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// The sink position.
    pub fn sink(&self) -> Point {
        self.sink
    }

    /// The radio range (m).
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Links incident to vertex `i` (sorted by neighbour index).
    pub fn neighbors(&self, i: usize) -> &[Link] {
        &self.adj[i]
    }

    /// Total number of directed links (each undirected pair counts
    /// twice).
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Minimum-hop routing: BFS from the sink over the (symmetric)
    /// link set, neighbours expanded in ascending index so the parent
    /// choice — and therefore every path — is deterministic.
    pub fn min_hop_routes(&self) -> Routes {
        let n = self.n_nodes();
        let sink = self.sink_index();
        let mut next_hop: Vec<Option<usize>> = vec![None; n + 1];
        let mut hops: Vec<Option<usize>> = vec![None; n + 1];
        hops[sink] = Some(0);
        // The queue carries each vertex's hop count alongside it, so no
        // `expect` is needed to read it back out of `hops`.
        let mut queue = std::collections::VecDeque::from([(sink, 0usize)]);
        while let Some((v, h)) = queue.pop_front() {
            for link in &self.adj[v] {
                let u = link.to;
                if hops[u].is_none() {
                    hops[u] = Some(h + 1);
                    next_hop[u] = Some(v);
                    queue.push_back((u, h + 1));
                }
            }
        }
        Routes {
            sink,
            cost: hops.iter().map(|h| h.map(|c| c as f64)).collect(),
            next_hop,
        }
    }

    /// Energy-aware routing: Dijkstra from the sink with the
    /// per-packet relay hop energy `E_rx + E_tx(d)` as the edge
    /// weight (receiving at the sink is free — it is mains-powered).
    ///
    /// `relay_blocked[i] = true` removes node `i` from every *relay*
    /// position: it may still originate packets (its own cost is
    /// computed) but no other node's route passes through it.
    /// Ties are broken toward the smallest vertex index, so the route
    /// tree is deterministic.
    ///
    /// This is the binary-heap production router (`O(E log V)`), run
    /// once per route epoch at fleet scale; it settles vertices in
    /// ascending `(cost, index)` order — exactly the order the `O(V²)`
    /// selection oracle [`Topology::energy_aware_routes_reference`]
    /// settles them — so parents and costs are bit-identical.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] if `relay_blocked.len()` differs
    /// from the node count.
    pub fn energy_aware_routes(
        &self,
        radio: &RadioEnergyModel,
        payload_bits: u64,
        relay_blocked: &[bool],
    ) -> Result<Routes> {
        let n = self.n_nodes();
        if relay_blocked.len() != n {
            return Err(NetError::invalid(format!(
                "got {} relay-blocked flags for {n} nodes",
                relay_blocked.len()
            )));
        }
        let sink = self.sink_index();
        let mut dist: Vec<f64> = vec![f64::INFINITY; n + 1];
        let mut next_hop: Vec<Option<usize>> = vec![None; n + 1];
        let mut settled = vec![false; n + 1];
        dist[sink] = 0.0;
        let mut heap = BinaryHeap::with_capacity(n + 1);
        heap.push(HeapEntry { cost: 0.0, v: sink });
        // Lazy-deletion Dijkstra: a vertex may carry several stale heap
        // entries, but the entry holding its current `dist` is the
        // smallest of them, so the first pop of an unsettled vertex is
        // its final distance.
        while let Some(HeapEntry { v, .. }) = heap.pop() {
            if settled[v] {
                continue;
            }
            settled[v] = true;
            // A blocked vertex is settled (its own route cost is
            // final) but never relaxes its neighbours — nothing routes
            // *through* it.
            if v != sink && relay_blocked[v] {
                continue;
            }
            for link in &self.adj[v] {
                let u = link.to;
                if settled[u] {
                    continue;
                }
                // Cost for u to hand a packet to v: u transmits over
                // the link; v receives unless it is the sink.
                let rx = if v == sink {
                    0.0
                } else {
                    radio.rx_energy_j(payload_bits)
                };
                let cand = dist[v] + radio.tx_energy_j(payload_bits, link.distance_m) + rx;
                if cand < dist[u] {
                    dist[u] = cand;
                    next_hop[u] = Some(v);
                    heap.push(HeapEntry { cost: cand, v: u });
                }
            }
        }
        Ok(Routes {
            sink,
            cost: dist.iter().map(|&d| d.is_finite().then_some(d)).collect(),
            next_hop,
        })
    }

    /// The `O(V²)` selection-loop Dijkstra — the settle-order oracle
    /// for [`Topology::energy_aware_routes`]. Kept because its
    /// tie-break (scan ascending, strict improvement only) is
    /// self-evidently deterministic; the differential suite proves the
    /// heap router reproduces it bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Topology::energy_aware_routes`].
    pub fn energy_aware_routes_reference(
        &self,
        radio: &RadioEnergyModel,
        payload_bits: u64,
        relay_blocked: &[bool],
    ) -> Result<Routes> {
        let n = self.n_nodes();
        if relay_blocked.len() != n {
            return Err(NetError::invalid(format!(
                "got {} relay-blocked flags for {n} nodes",
                relay_blocked.len()
            )));
        }
        let sink = self.sink_index();
        let mut dist: Vec<f64> = vec![f64::INFINITY; n + 1];
        let mut next_hop: Vec<Option<usize>> = vec![None; n + 1];
        let mut settled = vec![false; n + 1];
        dist[sink] = 0.0;
        // O(V²) selection keeps the float comparisons explicit and the
        // tie-break (smallest index) obvious.
        loop {
            let mut v: Option<usize> = None;
            for (i, &d) in dist.iter().enumerate() {
                if !settled[i] && d.is_finite() && v.map_or(true, |b| d < dist[b]) {
                    v = Some(i);
                }
            }
            let Some(v) = v else { break };
            settled[v] = true;
            if v != sink && relay_blocked[v] {
                continue;
            }
            for link in &self.adj[v] {
                let u = link.to;
                if settled[u] {
                    continue;
                }
                let rx = if v == sink {
                    0.0
                } else {
                    radio.rx_energy_j(payload_bits)
                };
                let cand = dist[v] + radio.tx_energy_j(payload_bits, link.distance_m) + rx;
                if cand < dist[u] {
                    dist[u] = cand;
                    next_hop[u] = Some(v);
                }
            }
        }
        Ok(Routes {
            sink,
            cost: dist.iter().map(|&d| d.is_finite().then_some(d)).collect(),
            next_hop,
        })
    }
}

/// Min-ordered heap entry: the `Ord` is reversed (and tie-broken
/// toward the smallest vertex index) so `BinaryHeap`'s max-pop yields
/// ascending `(cost, index)` — the settle order of the `O(V²)`
/// reference. Costs are finite sums of positive hop energies, so
/// `total_cmp` agrees with numeric order.
struct HeapEntry {
    cost: f64,
    v: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

/// A routing table: the next hop toward the sink for every node, plus
/// the route cost under the metric that built it (hop count for
/// min-hop, joules per packet for energy-aware).
#[derive(Debug, Clone, PartialEq)]
pub struct Routes {
    sink: usize,
    next_hop: Vec<Option<usize>>,
    cost: Vec<Option<f64>>,
}

impl Routes {
    /// The sink's vertex index.
    pub fn sink_index(&self) -> usize {
        self.sink
    }

    /// Next hop of node `i`, or `None` if the sink is unreachable.
    pub fn next_hop(&self, i: usize) -> Option<usize> {
        self.next_hop[i]
    }

    /// Whether node `i` can reach the sink.
    pub fn is_reachable(&self, i: usize) -> bool {
        i == self.sink || self.next_hop[i].is_some()
    }

    /// Route cost of node `i` under the builder's metric, or `None`
    /// if unreachable.
    pub fn cost(&self, i: usize) -> Option<f64> {
        self.cost[i]
    }

    /// The full path `[i, …, sink]` of node `i`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnreachableSink`] if node `i` has no route — a
    /// typed error, never a hang (the next-hop table is a tree by
    /// construction, and the walk is additionally bounded by the
    /// vertex count).
    pub fn path(&self, i: usize) -> Result<Vec<usize>> {
        let mut path = vec![i];
        let mut v = i;
        while v != self.sink {
            match self.next_hop[v] {
                Some(next) => {
                    path.push(next);
                    v = next;
                }
                None => return Err(NetError::UnreachableSink { node: i }),
            }
            if path.len() > self.next_hop.len() {
                // Unreachable with a well-formed table; a defensive
                // bound so a corrupted table can never loop.
                return Err(NetError::UnreachableSink { node: i });
            }
        }
        Ok(path)
    }

    /// Hop count of node `i`'s route, or `None` if unreachable.
    pub fn hop_count(&self, i: usize) -> Option<usize> {
        self.path(i).ok().map(|p| p.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> Topology {
        // Nodes at x = s, 2s, …, ns; sink at the origin.
        let pts = (1..=n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::new(pts, Point::new(0.0, 0.0), spacing * 1.01).unwrap()
    }

    #[test]
    fn line_topology_routes_through_chain() {
        let t = line(4, 10.0);
        let r = t.min_hop_routes();
        assert_eq!(r.path(3).unwrap(), vec![3, 2, 1, 0, t.sink_index()]);
        assert_eq!(r.hop_count(3), Some(4));
        assert_eq!(r.cost(0), Some(1.0));
    }

    #[test]
    fn coincident_vertices_are_rejected_by_both_builds() {
        let pts = vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        let grid = Topology::new(pts.clone(), Point::new(0.0, 0.0), 5.0);
        let oracle = Topology::new_all_pairs(pts, Point::new(0.0, 0.0), 5.0);
        assert!(grid.is_err());
        assert!(oracle.is_err());
        // Same error site, same message.
        assert_eq!(
            format!("{}", grid.unwrap_err()),
            format!("{}", oracle.unwrap_err())
        );
    }

    #[test]
    fn non_finite_coordinates_are_rejected() {
        let pts = vec![Point::new(f64::NAN, 0.0), Point::new(1.0, 0.0)];
        assert!(Topology::new(pts.clone(), Point::new(0.0, 0.0), 5.0).is_err());
        assert!(Topology::new_all_pairs(pts, Point::new(0.0, 0.0), 5.0).is_err());
    }

    #[test]
    fn unreachable_is_typed_error() {
        // Two nodes far apart, only node 0 in sink range.
        let pts = vec![Point::new(5.0, 0.0), Point::new(100.0, 0.0)];
        let t = Topology::new(pts, Point::new(0.0, 0.0), 10.0).unwrap();
        let r = t.min_hop_routes();
        assert!(r.is_reachable(0));
        assert!(!r.is_reachable(1));
        match r.path(1) {
            Err(NetError::UnreachableSink { node: 1 }) => {}
            other => panic!("expected UnreachableSink, got {other:?}"),
        }
    }

    #[test]
    fn grid_build_matches_all_pairs_on_a_line() {
        let pts: Vec<Point> = (1..=40).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
        let sink = Point::new(0.0, 0.0);
        let grid = Topology::new(pts.clone(), sink, 3.5).unwrap();
        let oracle = Topology::new_all_pairs(pts, sink, 3.5).unwrap();
        for v in 0..=grid.n_nodes() {
            assert_eq!(grid.neighbors(v).len(), oracle.neighbors(v).len());
            for (a, b) in grid.neighbors(v).iter().zip(oracle.neighbors(v)) {
                assert_eq!(a.from, b.from);
                assert_eq!(a.to, b.to);
                assert_eq!(a.distance_m.to_bits(), b.distance_m.to_bits());
            }
        }
    }

    #[test]
    fn heap_router_matches_reference_with_blocked_relays() {
        let pts: Vec<Point> = (0..30)
            .map(|i| Point::new((i % 6) as f64 * 8.0, (i / 6) as f64 * 8.0 + 1.0))
            .collect();
        let t = Topology::new(pts, Point::new(20.0, -5.0), 12.0).unwrap();
        let radio = RadioEnergyModel::typical();
        let mut blocked = vec![false; 30];
        blocked[2] = true;
        blocked[7] = true;
        let heap = t.energy_aware_routes(&radio, 1024, &blocked).unwrap();
        let oracle = t
            .energy_aware_routes_reference(&radio, 1024, &blocked)
            .unwrap();
        for v in 0..=t.n_nodes() {
            assert_eq!(heap.next_hop(v), oracle.next_hop(v), "vertex {v} parent");
            assert_eq!(
                heap.cost(v).map(f64::to_bits),
                oracle.cost(v).map(f64::to_bits),
                "vertex {v} cost"
            );
        }
    }
}
