//! Deterministic self-scheduling job queue.
//!
//! The same construction as `ehsim-core`'s campaign scheduler (which
//! sits *above* this crate and therefore cannot be borrowed from):
//! workers claim job indices from one atomic counter, each worker is
//! the sole writer of the slots it claimed, and results are collected
//! in job order — so the output, bit for bit, is independent of the
//! thread count and of which worker ran which job. On error the
//! **smallest failing job index** wins, matching the sequential path.

use crate::{NetError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

pub(crate) fn run_jobs<T: Send>(
    n_jobs: usize,
    threads: usize,
    job: impl Fn(usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    let threads = threads.clamp(1, n_jobs.max(1));
    if threads == 1 {
        // Sequential reference path: strict job order, first error wins.
        let mut out = Vec::with_capacity(n_jobs);
        for j in 0..n_jobs {
            out.push(job(j)?);
        }
        return Ok(out);
    }

    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= n_jobs {
                    break;
                }
                let r = job(j);
                if r.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                // A poisoned slot means another worker panicked while
                // holding the lock; each slot has exactly one writer,
                // so recovering the guard is sound.
                let mut slot = slots[j].lock().unwrap_or_else(PoisonError::into_inner);
                *slot = Some(r);
            });
        }
    });
    let mut out = Vec::with_capacity(n_jobs);
    for slot in slots {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Slots are claimed as a contiguous prefix, so an
            // unclaimed slot can only sit behind a failing one (or a
            // worker that died before writing its result back).
            None => {
                return Err(NetError::invalid(
                    "job slot left unclaimed by a failed worker",
                ))
            }
        }
    }
    Ok(out)
}

/// Runs **every** job to completion and returns each job's own
/// `Result` in job order — no early abandon.
///
/// This is the total-validation variant [`FleetSimulator`] prep runs
/// on: where [`run_jobs`] flips a shared `failed` flag and lets
/// workers abandon unclaimed jobs (fine when the caller only wants the
/// first error), a validation pass must not let a failure at node `i`
/// decide *nondeterministically* whether node `j > i` was ever
/// checked. Here nothing is abandoned: all `n_jobs` results exist, so
/// the caller's ascending scan for the smallest failing index is
/// thread-count-invariant by construction.
///
/// [`FleetSimulator`]: crate::FleetSimulator
pub(crate) fn run_jobs_capturing<T: Send>(
    n_jobs: usize,
    threads: usize,
    job: impl Fn(usize) -> Result<T> + Sync,
) -> Vec<Result<T>> {
    let threads = threads.clamp(1, n_jobs.max(1));
    if threads == 1 {
        return (0..n_jobs).map(job).collect();
    }
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= n_jobs {
                    break;
                }
                let r = job(j);
                let mut slot = slots[j].lock().unwrap_or_else(PoisonError::into_inner);
                *slot = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(r) => r,
                // Only reachable if a worker died between claiming and
                // writing back — surfaced as a typed per-job error, not
                // a panic.
                None => Err(NetError::invalid("job slot left unwritten by its worker")),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetError;

    #[test]
    fn results_are_thread_count_invariant() {
        let job = |j: usize| Ok((j as f64).sqrt());
        let seq = run_jobs(97, 1, job).unwrap();
        for threads in [2, 3, 8] {
            let par = run_jobs(97, threads, job).unwrap();
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn capturing_variant_runs_every_job_despite_failures() {
        let job = |j: usize| {
            if j % 5 == 2 {
                Err(NetError::invalid(format!("job {j}")))
            } else {
                Ok(j * j)
            }
        };
        for threads in [1, 2, 8] {
            let out = run_jobs_capturing(31, threads, job);
            assert_eq!(out.len(), 31);
            for (j, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => {
                        assert_ne!(j % 5, 2);
                        assert_eq!(*v, j * j);
                    }
                    Err(NetError::InvalidParameter { message }) => {
                        assert_eq!(j % 5, 2);
                        assert_eq!(*message, format!("job {j}"));
                    }
                    other => panic!("unexpected result {other:?}"),
                }
            }
        }
    }

    #[test]
    fn smallest_failing_job_wins_sequentially() {
        let job = |j: usize| {
            if j % 7 == 3 {
                Err(NetError::invalid(format!("job {j}")))
            } else {
                Ok(j)
            }
        };
        match run_jobs(40, 1, job) {
            Err(NetError::InvalidParameter { message }) => assert_eq!(message, "job 3"),
            other => panic!("expected job-3 failure, got {other:?}"),
        }
    }
}
