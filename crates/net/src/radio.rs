//! First-order per-bit radio energy model.
//!
//! The standard WSN link model (Heinzelman et al.; Zungeru et al.,
//! arXiv:1208.4439): transmitting `b` bits over distance `d` costs
//!
//! ```text
//! E_tx(b, d) = b · (E_elec + ε_amp · d^τ)
//! E_rx(b)    = b · E_elec
//! ```
//!
//! where `E_elec` is the per-bit electronics energy, `ε_amp` the
//! amplifier coefficient and `τ` the path-loss exponent (τ = 2
//! free-space, τ = 4 multipath ground reflection). The exponent is a
//! model parameter: two models calibrated to the same energy at a
//! crossover distance `d₀` (`ε₄ = ε₂/d₀²`) make the τ = 4 model
//! cheaper below `d₀` and costlier above it — the dual-slope
//! behaviour the property suite pins.

use crate::{NetError, Result};

/// Lowest admissible path-loss exponent (free-space lower bound).
pub const MIN_PATH_LOSS_EXP: f64 = 1.0;
/// Highest admissible path-loss exponent (dense-clutter upper bound).
pub const MAX_PATH_LOSS_EXP: f64 = 6.0;

/// Per-bit transmit/receive energy model, configurable path-loss
/// exponent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioEnergyModel {
    e_elec_j_per_bit: f64,
    eps_amp: f64,
    path_loss_exp: f64,
}

impl RadioEnergyModel {
    /// Creates a model from the per-bit electronics energy (J/bit),
    /// the amplifier coefficient (J/bit/m^τ) and the path-loss
    /// exponent τ.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] for non-positive / non-finite
    /// energies or τ outside `[1, 6]`.
    pub fn new(e_elec_j_per_bit: f64, eps_amp: f64, path_loss_exp: f64) -> Result<Self> {
        if !(e_elec_j_per_bit > 0.0) || !e_elec_j_per_bit.is_finite() {
            return Err(NetError::invalid(format!(
                "E_elec must be positive and finite, got {e_elec_j_per_bit}"
            )));
        }
        if !(eps_amp > 0.0) || !eps_amp.is_finite() {
            return Err(NetError::invalid(format!(
                "amplifier coefficient must be positive and finite, got {eps_amp}"
            )));
        }
        if !(MIN_PATH_LOSS_EXP..=MAX_PATH_LOSS_EXP).contains(&path_loss_exp) {
            return Err(NetError::invalid(format!(
                "path-loss exponent must be in [{MIN_PATH_LOSS_EXP}, {MAX_PATH_LOSS_EXP}], \
                 got {path_loss_exp}"
            )));
        }
        Ok(RadioEnergyModel {
            e_elec_j_per_bit,
            eps_amp,
            path_loss_exp,
        })
    }

    /// The canonical free-space parameterisation: 50 nJ/bit
    /// electronics, 100 pJ/bit/m² amplifier, τ = 2.
    pub fn typical() -> Self {
        RadioEnergyModel {
            e_elec_j_per_bit: 50e-9,
            eps_amp: 100e-12,
            path_loss_exp: 2.0,
        }
    }

    /// Per-bit electronics energy (J/bit).
    pub fn e_elec_j_per_bit(&self) -> f64 {
        self.e_elec_j_per_bit
    }

    /// Amplifier coefficient (J/bit/m^τ).
    pub fn eps_amp(&self) -> f64 {
        self.eps_amp
    }

    /// Path-loss exponent τ.
    pub fn path_loss_exp(&self) -> f64 {
        self.path_loss_exp
    }

    /// Energy to transmit `bits` over `distance_m` (J).
    pub fn tx_energy_j(&self, bits: u64, distance_m: f64) -> f64 {
        bits as f64 * (self.e_elec_j_per_bit + self.eps_amp * distance_m.powf(self.path_loss_exp))
    }

    /// Energy to receive `bits` (J); distance-independent.
    pub fn rx_energy_j(&self, bits: u64) -> f64 {
        bits as f64 * self.e_elec_j_per_bit
    }

    /// Energy a relay spends moving `bits` one hop of `distance_m`:
    /// receive them, then retransmit (J).
    pub fn hop_energy_j(&self, bits: u64, distance_m: f64) -> f64 {
        self.rx_energy_j(bits) + self.tx_energy_j(bits, distance_m)
    }
}

/// A validated directed link between two distinct nodes.
///
/// Construction is where the zero-distance self-send class of bugs is
/// rejected: a link from a node to itself, or over a zero /
/// non-finite distance, can never exist, so no downstream energy
/// computation ever sees `d = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Transmitting node index.
    pub from: usize,
    /// Receiving node index.
    pub to: usize,
    /// Link length (m).
    pub distance_m: f64,
}

impl Link {
    /// Creates a link, rejecting self-sends and degenerate distances.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] if `from == to` (self-send) or
    /// `distance_m` is zero, negative or non-finite (two coincident
    /// radios are indistinguishable from a self-send).
    pub fn new(from: usize, to: usize, distance_m: f64) -> Result<Self> {
        if from == to {
            return Err(NetError::invalid(format!(
                "self-send link {from} -> {to} rejected"
            )));
        }
        if !(distance_m > 0.0) || !distance_m.is_finite() {
            return Err(NetError::invalid(format!(
                "link {from} -> {to} needs a positive finite distance, got {distance_m}"
            )));
        }
        Ok(Link {
            from,
            to,
            distance_m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_model_orders_tx_above_rx() {
        let m = RadioEnergyModel::typical();
        assert!(m.tx_energy_j(1000, 30.0) > m.rx_energy_j(1000));
        assert_eq!(
            m.hop_energy_j(1000, 30.0),
            m.rx_energy_j(1000) + m.tx_energy_j(1000, 30.0)
        );
    }

    #[test]
    fn constructor_validates() {
        assert!(RadioEnergyModel::new(0.0, 1e-12, 2.0).is_err());
        assert!(RadioEnergyModel::new(50e-9, -1.0, 2.0).is_err());
        assert!(RadioEnergyModel::new(50e-9, 1e-12, 0.5).is_err());
        assert!(RadioEnergyModel::new(50e-9, 1e-12, 7.0).is_err());
        assert!(RadioEnergyModel::new(50e-9, 1e-12, f64::NAN).is_err());
    }

    #[test]
    fn link_rejects_self_send_and_zero_distance() {
        assert!(Link::new(3, 3, 1.0).is_err());
        assert!(Link::new(0, 1, 0.0).is_err());
        assert!(Link::new(0, 1, -2.0).is_err());
        assert!(Link::new(0, 1, f64::NAN).is_err());
        assert!(Link::new(0, 1, 5.0).is_ok());
    }
}
