//! Deterministic node placement.
//!
//! Two layouts: a regular grid (row-major, spacing-parameterised) and a
//! seeded uniform-random scatter over a rectangle. Both are pure
//! functions of their parameters — the random layout draws from
//! [`rand::rngs::StdRng`] seeded with the given seed, so a placement is
//! bit-reproducible across runs, platforms and thread counts.

use crate::{NetError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A node position in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Easting (m).
    pub x: f64,
    /// Northing (m).
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` metres.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` (m).
    pub fn distance_m(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A deterministic node layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// `rows × cols` nodes on a regular grid, node `(r, c)` at
    /// `(c·spacing, r·spacing)`, row-major node order.
    Grid {
        /// Number of grid rows.
        rows: usize,
        /// Number of grid columns.
        cols: usize,
        /// Distance between adjacent grid points (m).
        spacing_m: f64,
    },
    /// `n` nodes i.i.d. uniform over `[0, width] × [0, height]`,
    /// drawn from a seeded [`StdRng`] (x then y per node).
    UniformRandom {
        /// Number of nodes.
        n: usize,
        /// Rectangle width (m).
        width_m: f64,
        /// Rectangle height (m).
        height_m: f64,
        /// PRNG seed; equal seeds give bit-identical layouts.
        seed: u64,
    },
}

impl Placement {
    /// Materialises the layout.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidParameter`] for zero node counts or
    /// non-positive / non-finite dimensions.
    pub fn positions(&self) -> Result<Vec<Point>> {
        match *self {
            Placement::Grid {
                rows,
                cols,
                spacing_m,
            } => {
                if rows == 0 || cols == 0 {
                    return Err(NetError::invalid(format!(
                        "grid must be non-empty, got {rows}x{cols}"
                    )));
                }
                if !(spacing_m > 0.0) || !spacing_m.is_finite() {
                    return Err(NetError::invalid(format!(
                        "grid spacing must be positive and finite, got {spacing_m}"
                    )));
                }
                let mut pts = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for c in 0..cols {
                        pts.push(Point::new(c as f64 * spacing_m, r as f64 * spacing_m));
                    }
                }
                Ok(pts)
            }
            Placement::UniformRandom {
                n,
                width_m,
                height_m,
                seed,
            } => {
                if n == 0 {
                    return Err(NetError::invalid("placement needs at least one node"));
                }
                if !(width_m > 0.0)
                    || !width_m.is_finite()
                    || !(height_m > 0.0)
                    || !height_m.is_finite()
                {
                    return Err(NetError::invalid(format!(
                        "placement rectangle must be positive and finite, got \
                         {width_m}x{height_m}"
                    )));
                }
                let mut rng = StdRng::seed_from_u64(seed);
                Ok((0..n)
                    .map(|_| {
                        let x = width_m * rng.random::<f64>();
                        let y = height_m * rng.random::<f64>();
                        Point::new(x, y)
                    })
                    .collect())
            }
        }
    }

    /// Number of nodes the layout will produce.
    pub fn len(&self) -> usize {
        match *self {
            Placement::Grid { rows, cols, .. } => rows * cols,
            Placement::UniformRandom { n, .. } => n,
        }
    }

    /// Whether the layout is empty (always invalid to materialise).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_row_major() {
        let pts = Placement::Grid {
            rows: 2,
            cols: 3,
            spacing_m: 10.0,
        }
        .positions()
        .unwrap();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[2], Point::new(20.0, 0.0));
        assert_eq!(pts[3], Point::new(0.0, 10.0));
    }

    #[test]
    fn uniform_is_seed_reproducible_and_in_bounds() {
        let layout = Placement::UniformRandom {
            n: 64,
            width_m: 100.0,
            height_m: 50.0,
            seed: 9,
        };
        let a = layout.positions().unwrap();
        let b = layout.positions().unwrap();
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
            assert!((0.0..=100.0).contains(&p.x) && (0.0..=50.0).contains(&p.y));
        }
        let c = Placement::UniformRandom {
            n: 64,
            width_m: 100.0,
            height_m: 50.0,
            seed: 10,
        }
        .positions()
        .unwrap();
        assert!(a.iter().zip(&c).any(|(p, q)| p != q));
    }

    #[test]
    fn invalid_layouts_are_rejected() {
        assert!(Placement::Grid {
            rows: 0,
            cols: 3,
            spacing_m: 1.0
        }
        .positions()
        .is_err());
        assert!(Placement::Grid {
            rows: 2,
            cols: 2,
            spacing_m: 0.0
        }
        .positions()
        .is_err());
        assert!(Placement::UniformRandom {
            n: 0,
            width_m: 1.0,
            height_m: 1.0,
            seed: 0
        }
        .positions()
        .is_err());
        assert!(Placement::UniformRandom {
            n: 3,
            width_m: f64::INFINITY,
            height_m: 1.0,
            seed: 0
        }
        .positions()
        .is_err());
    }
}
