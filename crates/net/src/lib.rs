//! Fleet-scale network layer: node placement, a per-bit radio energy
//! model, routing over a static topology, and a [`FleetSimulator`]
//! that composes thousands of node simulations under one deterministic
//! scheduler.
//!
//! The crate sits *above* `ehsim-node` and *below* `ehsim-core`: it
//! consumes prepared node simulations ([`ehsim_node::PreparedSimulator`]
//! / [`ehsim_node::BatchSimulator`]) and produces fleet-level metrics
//! ([`FleetMetrics`]) that `ehsim-core` threads through the DoE
//! machinery as responses. Everything here is deterministic: identical
//! [`FleetSpec`]s produce bit-identical [`FleetMetrics`] for any thread
//! count and any dispatch strategy.
//!
//! # Layout
//!
//! * [`placement`] — seeded uniform-random and grid node layouts.
//! * [`radio`] — the first-order per-bit radio energy model
//!   `E_tx = bits·(E_elec + ε_amp·d^τ)` (Zungeru et al.,
//!   arXiv:1208.4439) with a configurable path-loss exponent.
//! * [`topology`] — static connectivity within a radio range, min-hop
//!   (BFS) and energy-aware (Dijkstra) routing with typed
//!   unreachable-sink errors.
//! * [`fleet`] — the [`FleetSimulator`]: per-node vibration streams
//!   split from one fleet seed, batched/per-sim dispatch, and the
//!   deterministic network-energy accounting pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod placement;
pub mod radio;
mod sched;
pub mod topology;

pub use fleet::{
    Dispatch, EpochAudit, FleetEnvironment, FleetMetrics, FleetNode, FleetOutcome, FleetSimulator,
    FleetSpec, NodeNetStats, PartitionPolicy, RoutingPolicy,
};
pub use placement::{Placement, Point};
pub use radio::{Link, RadioEnergyModel};
pub use topology::{Routes, Topology};

use std::error::Error;
use std::fmt;

/// Errors produced by the network layer.
#[derive(Debug, Clone)]
pub enum NetError {
    /// A parameter violated its precondition.
    InvalidParameter {
        /// Description of the violated precondition.
        message: String,
    },
    /// A node has no route to the sink.
    UnreachableSink {
        /// Index of the stranded node.
        node: usize,
    },
    /// An epoch's routing left part of the fleet with no path to the
    /// sink (surfaced under [`fleet::PartitionPolicy::Error`] instead
    /// of silently stranding the traffic).
    Partitioned {
        /// Route epoch (0-based) at which the partition appeared.
        epoch: usize,
        /// Smallest stranded node index.
        node: usize,
    },
    /// A node simulation failed; carries the **smallest** failing node
    /// index (matching the batch kernel's smallest-failing-lane
    /// contract) and the node-level error.
    Node {
        /// Index of the failing node.
        node: usize,
        /// The underlying node-simulator error.
        source: ehsim_node::NodeError,
    },
}

impl NetError {
    pub(crate) fn invalid(message: impl Into<String>) -> Self {
        NetError::InvalidParameter {
            message: message.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidParameter { message } => {
                write!(f, "invalid network parameter: {message}")
            }
            NetError::UnreachableSink { node } => {
                write!(f, "node {node} has no route to the sink")
            }
            NetError::Partitioned { epoch, node } => {
                write!(
                    f,
                    "route epoch {epoch} left node {node} (and possibly others) \
                     with no route to the sink"
                )
            }
            NetError::Node { node, source } => write!(f, "node {node}: {source}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Node { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;

/// SplitMix64 odd increment (the "golden gamma"); also the constant
/// `rand`'s `StdRng::seed_from_u64` expands seeds with.
const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 output mix (Steele et al., the `mix64` finalizer).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives node `idx`'s vibration-stream seed from one fleet seed by
/// SplitMix64 stream-splitting: the fleet seed is first mixed into a
/// stream base (so related fleet seeds select unrelated streams), and
/// each node takes the SplitMix64 output at stream offset `idx + 1`
/// from that base.
///
/// Because the increment γ is odd, the pre-mix state
/// `base + (idx+1)·γ` is distinct for every `idx` at a fixed fleet
/// seed, and the bijective mix keeps it distinct — **no two nodes of
/// a fleet ever share a vibration stream**. Hashing the fleet seed
/// *before* adding the stream offset is load-bearing: a plain
/// `mix(fleet_seed + (idx+1)·γ)` aliases node `i+1` of fleet `s` with
/// node `i` of fleet `s + γ` (equal pre-mix states), exactly the
/// cross-fleet seed-reuse hazard this function exists to close.
pub fn node_seed(fleet_seed: u64, idx: usize) -> u64 {
    let base = splitmix64_mix(fleet_seed ^ 0x6A09_E667_F3BC_C909);
    let offset = (idx as u64).wrapping_add(1).wrapping_mul(SPLITMIX64_GAMMA);
    splitmix64_mix(base.wrapping_add(offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_seeds_distinct_within_fleet() {
        let seeds: HashSet<u64> = (0..4096).map(|i| node_seed(42, i)).collect();
        assert_eq!(seeds.len(), 4096);
    }

    #[test]
    fn node_seeds_do_not_alias_adjacent_fleets() {
        // The hazard an unmixed `seed + idx·γ` scheme has: fleet s at
        // node 1 equals fleet s+γ at node 0.
        let s = 7u64;
        assert_ne!(
            node_seed(s, 1),
            node_seed(s.wrapping_add(SPLITMIX64_GAMMA), 0)
        );
    }

    #[test]
    fn node_seed_is_deterministic() {
        assert_eq!(node_seed(123, 17), node_seed(123, 17));
        assert_ne!(node_seed(123, 17), node_seed(124, 17));
    }
}
