//! Lock-step batched PPU fixed-point solves.
//!
//! The scalar [`PreparedPpu`] solve is a damped fixed-point iteration
//! whose per-iteration arithmetic (a handful of multiplies, ~3 divides
//! and a complex magnitude) forms one long serial dependency chain —
//! the cold solve is *latency*-bound, not throughput-bound. When many
//! independent simulations step together (the batched SoA tick kernel
//! in `ehsim-node`), iterating **all unconverged lanes once per round**
//! fills the pipeline with independent chains and converts the solve to
//! throughput-bound, which is where the batched kernel's campaign
//! speed-up comes from.
//!
//! # Bit-exactness contract
//!
//! Each lane executes *exactly* the float-operation sequence of
//! [`PreparedPpu::operating_point`] (or, given a usable seed,
//! [`PreparedPpu::operating_point_from`]): the same seed resolution,
//! the same per-iteration body, the same damping and the same exit
//! tests, merely interleaved with other lanes between rounds. Lanes
//! never exchange data, so every lane's result is bit-identical to the
//! scalar solve by construction — asserted by the property suite below
//! and by the `ehsim-node` batch-equivalence suite on whole runs.

use crate::{PpuOperatingPoint, PreparedPpu};
use ehsim_numeric::complex::Complex;

const MAX_ITERS: usize = 60;

/// Reusable lock-step solver: scratch state for `W` lanes, reused
/// across calls (a per-tick caller pays no per-call allocation once the
/// vectors have grown to the batch width).
#[derive(Debug, Default)]
pub struct BatchPpuSolver {
    v_pk: Vec<f64>,
    r_droop: Vec<f64>,
    /// Lanes still iterating, in lane order — compacted as lanes
    /// converge so late rounds touch only the stragglers instead of
    /// scanning the whole width.
    iterating: Vec<u32>,
}

impl BatchPpuSolver {
    /// An empty solver; scratch buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves every lane `i` with `active[i]` in lock-step.
    ///
    /// Inputs are parallel slices of one logical lane array: per-lane
    /// solver constants (`ppus`), Thevenin drive (`v_oc`, `z_src`,
    /// `freq_hz`), storage voltage (`v_store`) and warm-start seed
    /// (`seed[i]`; any non-finite or non-positive value — use
    /// `f64::NAN` — selects the cold start, mirroring
    /// [`PreparedPpu::operating_point_from`]).
    ///
    /// On return, for every active lane, `ok[i]` says whether the
    /// lane's inputs passed the scalar solve's validation; if so
    /// `out[i]` holds its operating point, bit-identical to the scalar
    /// solve of the same inputs. Inactive lanes are left untouched.
    /// Callers wanting the scalar path's error message for an `!ok[i]`
    /// lane can re-run [`PreparedPpu::operating_point`] on that lane —
    /// the error path is cold by contract.
    ///
    /// # Panics
    ///
    /// If the input slices are not all of the same length.
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        ppus: &[PreparedPpu],
        v_oc: &[f64],
        z_src: &[Complex],
        freq_hz: &[f64],
        v_store: &[f64],
        seed: &[f64],
        active: &[bool],
        out: &mut [PpuOperatingPoint],
        ok: &mut [bool],
    ) {
        let w = ppus.len();
        assert!(
            [
                v_oc.len(),
                z_src.len(),
                freq_hz.len(),
                v_store.len(),
                seed.len(),
                active.len(),
                out.len(),
                ok.len(),
            ]
            .iter()
            .all(|&l| l == w),
            "batched solve lane arrays must share one width"
        );
        self.v_pk.resize(w, 0.0);
        self.r_droop.resize(w, 0.0);
        self.iterating.clear();

        // Pre-phase: validation, droop resistance, dead zone and seed
        // resolution — the straight-line prefix of the scalar solve.
        for i in 0..w {
            if !active[i] {
                continue;
            }
            // Mirror of the scalar validation (including finiteness).
            if !(freq_hz[i] > 0.0 && freq_hz[i].is_finite())
                || !(v_oc[i] >= 0.0 && v_oc[i].is_finite())
                || !(v_store[i] >= 0.0 && v_store[i].is_finite())
            {
                ok[i] = false;
                continue;
            }
            ok[i] = true;
            self.r_droop[i] = ppus[i].droop_resistance(freq_hz[i]);
            if v_oc[i] <= ppus[i].v_d {
                // Dead zone: the idle point is the answer. Iterating
                // lanes skip this store — every retirement path below
                // writes `out[i]` itself.
                out[i] = PpuOperatingPoint {
                    p_store_w: 0.0,
                    i_out_a: 0.0,
                    v_in_amp: v_oc[i],
                    p_in_w: 0.0,
                    efficiency: 0.0,
                };
                continue;
            }
            self.v_pk[i] = if seed[i].is_finite() && seed[i] > 0.0 {
                seed[i]
            } else {
                v_oc[i]
            };
            self.iterating.push(i as u32);
        }

        // Lock-step rounds: round r runs iteration r of the scalar
        // fixed point for every lane still iterating, and converged
        // lanes are compacted out so late rounds cost only the
        // stragglers. The per-lane body below is a verbatim
        // transcription of `PreparedPpu::solve`; `retain` keeps lane
        // order, so each lane sees exactly the scalar float sequence.
        // One deviation that cannot change bits: the scalar solve
        // overwrites its (register-resident) operating point every
        // iteration, while here `out[i]` is a memory store — so it is
        // written once, on the iteration the lane retires; a lane that
        // exhausts the rounds without converging replays the scalar
        // solve below to recover its last-iteration point.
        let BatchPpuSolver {
            v_pk: v_pks,
            r_droop: r_droops,
            iterating,
        } = self;
        for _ in 0..MAX_ITERS {
            if iterating.is_empty() {
                break;
            }
            iterating.retain(|&iu| {
                let i = iu as usize;
                let n2 = ppus[i].n2;
                let v_d = ppus[i].v_d;
                let r_droop = r_droops[i];
                let v_pk = v_pks[i];
                let v_out_oc = n2 * (v_pk - v_d).max(0.0);
                let i_out = ((v_out_oc - v_store[i]) / r_droop).max(0.0);
                if i_out <= 0.0 {
                    let v_next = v_oc[i];
                    if (v_next - v_pk).abs() < 1e-12 {
                        out[i] = PpuOperatingPoint {
                            p_store_w: 0.0,
                            i_out_a: 0.0,
                            v_in_amp: v_pk,
                            p_in_w: 0.0,
                            efficiency: 0.0,
                        };
                        return false;
                    }
                    v_pks[i] = 0.5 * (v_pk + v_next);
                    return true;
                }
                let p_store = v_store[i] * i_out;
                let p_diode = n2 * v_d * i_out;
                let p_droop = i_out * i_out * r_droop;
                let p_in = p_store + p_diode + p_droop;
                let r_eq = if p_in > 0.0 {
                    (v_pk * v_pk / (2.0 * p_in)).max(1e-3)
                } else {
                    f64::INFINITY
                };
                let v_next = v_oc[i] * r_eq / (z_src[i] + Complex::real(r_eq)).abs();
                if (v_next - v_pk).abs() < 1e-9 * v_pk.max(1e-9) {
                    out[i] = PpuOperatingPoint {
                        p_store_w: p_store,
                        i_out_a: i_out,
                        v_in_amp: v_pk,
                        p_in_w: p_in,
                        efficiency: if p_in > 0.0 { p_store / p_in } else { 0.0 },
                    };
                    return false;
                }
                v_pks[i] = 0.5 * (v_pk + v_next);
                true
            });
        }

        // Rare straggler path: lanes that never met the convergence test
        // within the round budget. The scalar solve with the same seed
        // replays the identical iteration sequence, so its (equally
        // unconverged) final operating point is bit-identical to what
        // the per-iteration stores used to produce.
        for &iu in iterating.iter() {
            let i = iu as usize;
            out[i] = ppus[i]
                .operating_point_from(seed[i], v_oc[i], z_src[i], freq_hz[i], v_store[i])
                .expect("inputs validated in the pre-phase");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Multiplier;

    fn op_bits(op: &PpuOperatingPoint) -> [u64; 5] {
        [
            op.p_store_w.to_bits(),
            op.i_out_a.to_bits(),
            op.v_in_amp.to_bits(),
            op.p_in_w.to_bits(),
            op.efficiency.to_bits(),
        ]
    }

    /// Drives the batch solver over a grid of heterogeneous lanes and
    /// asserts bit-identity against the scalar solve, cold and warm.
    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let ppus: Vec<PreparedPpu> = (1..=8)
            .map(|stages| {
                Multiplier {
                    stages,
                    ..Multiplier::default()
                }
                .prepared()
                .unwrap()
            })
            .collect();
        let w = ppus.len();
        // Deterministic but varied drive conditions, including the dead
        // zone (lane 0) and the unloaded ceiling (lane 7).
        let v_oc: Vec<f64> = (0..w).map(|i| 0.2 + 0.45 * i as f64).collect();
        let z_src: Vec<Complex> = (0..w)
            .map(|i| Complex::new(500.0 + 700.0 * i as f64, 100.0 * i as f64))
            .collect();
        let freq: Vec<f64> = (0..w).map(|i| 45.0 + 7.0 * i as f64).collect();
        let v_store: Vec<f64> = (0..w)
            .map(|i| if i == 7 { 40.0 } else { 0.5 * i as f64 })
            .collect();
        let active = vec![true; w];
        let mut out = vec![
            PpuOperatingPoint {
                p_store_w: -1.0,
                i_out_a: -1.0,
                v_in_amp: -1.0,
                p_in_w: -1.0,
                efficiency: -1.0,
            };
            w
        ];
        let mut ok = vec![false; w];
        let mut solver = BatchPpuSolver::new();

        // Cold start.
        let seed = vec![f64::NAN; w];
        solver.solve(
            &ppus, &v_oc, &z_src, &freq, &v_store, &seed, &active, &mut out, &mut ok,
        );
        for i in 0..w {
            assert!(ok[i], "lane {i}");
            let scalar = ppus[i]
                .operating_point(v_oc[i], z_src[i], freq[i], v_store[i])
                .unwrap();
            assert_eq!(op_bits(&out[i]), op_bits(&scalar), "cold lane {i}");
        }

        // Warm start from each lane's converged amplitude (plus a
        // non-positive seed that must fall back to cold).
        let mut seed: Vec<f64> = out.iter().map(|op| op.v_in_amp).collect();
        seed[3] = -1.0;
        solver.solve(
            &ppus, &v_oc, &z_src, &freq, &v_store, &seed, &active, &mut out, &mut ok,
        );
        for i in 0..w {
            let scalar = ppus[i]
                .operating_point_from(seed[i], v_oc[i], z_src[i], freq[i], v_store[i])
                .unwrap();
            assert_eq!(op_bits(&out[i]), op_bits(&scalar), "warm lane {i}");
        }
    }

    #[test]
    fn invalid_and_inactive_lanes() {
        let ppu = Multiplier::default().prepared().unwrap();
        let ppus = vec![ppu; 3];
        let v_oc = vec![1.5, f64::INFINITY, 1.5];
        let z_src = vec![Complex::real(2e3); 3];
        let freq = vec![60.0; 3];
        let v_store = vec![1.0; 3];
        let seed = vec![f64::NAN; 3];
        let active = vec![true, true, false];
        let sentinel = PpuOperatingPoint {
            p_store_w: -7.0,
            i_out_a: -7.0,
            v_in_amp: -7.0,
            p_in_w: -7.0,
            efficiency: -7.0,
        };
        let mut out = vec![sentinel; 3];
        let mut ok = vec![true; 3];
        BatchPpuSolver::new().solve(
            &ppus, &v_oc, &z_src, &freq, &v_store, &seed, &active, &mut out, &mut ok,
        );
        assert!(ok[0]);
        assert!(!ok[1], "infinite v_oc must fail validation");
        assert!(
            ppu.operating_point(v_oc[1], z_src[1], freq[1], v_store[1])
                .is_err(),
            "scalar path agrees the lane is invalid"
        );
        // The inactive lane is untouched.
        assert_eq!(op_bits(&out[2]), op_bits(&sentinel));
    }
}
