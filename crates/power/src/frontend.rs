//! Complete circuit-level front-end: tunable harvester → voltage
//! multiplier → storage capacitor.
//!
//! This is the netlist the CPU-time experiments (E2, E7) simulate with
//! both engines, and the reference against which the behavioural
//! power-path model is calibrated.

use crate::{Multiplier, PowerError, Result};
use ehsim_circuit::{Netlist, NodeId};
use ehsim_harvester::Harvester;
use ehsim_vibration::VibrationSource;
use std::sync::Arc;

/// Builder output: the assembled netlist plus the probe-relevant nodes.
#[derive(Debug)]
pub struct Frontend {
    /// The complete netlist.
    pub netlist: Netlist,
    /// Harvester AC output node.
    pub ac_node: NodeId,
    /// DC storage node (top of the multiplier, across the storage cap).
    pub store_node: NodeId,
    /// Name of the storage node (for probes).
    pub store_node_name: String,
}

/// Builds the full front-end netlist.
///
/// * `harvester`, `tuning_pos` — the generator and its actuator position;
/// * `source` — base-excitation waveform;
/// * `multiplier` — CW ladder parameters;
/// * `c_store` — storage capacitance (F) with initial voltage
///   `v_store0`;
/// * `r_node_load` — optional DC load across storage modelling the
///   node's average draw (`None` leaves the storage unloaded).
///
/// # Errors
///
/// Propagates harvester validation and netlist-construction errors.
pub fn build_frontend(
    harvester: &Harvester,
    tuning_pos: f64,
    source: Arc<dyn VibrationSource>,
    multiplier: &Multiplier,
    c_store: f64,
    v_store0: f64,
    r_node_load: Option<f64>,
) -> Result<Frontend> {
    if !(c_store > 0.0) {
        return Err(PowerError::invalid(format!(
            "storage capacitance must be positive, got {c_store}"
        )));
    }
    let (mut nl, ac_node) = harvester
        .build_netlist(tuning_pos, source)
        .map_err(|e| PowerError::invalid(format!("harvester netlist: {e}")))?;
    let store_node = multiplier.attach(&mut nl, ac_node, "cw")?;
    let store_node_name = nl.node_name(store_node).to_string();
    nl.capacitor("Cstore", store_node, Netlist::GROUND, c_store, v_store0)?;
    if let Some(r) = r_node_load {
        nl.resistor("Rnode", store_node, Netlist::GROUND, r)?;
    }
    Ok(Frontend {
        netlist: nl,
        ac_node,
        store_node,
        store_node_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_circuit::{LinearizedStateSpaceEngine, Probe, TransientConfig};
    use ehsim_vibration::Sine;

    #[test]
    fn frontend_charges_storage_at_resonance() {
        let h = Harvester::default_tunable();
        let pos = h.position_for_frequency(65.0);
        let fe = build_frontend(
            &h,
            pos,
            Arc::new(Sine::new(1.0, 65.0).unwrap()),
            &Multiplier::default(),
            100e-6,
            0.0,
            None,
        )
        .unwrap();
        let cfg = TransientConfig::new(4.0, 2e-4).unwrap();
        let probe = Probe::NodeVoltage(fe.store_node_name.clone());
        let res = LinearizedStateSpaceEngine::default()
            .simulate(&fe.netlist, &cfg, &[probe])
            .unwrap();
        let sig = res.signal(&format!("v({})", fe.store_node_name)).unwrap();
        let v_end = *sig.last().unwrap();
        // The storage must charge visibly from zero within seconds.
        assert!(v_end > 0.1, "v_end = {v_end}");
        // And monotonically (modulo ripple): final > middle > start.
        let v_mid = sig[sig.len() / 2];
        assert!(v_end >= v_mid - 0.05 && v_mid > 0.02);
    }

    #[test]
    fn detuned_frontend_charges_much_slower() {
        let h = Harvester::default_tunable();
        let mult = Multiplier::default();
        let run = |pos: f64| {
            let fe = build_frontend(
                &h,
                pos,
                Arc::new(Sine::new(1.0, 65.0).unwrap()),
                &mult,
                100e-6,
                0.0,
                None,
            )
            .unwrap();
            let cfg = TransientConfig::new(3.0, 2e-4).unwrap();
            let probe = Probe::NodeVoltage(fe.store_node_name.clone());
            let res = LinearizedStateSpaceEngine::default()
                .simulate(&fe.netlist, &cfg, &[probe])
                .unwrap();
            *res.signal(&format!("v({})", fe.store_node_name))
                .unwrap()
                .last()
                .unwrap()
        };
        let tuned = run(h.position_for_frequency(65.0));
        let detuned = run(h.position_for_frequency(85.0));
        assert!(
            tuned > 2.0 * detuned,
            "tuned = {tuned}, detuned = {detuned}"
        );
    }

    #[test]
    fn invalid_storage_is_rejected() {
        let h = Harvester::default_tunable();
        let err = build_frontend(
            &h,
            0.5,
            Arc::new(Sine::new(1.0, 65.0).unwrap()),
            &Multiplier::default(),
            0.0,
            0.0,
            None,
        );
        assert!(err.is_err());
    }
}
