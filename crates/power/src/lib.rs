//! Power-processing models for the `ehsim` workspace: voltage
//! multiplier, supercapacitor storage, regulator, and the hysteresis
//! thresholds that gate the sensor node's supply.
//!
//! The original node (IEEE Sensors J. 2012, ref \[2\] of the DATE'13
//! paper) rectifies the microgenerator's sub-volt AC output with a
//! multi-stage voltage multiplier charging a supercapacitor; the node
//! switches on above `V_on` and off below `V_off`. Two views are
//! provided:
//!
//! * [`Multiplier::attach`] builds the full Cockcroft–Walton diode/
//!   capacitor ladder into a circuit netlist — used for circuit-level
//!   validation and the engine benchmarks;
//! * [`Multiplier::operating_point`] is the fast behavioural model — a
//!   self-consistent fixed point between the harvester's Thevenin
//!   equivalent and the classic CW pump equations (output droop
//!   `∝ (2N³/3 + N²/2 − N/6)/(f C)`, two diode drops per stage) — used
//!   by the system-level simulator, millions of times per DoE campaign.
//!
//! The behavioural model intentionally reproduces the *nonlinear*
//! features that make the design space interesting: a dead zone until
//! the input amplitude clears the diode drops plus `V_store/2N`,
//! collapse under loading, and the stage-count trade-off (more stages
//! lower the threshold voltage gain but raise droop and diode loss).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod frontend;

pub use batch::BatchPpuSolver;

use ehsim_circuit::{DiodeModel, Netlist, NodeId, SolverBackend};
use ehsim_numeric::complex::Complex;
use std::error::Error;
use std::fmt;

/// Errors produced by power-processing models.
#[derive(Debug, Clone)]
pub enum PowerError {
    /// A parameter violated its precondition.
    InvalidParameter {
        /// Description of the violated precondition.
        message: String,
    },
    /// Netlist construction failed.
    Circuit(ehsim_circuit::CircuitError),
}

impl PowerError {
    fn invalid(message: impl Into<String>) -> Self {
        PowerError::InvalidParameter {
            message: message.into(),
        }
    }
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter { message } => {
                write!(f, "invalid power parameter: {message}")
            }
            PowerError::Circuit(e) => write!(f, "netlist construction failed: {e}"),
        }
    }
}

impl Error for PowerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PowerError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ehsim_circuit::CircuitError> for PowerError {
    fn from(e: ehsim_circuit::CircuitError) -> Self {
        PowerError::Circuit(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PowerError>;

/// An N-stage Cockcroft–Walton (Villard cascade) voltage multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multiplier {
    /// Number of doubler stages `N` (the ladder has `2N` diodes and
    /// `2N` capacitors; unloaded it multiplies the peak by `2N`).
    pub stages: usize,
    /// Per-stage capacitance (F).
    pub stage_capacitance: f64,
    /// Equivalent series resistance of each ladder capacitor (Ω).
    ///
    /// Besides being physically present in real capacitors, the ESR
    /// breaks the capacitor-only loops that would otherwise make the
    /// state-space formulation of the ladder degenerate (capacitor
    /// voltages in a pure-capacitor loop are not independent states).
    pub esr_ohms: f64,
    /// Diode model used in the ladder (and its drop in the behavioural
    /// model).
    pub diode: DiodeModel,
}

impl Default for Multiplier {
    fn default() -> Self {
        Multiplier {
            // 0.47 µF stages keep the pump's input impedance comparable
            // to the microgenerator's ~25 kΩ source impedance at
            // resonance — large stage capacitors would short out the
            // high-impedance harvester.
            stages: 3,
            stage_capacitance: 0.47e-6,
            esr_ohms: 1.0,
            diode: DiodeModel::default(),
        }
    }
}

/// Operating point of the behavioural multiplier model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpuOperatingPoint {
    /// Average power delivered into storage (W).
    pub p_store_w: f64,
    /// Average output (storage) current (A).
    pub i_out_a: f64,
    /// AC input amplitude after source loading (V).
    pub v_in_amp: f64,
    /// Power drawn from the harvester (W).
    pub p_in_w: f64,
    /// `p_store / p_in` (0 when idle).
    pub efficiency: f64,
}

/// A [`Multiplier`] validated once, with every tick-invariant constant
/// of the behavioural operating-point solve precomputed: `2N`, the
/// diode drop, and the droop numerator `2N³/3 + N²/2 − N/6`.
///
/// This is the hot-path entry point of the system-level simulator: it
/// removes the per-call parameter validation (and its error-path
/// machinery) from a function executed once per simulation tick,
/// millions of times per DoE campaign, and it exposes the warm-started
/// solve [`PreparedPpu::operating_point_from`].
///
/// The cold-start [`PreparedPpu::operating_point`] is bit-identical to
/// [`Multiplier::operating_point`] by construction — both run the same
/// fixed-point iteration from the same seed (see the property suite in
/// `tests/warm_start.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedPpu {
    n2: f64,
    v_d: f64,
    droop_num: f64,
    stage_capacitance: f64,
    backend: SolverBackend,
}

impl PreparedPpu {
    /// Linear-solver backend to use when this PPU is verified at
    /// circuit level (the [`Multiplier::attach`] ladder simulated by a
    /// transient engine). The behavioural fixed-point solve itself is
    /// matrix-free and ignores it.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Classic CW output droop resistance at excitation frequency `f`.
    pub fn droop_resistance(&self, freq_hz: f64) -> f64 {
        self.droop_num / (freq_hz * self.stage_capacitance)
    }

    /// Cold-started behavioural operating point; bit-identical to
    /// [`Multiplier::operating_point`].
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] on non-positive frequency or
    /// negative `v_oc` / `v_store`.
    pub fn operating_point(
        &self,
        v_oc: f64,
        z_src: Complex,
        freq_hz: f64,
        v_store: f64,
    ) -> Result<PpuOperatingPoint> {
        self.solve(v_oc, z_src, freq_hz, v_store, None)
    }

    /// Warm-started behavioural operating point: the fixed-point
    /// iteration is seeded from `prev_v_pk` — typically the
    /// [`PpuOperatingPoint::v_in_amp`] of the previous simulation tick —
    /// instead of the open-circuit amplitude, and exits as soon as the
    /// convergence criterion holds (often on the first iteration when
    /// the inputs moved only slightly between ticks).
    ///
    /// Wherever the damped fixed-point iteration converges — the whole
    /// physical operating range of the shipped device models — the
    /// result agrees with the cold-started solve to the solver's
    /// convergence tolerance (1 ppb on the loaded input amplitude); on
    /// the dead-zone path (`v_oc` below the diode drop) the two are
    /// bit-identical because the seed is never consulted. In the
    /// iteration's non-contracting corner (source impedance far above
    /// the pump's equivalent input resistance, right at the dead-zone
    /// crossing) the legacy solver itself stops seed-dependently on a
    /// bounded limit cycle, and warm and cold starts may land on
    /// different points of that cycle. A non-finite or non-positive
    /// seed falls back to the cold start.
    ///
    /// # Errors
    ///
    /// Same as [`PreparedPpu::operating_point`].
    pub fn operating_point_from(
        &self,
        prev_v_pk: f64,
        v_oc: f64,
        z_src: Complex,
        freq_hz: f64,
        v_store: f64,
    ) -> Result<PpuOperatingPoint> {
        let seed = if prev_v_pk.is_finite() && prev_v_pk > 0.0 {
            Some(prev_v_pk)
        } else {
            None
        };
        self.solve(v_oc, z_src, freq_hz, v_store, seed)
    }

    /// The shared fixed-point solve. With `seed == None` this is the
    /// legacy cold start (`v_pk` starts at `v_oc`); the float-operation
    /// sequence is kept identical to the pre-refactor
    /// `Multiplier::operating_point` so cold results are bit-stable
    /// across the refactor.
    fn solve(
        &self,
        v_oc: f64,
        z_src: Complex,
        freq_hz: f64,
        v_store: f64,
        seed: Option<f64>,
    ) -> Result<PpuOperatingPoint> {
        // Finiteness is part of the contract: an infinite frequency
        // (from a hostile vibration source) or an infinite open-circuit
        // amplitude must error here rather than seed the fixed-point
        // iteration (and, downstream, the simulator's warm-start memo)
        // with NaN.
        if !(freq_hz > 0.0 && freq_hz.is_finite())
            || !(v_oc >= 0.0 && v_oc.is_finite())
            || !(v_store >= 0.0 && v_store.is_finite())
        {
            return Err(PowerError::invalid(format!(
                "need finite freq > 0, v_oc >= 0, v_store >= 0 (got {freq_hz}, {v_oc}, {v_store})"
            )));
        }
        let n2 = self.n2;
        let r_droop = self.droop_resistance(freq_hz);
        let v_d = self.v_d;

        let idle = PpuOperatingPoint {
            p_store_w: 0.0,
            i_out_a: 0.0,
            v_in_amp: v_oc,
            p_in_w: 0.0,
            efficiency: 0.0,
        };
        if v_oc <= v_d {
            return Ok(idle);
        }

        // Fixed point: v_pk -> pump current -> equivalent input
        // resistance -> loaded v_pk.
        let mut v_pk = seed.unwrap_or(v_oc);
        let mut op = idle;
        for _ in 0..60 {
            let v_out_oc = n2 * (v_pk - v_d).max(0.0);
            let i_out = ((v_out_oc - v_store) / r_droop).max(0.0);
            if i_out <= 0.0 {
                // The pump cannot push charge at this storage voltage.
                op = PpuOperatingPoint {
                    p_store_w: 0.0,
                    i_out_a: 0.0,
                    v_in_amp: v_pk,
                    p_in_w: 0.0,
                    efficiency: 0.0,
                };
                // Unloaded: input floats back towards open circuit.
                let v_next = v_oc;
                if (v_next - v_pk).abs() < 1e-12 {
                    break;
                }
                v_pk = 0.5 * (v_pk + v_next);
                continue;
            }
            let p_store = v_store * i_out;
            let p_diode = n2 * v_d * i_out;
            let p_droop = i_out * i_out * r_droop;
            let p_in = p_store + p_diode + p_droop;
            // Equivalent fundamental input resistance.
            let r_eq = if p_in > 0.0 {
                (v_pk * v_pk / (2.0 * p_in)).max(1e-3)
            } else {
                f64::INFINITY
            };
            let v_next = v_oc * r_eq / (z_src + Complex::real(r_eq)).abs();
            op = PpuOperatingPoint {
                p_store_w: p_store,
                i_out_a: i_out,
                v_in_amp: v_pk,
                p_in_w: p_in,
                efficiency: if p_in > 0.0 { p_store / p_in } else { 0.0 },
            };
            if (v_next - v_pk).abs() < 1e-9 * v_pk.max(1e-9) {
                break;
            }
            v_pk = 0.5 * (v_pk + v_next);
        }
        Ok(op)
    }
}

impl Multiplier {
    /// Validates once and returns the hot-path solver handle.
    ///
    /// # Errors
    ///
    /// Propagates [`Multiplier::validate`] failures.
    pub fn prepared(&self) -> Result<PreparedPpu> {
        self.prepared_with_backend(SolverBackend::Auto)
    }

    /// [`Multiplier::prepared`] with an explicit circuit-level solver
    /// backend (see [`PreparedPpu::backend`]). The behavioural solve is
    /// unaffected; the backend only steers circuit-level verification
    /// of the same multiplier.
    ///
    /// # Errors
    ///
    /// Propagates [`Multiplier::validate`] failures.
    pub fn prepared_with_backend(&self, backend: SolverBackend) -> Result<PreparedPpu> {
        self.validate()?;
        let n = self.stages as f64;
        Ok(PreparedPpu {
            n2: (2 * self.stages) as f64,
            v_d: self.diode.v_fwd,
            droop_num: 2.0 * n * n * n / 3.0 + n * n / 2.0 - n / 6.0,
            stage_capacitance: self.stage_capacitance,
            backend,
        })
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] on a non-positive stage count or
    /// capacitance.
    pub fn validate(&self) -> Result<()> {
        if self.stages == 0 || self.stages > 16 {
            return Err(PowerError::invalid(format!(
                "stage count must be in 1..=16, got {}",
                self.stages
            )));
        }
        if !(self.stage_capacitance > 0.0) {
            return Err(PowerError::invalid(format!(
                "stage capacitance must be positive, got {}",
                self.stage_capacitance
            )));
        }
        if !(self.esr_ohms > 0.0) {
            return Err(PowerError::invalid(format!(
                "capacitor ESR must be positive, got {}",
                self.esr_ohms
            )));
        }
        Ok(())
    }

    /// Unloaded DC gain: `2N` minus the diode drops.
    pub fn open_circuit_voltage(&self, v_pk: f64) -> f64 {
        (2 * self.stages) as f64 * (v_pk - self.diode.v_fwd).max(0.0)
    }

    /// Classic CW output droop resistance at excitation frequency `f`.
    pub fn droop_resistance(&self, freq_hz: f64) -> f64 {
        let n = self.stages as f64;
        (2.0 * n * n * n / 3.0 + n * n / 2.0 - n / 6.0) / (freq_hz * self.stage_capacitance)
    }

    /// Builds the CW ladder into `nl` between the AC input node and a
    /// newly created DC output node (returned). Element names are
    /// prefixed to stay unique.
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction errors.
    pub fn attach(&self, nl: &mut Netlist, ac_in: NodeId, prefix: &str) -> Result<NodeId> {
        self.validate()?;
        let n2 = 2 * self.stages;
        // Nodes n1..n_{2N}; the ladder's diodes run gnd→n1→n2→…→n2N and
        // output is at the top of the DC column (even nodes).
        let mut nodes = Vec::with_capacity(n2 + 1);
        nodes.push(Netlist::GROUND); // n0
        for i in 1..=n2 {
            nodes.push(nl.node(&format!("{prefix}_n{i}")));
        }
        // Each ladder capacitor is a series C + ESR pair (cap from the
        // chain node to a private mid node, ESR on to the destination).
        let esr_cap = |nl: &mut Netlist, name: &str, a: NodeId, b: NodeId| -> Result<()> {
            let mid = nl.node(&format!("{name}_esr"));
            nl.capacitor(name, a, mid, self.stage_capacitance, 0.0)?;
            nl.resistor(&format!("{name}_r"), mid, b, self.esr_ohms)?;
            Ok(())
        };
        // AC column capacitors: ac→n1, n1→n3, n3→n5, …
        let mut prev = ac_in;
        let mut idx = 1;
        while idx <= n2 {
            esr_cap(nl, &format!("{prefix}_Ca{idx}"), prev, nodes[idx])?;
            prev = nodes[idx];
            idx += 2;
        }
        // DC column capacitors: gnd→n2, n2→n4, …
        let mut prev = Netlist::GROUND;
        let mut idx = 2;
        while idx <= n2 {
            esr_cap(nl, &format!("{prefix}_Cb{idx}"), prev, nodes[idx])?;
            prev = nodes[idx];
            idx += 2;
        }
        // Diode chain: n_{i-1} → n_i.
        for i in 1..=n2 {
            nl.diode_with_model(
                &format!("{prefix}_D{i}"),
                nodes[i - 1],
                nodes[i],
                self.diode,
            )?;
        }
        Ok(nodes[n2])
    }

    /// Behavioural operating point: the power flowing into a storage
    /// element held at `v_store`, when driven from a harvester with
    /// open-circuit EMF amplitude `v_oc` and source impedance `z_src`
    /// at frequency `freq_hz`.
    ///
    /// Solves the fixed point between the CW pump equations and the
    /// source loading; returns an all-zero operating point when the
    /// input cannot overcome the dead zone.
    ///
    /// Equivalent to `self.prepared()?.operating_point(..)`; callers in
    /// a per-tick loop should hold a [`PreparedPpu`] instead so the
    /// parameter validation runs once rather than per call.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] on invalid parameters or
    /// non-positive frequency.
    pub fn operating_point(
        &self,
        v_oc: f64,
        z_src: Complex,
        freq_hz: f64,
        v_store: f64,
    ) -> Result<PpuOperatingPoint> {
        self.prepared()?.solve(v_oc, z_src, freq_hz, v_store, None)
    }
}

/// Supercapacitor storage with leakage, tracked by energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Supercap {
    /// Capacitance (F).
    pub capacitance: f64,
    /// Rated (maximum) voltage (V); charge beyond it is shunted away.
    pub v_rated: f64,
    /// Leakage resistance (Ω) modelling self-discharge.
    pub leak_resistance: f64,
}

impl Default for Supercap {
    fn default() -> Self {
        Supercap {
            capacitance: 0.4,
            v_rated: 5.5,
            // Low-leakage part (~0.7 µA at 3.3 V): with a total harvest
            // budget of tens of microwatts, leakage must stay in the
            // microwatt range or it dominates the energy balance.
            leak_resistance: 5e6,
        }
    }
}

impl Supercap {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] on non-positive values.
    pub fn validate(&self) -> Result<()> {
        if !(self.capacitance > 0.0) || !(self.v_rated > 0.0) || !(self.leak_resistance > 0.0) {
            return Err(PowerError::invalid(
                "supercap parameters must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Stored energy (J) at voltage `v`.
    pub fn energy_j(&self, v: f64) -> f64 {
        0.5 * self.capacitance * v * v
    }

    /// Voltage at stored energy `e` (J).
    pub fn voltage_at(&self, e: f64) -> f64 {
        (2.0 * e.max(0.0) / self.capacitance).sqrt()
    }

    /// Advances the storage state by `dt` seconds with charging power
    /// `p_in` and discharging power `p_out` (both W, ≥ 0); returns the
    /// new voltage. Leakage `v²/R` is always drawn; the voltage is
    /// clamped to the rated value (a shunt regulator dumps the excess).
    pub fn step(&self, v: f64, p_in: f64, p_out: f64, dt: f64) -> f64 {
        let leak = v * v / self.leak_resistance;
        let e = self.energy_j(v) + (p_in - p_out - leak) * dt;
        self.voltage_at(e).min(self.v_rated)
    }

    /// Advances the storage state by `dt` seconds with a charging
    /// *current* `i_in` (A) and a discharging power `p_out` (W).
    ///
    /// Charging is charge-based (`dv = i·dt/C`), which — unlike the
    /// power-based [`Supercap::step`] — correctly cold-starts a fully
    /// depleted capacitor, where the absorbed *energy* `v·i` is zero but
    /// the charge still accumulates.
    pub fn step_with_current(&self, v: f64, i_in: f64, p_out: f64, dt: f64) -> f64 {
        self.step_with_current_accounted(v, i_in, p_out, dt).0
    }

    /// [`Supercap::step_with_current`] that additionally returns the
    /// charging energy (J) *actually delivered into the capacitor* by
    /// `i_in` during this step, from the same clamping arithmetic that
    /// produced the new voltage.
    ///
    /// Away from the rated-voltage clamp the delivered energy is the
    /// mid-charge `v·i·dt` (trapezoidal `v_mid · ΔQ`). When the charge
    /// would push the voltage past `v_rated`, the shunt regulator dumps
    /// the excess: only the charge up to the rail is accepted, and the
    /// delivered energy is exactly `E(v_rated) − E(v)`. Accounting the
    /// energy here — rather than recomputing a separately clamped
    /// mid-voltage at the call site — keeps `harvested_energy_j` equal
    /// to the energy the storage model actually absorbed, closing the
    /// simulator's energy balance near the rail.
    pub fn step_with_current_accounted(
        &self,
        v: f64,
        i_in: f64,
        p_out: f64,
        dt: f64,
    ) -> (f64, f64) {
        let v_charged_raw = v + i_in * dt / self.capacitance;
        let (v_charged, e_in) = if v_charged_raw <= self.v_rated {
            // Unclamped: v_mid·i·dt with v_mid the exact mid-charge
            // voltage (algebraically E(v_charged) − E(v)).
            (
                v_charged_raw,
                (v + 0.5 * i_in * dt / self.capacitance) * i_in * dt,
            )
        } else {
            // Clamped at the rail: only C·(v_rated − v) of charge is
            // accepted; the rest is shunted away and never stored.
            (self.v_rated, self.energy_j(self.v_rated) - self.energy_j(v))
        };
        let leak = v_charged * v_charged / self.leak_resistance;
        let e = self.energy_j(v_charged) - (p_out + leak) * dt;
        (self.voltage_at(e).min(self.v_rated), e_in)
    }
}

/// Hysteresis supply thresholds: the node runs only while the storage
/// voltage stays above `v_off`, and cold-starts once it exceeds `v_on`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Cold-start (turn-on) voltage (V).
    pub v_on: f64,
    /// Brown-out (turn-off) voltage (V).
    pub v_off: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            v_on: 3.3,
            v_off: 2.4,
        }
    }
}

impl Thresholds {
    /// Validates `v_on > v_off > 0`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] otherwise.
    pub fn validate(&self) -> Result<()> {
        if !(self.v_off > 0.0) || !(self.v_on > self.v_off) {
            return Err(PowerError::invalid(format!(
                "need v_on > v_off > 0 (got v_on={}, v_off={})",
                self.v_on, self.v_off
            )));
        }
        Ok(())
    }

    /// Next supply state given the storage voltage and current state.
    pub fn update(&self, v_store: f64, running: bool) -> bool {
        if running {
            v_store > self.v_off
        } else {
            v_store >= self.v_on
        }
    }
}

/// A DC/DC regulator between storage and the node, with a constant
/// conversion efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regulator {
    /// Regulated output voltage (V).
    pub v_out: f64,
    /// Conversion efficiency in `(0, 1]`.
    pub efficiency: f64,
}

impl Default for Regulator {
    fn default() -> Self {
        Regulator {
            v_out: 1.8,
            efficiency: 0.85,
        }
    }
}

impl Regulator {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] on out-of-range values.
    pub fn validate(&self) -> Result<()> {
        if !(self.v_out > 0.0) || !(self.efficiency > 0.0) || self.efficiency > 1.0 {
            return Err(PowerError::invalid(format!(
                "need v_out > 0 and efficiency in (0,1] (got {}, {})",
                self.v_out, self.efficiency
            )));
        }
        Ok(())
    }

    /// Power drawn from storage to supply `p_load` at the output.
    pub fn input_power(&self, p_load: f64) -> f64 {
        p_load / self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_circuit::{LinearizedStateSpaceEngine, Probe, SourceWaveform, TransientConfig};

    #[test]
    fn multiplier_validation() {
        assert!(Multiplier::default().validate().is_ok());
        assert!(Multiplier {
            stages: 0,
            ..Multiplier::default()
        }
        .validate()
        .is_err());
        assert!(Multiplier {
            stage_capacitance: 0.0,
            ..Multiplier::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn open_circuit_gain() {
        let m = Multiplier {
            stages: 2,
            ..Multiplier::default()
        };
        assert!((m.open_circuit_voltage(1.0) - 4.0 * 0.7).abs() < 1e-12);
        assert_eq!(m.open_circuit_voltage(0.1), 0.0);
    }

    #[test]
    fn droop_grows_with_stages() {
        let base = Multiplier::default();
        let more = Multiplier { stages: 6, ..base };
        assert!(more.droop_resistance(60.0) > 5.0 * base.droop_resistance(60.0));
    }

    #[test]
    fn ladder_circuit_multiplies_voltage() {
        // Drive a 2-stage ladder from a stiff AC source and check the DC
        // output approaches 4·(V_pk − V_d).
        let mult = Multiplier {
            stages: 2,
            stage_capacitance: 10e-6,
            ..Multiplier::default()
        };
        let mut nl = Netlist::new();
        let ac = nl.node("ac");
        nl.vsource("Vac", ac, Netlist::GROUND, SourceWaveform::sine(2.0, 100.0))
            .unwrap();
        let out = mult.attach(&mut nl, ac, "cw").unwrap();
        let out_name = nl.node_name(out).to_string();
        nl.resistor("Rload", out, Netlist::GROUND, 10e6).unwrap();
        let cfg = TransientConfig::new(1.0, 2e-5).unwrap();
        let res = LinearizedStateSpaceEngine::default()
            .simulate(&nl, &cfg, &[Probe::NodeVoltage(out_name.clone())])
            .unwrap();
        let v_end = *res
            .signal(&format!("v({out_name})"))
            .unwrap()
            .last()
            .unwrap();
        let ideal = 4.0 * (2.0 - 0.3);
        assert!(
            v_end > 0.8 * ideal && v_end <= ideal + 0.1,
            "v_end = {v_end}, ideal = {ideal}"
        );
    }

    #[test]
    fn prepared_backend_defaults_to_auto_and_is_inert() {
        let m = Multiplier::default();
        let auto = m.prepared().unwrap();
        assert_eq!(auto.backend(), SolverBackend::Auto);
        let sparse = m
            .prepared_with_backend(SolverBackend::SparseNatural)
            .unwrap();
        assert_eq!(sparse.backend(), SolverBackend::SparseNatural);
        // The behavioural solve is matrix-free: backend choice must not
        // change a single bit of the operating point.
        let z = Complex::real(2e3);
        let a = auto.operating_point(1.5, z, 60.0, 1.0).unwrap();
        let b = sparse.operating_point(1.5, z, 60.0, 1.0).unwrap();
        assert_eq!(a.p_store_w.to_bits(), b.p_store_w.to_bits());
        assert_eq!(a.i_out_a.to_bits(), b.i_out_a.to_bits());
        assert_eq!(a.v_in_amp.to_bits(), b.v_in_amp.to_bits());
    }

    #[test]
    fn operating_point_rejects_non_finite_inputs() {
        // Regression: infinite envelope values reaching the solve (via
        // a hostile vibration source) must error instead of iterating
        // on NaN and poisoning the warm-start seed.
        let p = Multiplier::default().prepared().unwrap();
        let z = Complex::real(2e3);
        for (v_oc, f, v_st) in [
            (f64::INFINITY, 60.0, 1.0),
            (f64::NAN, 60.0, 1.0),
            (1.5, f64::INFINITY, 1.0),
            (1.5, f64::NAN, 1.0),
            (1.5, 60.0, f64::INFINITY),
            (1.5, 60.0, f64::NAN),
        ] {
            assert!(
                p.operating_point(v_oc, z, f, v_st).is_err(),
                "operating_point({v_oc}, {f}, {v_st})"
            );
            assert!(
                p.operating_point_from(1.0, v_oc, z, f, v_st).is_err(),
                "operating_point_from({v_oc}, {f}, {v_st})"
            );
        }
    }

    #[test]
    fn behavioural_dead_zone_and_ceiling() {
        let m = Multiplier::default();
        let z = Complex::real(2e3);
        // Below the diode drop: nothing.
        let op = m.operating_point(0.2, z, 60.0, 1.0).unwrap();
        assert_eq!(op.p_store_w, 0.0);
        // Charging power is positive in the working range…
        let p1 = m.operating_point(1.5, z, 60.0, 1.0).unwrap().p_store_w;
        let p2 = m.operating_point(1.5, z, 60.0, 3.0).unwrap().p_store_w;
        assert!(p1 > 0.0 && p2 > 0.0);
        // …and stops once the storage reaches the open-circuit ceiling.
        let p_stop = m.operating_point(1.5, z, 60.0, 20.0).unwrap().p_store_w;
        assert_eq!(p_stop, 0.0);
    }

    #[test]
    fn behavioural_power_is_parabolic_in_storage_voltage() {
        // P = V·(V_oc − V)/R is a max-power-transfer parabola: the
        // charging power peaks at an intermediate storage voltage.
        let m = Multiplier::default();
        let z = Complex::real(2e3);
        let ps: Vec<f64> = (1..=12)
            .map(|k| {
                m.operating_point(1.5, z, 60.0, 0.5 * k as f64)
                    .unwrap()
                    .p_store_w
            })
            .collect();
        let peak_idx = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak_idx > 0, "peak at the lowest voltage: {ps:?}");
        assert!(ps[peak_idx] > ps[0]);
        assert!(*ps.last().unwrap() < ps[peak_idx]);
    }

    #[test]
    fn behavioural_efficiency_bounded() {
        let m = Multiplier::default();
        let z = Complex::new(2e3, 500.0);
        for v_store in [0.5, 1.5, 3.0, 4.5] {
            let op = m.operating_point(1.2, z, 65.0, v_store).unwrap();
            assert!(
                (0.0..=1.0).contains(&op.efficiency),
                "eff = {}",
                op.efficiency
            );
            assert!(op.p_in_w >= op.p_store_w);
            assert!(op.v_in_amp <= 1.2 + 1e-9);
        }
    }

    #[test]
    fn behavioural_matches_ladder_circuit_roughly() {
        // Calibration check: the behavioural fixed point should land
        // within a factor ~2 of a full circuit simulation of the same
        // ladder charging a large storage capacitor.
        let mult = Multiplier {
            stages: 2,
            stage_capacitance: 10e-6,
            ..Multiplier::default()
        };
        let v_pk = 1.5;
        let freq = 80.0;
        let r_src = 500.0;
        let v_store = 2.0;

        // Circuit: AC source with series resistance, ladder, big cap
        // pre-charged to v_store; measure average charging current by
        // the storage voltage slope.
        let mut nl = Netlist::new();
        let ac_src = nl.node("acs");
        let ac = nl.node("ac");
        nl.vsource(
            "Vac",
            ac_src,
            Netlist::GROUND,
            SourceWaveform::sine(v_pk, freq),
        )
        .unwrap();
        nl.resistor("Rsrc", ac_src, ac, r_src).unwrap();
        let out = mult.attach(&mut nl, ac, "cw").unwrap();
        let c_store = 1e-3;
        let out_name = nl.node_name(out).to_string();
        nl.capacitor("Cstore", out, Netlist::GROUND, c_store, v_store)
            .unwrap();
        let t_end = 1.5;
        let cfg = TransientConfig::new(t_end, 2e-5).unwrap();
        let res = LinearizedStateSpaceEngine::default()
            .simulate(&nl, &cfg, &[Probe::NodeVoltage(out_name.clone())])
            .unwrap();
        let sig = res.signal(&format!("v({out_name})")).unwrap();
        // Charging power ≈ C·V·dV/dt averaged over the tail.
        let k0 = sig.len() / 2;
        let dv = sig[sig.len() - 1] - sig[k0];
        let dt = res.time()[res.time().len() - 1] - res.time()[k0];
        let v_mid = 0.5 * (sig[sig.len() - 1] + sig[k0]);
        let p_circuit = c_store * v_mid * dv / dt;

        let op = mult
            .operating_point(v_pk, Complex::real(r_src), freq, v_mid)
            .unwrap();
        assert!(
            op.p_store_w > 0.3 * p_circuit && op.p_store_w < 3.0 * p_circuit,
            "behavioural {} vs circuit {}",
            op.p_store_w,
            p_circuit
        );
    }

    #[test]
    fn supercap_energy_bookkeeping() {
        let sc = Supercap {
            capacitance: 1.0,
            v_rated: 5.0,
            leak_resistance: 1e15,
        };
        // Charging 1 W for 1 s from 1 V: E 0.5 -> 1.5 J, V = sqrt(3).
        let v = sc.step(1.0, 1.0, 0.0, 1.0);
        assert!((v - 3f64.sqrt()).abs() < 1e-9);
        // Discharge symmetric.
        let v2 = sc.step(v, 0.0, 1.0, 1.0);
        assert!((v2 - 1.0).abs() < 1e-9);
        // Clamped at rated voltage.
        let v3 = sc.step(4.9, 1e3, 0.0, 10.0);
        assert_eq!(v3, 5.0);
    }

    #[test]
    fn supercap_leakage_discharges() {
        let sc = Supercap {
            capacitance: 0.1,
            v_rated: 5.0,
            leak_resistance: 100.0,
        };
        // Small steps approximate exponential self-discharge.
        let mut v = 4.0f64;
        let dt = 0.01;
        for _ in 0..1000 {
            v = sc.step(v, 0.0, 0.0, dt);
        }
        let exact = 4.0 * (-10.0f64 / (100.0 * 0.1)).exp(); // e^{-t/RC}
        assert!((v - exact).abs() < 0.05, "v={v}, exact={exact}");
    }

    #[test]
    fn thresholds_hysteresis() {
        let th = Thresholds::default();
        th.validate().unwrap();
        assert!(!th.update(3.0, false)); // below v_on, stays off
        assert!(th.update(3.4, false)); // cold start
        assert!(th.update(3.0, true)); // hysteresis keeps it on
        assert!(th.update(2.5, true));
        assert!(!th.update(2.3, true)); // brown-out
        assert!(Thresholds {
            v_on: 2.0,
            v_off: 2.4
        }
        .validate()
        .is_err());
    }

    #[test]
    fn regulator_power() {
        let r = Regulator::default();
        r.validate().unwrap();
        assert!((r.input_power(85e-3) - 0.1).abs() < 1e-12);
        assert!(Regulator {
            v_out: 1.8,
            efficiency: 1.2
        }
        .validate()
        .is_err());
    }
}
