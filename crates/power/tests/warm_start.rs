//! Property suite for the prepared/warm-started PPU solver.
//!
//! Two contracts are proven over randomized sweeps of the physical
//! operating range:
//!
//! 1. **Cold bit-identity** — the prepared solver with a cold seed (the
//!    path the system simulator uses in its default `Exact` mode) is
//!    bit-identical to the legacy `Multiplier::operating_point`, field
//!    by field. This is what keeps every campaign CSV byte-stable
//!    across the hot-path refactor.
//! 2. **Warm agreement** — a solve seeded from a neighbouring converged
//!    operating point (the previous simulation tick, in practice)
//!    lands on the same fixed point as the cold start, within the
//!    solver's convergence tolerance; and on the dead-zone path the
//!    seed is never consulted, so warm and cold are bit-identical
//!    there.

use ehsim_numeric::complex::Complex;
use ehsim_power::{Multiplier, PpuOperatingPoint};
use proptest::prelude::*;
use proptest::TestCaseError;

fn assert_bit_identical(a: &PpuOperatingPoint, b: &PpuOperatingPoint) -> Result<(), TestCaseError> {
    for (x, y, f) in [
        (a.p_store_w, b.p_store_w, "p_store_w"),
        (a.i_out_a, b.i_out_a, "i_out_a"),
        (a.v_in_amp, b.v_in_amp, "v_in_amp"),
        (a.p_in_w, b.p_in_w, "p_in_w"),
        (a.efficiency, b.efficiency, "efficiency"),
    ] {
        prop_assert!(x.to_bits() == y.to_bits(), "{}: {} vs {}", f, x, y);
    }
    Ok(())
}

/// `|a − b| ≤ rel·max(|a|,|b|) + abs` — the agreement the warm start
/// guarantees given the solver's 1 ppb stopping criterion on `v_pk`.
fn close(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    (a - b).abs() <= rel * a.abs().max(b.abs()) + abs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prepared_cold_solve_is_bit_identical_to_legacy(
        v_oc in 0.0f64..4.0,
        r_src in 100.0f64..50e3,
        x_src in -20e3f64..20e3,
        freq in 40.0f64..120.0,
        v_store in 0.0f64..6.0,
        stages in 1usize..9,
    ) {
        let m = Multiplier { stages, ..Multiplier::default() };
        let z = Complex::new(r_src, x_src);
        let legacy = m.operating_point(v_oc, z, freq, v_store).expect("legacy solve");
        let ppu = m.prepared().expect("valid multiplier");
        let cold = ppu.operating_point(v_oc, z, freq, v_store).expect("prepared solve");
        assert_bit_identical(&legacy, &cold)?;
        prop_assert_eq!(
            ppu.droop_resistance(freq).to_bits(),
            m.droop_resistance(freq).to_bits()
        );
    }

    #[test]
    fn warm_start_matches_cold_solve(
        v_oc in 0.0f64..4.0,
        r_src in 100.0f64..50e3,
        x_src in -20e3f64..20e3,
        freq in 40.0f64..120.0,
        v_store in 0.0f64..6.0,
        dv in -0.05f64..0.05,
        stages in 1usize..9,
    ) {
        let m = Multiplier { stages, ..Multiplier::default() };
        let z = Complex::new(r_src, x_src);
        let ppu = m.prepared().expect("valid multiplier");
        let cold = ppu.operating_point(v_oc, z, freq, v_store).expect("cold solve");
        // The warm-agreement contract applies where the damped Picard
        // iteration converges. In a thin sliver of the input space
        // (very high source impedance right at the dead-zone crossing)
        // the map is non-contracting and the legacy solver itself stops
        // seed-dependently on a bounded limit cycle; skip those draws.
        // Convergence is detected through the public API: re-seeding
        // the solver with its own answer must reproduce it.
        let re = ppu
            .operating_point_from(cold.v_in_amp, v_oc, z, freq, v_store)
            .expect("re-solve");
        prop_assume!(close(cold.v_in_amp, re.v_in_amp, 1e-6, 1e-9));
        // The seed the simulator would carry: the converged input
        // amplitude of the "previous tick", whose storage voltage
        // differs slightly.
        let v_prev = (v_store + dv).max(0.0);
        let seed = ppu
            .operating_point(v_oc, z, freq, v_prev)
            .expect("seed solve")
            .v_in_amp;
        let warm = ppu
            .operating_point_from(seed, v_oc, z, freq, v_store)
            .expect("warm solve");
        prop_assert!(
            close(cold.v_in_amp, warm.v_in_amp, 1e-6, 1e-9),
            "v_in_amp: {} vs {} (v_oc={} r={} x={} f={} vs={} dv={} n={})",
            cold.v_in_amp, warm.v_in_amp, v_oc, r_src, x_src, freq, v_store, dv, stages
        );
        prop_assert!(
            close(cold.p_store_w, warm.p_store_w, 1e-4, 1e-9),
            "p_store_w: {} vs {}", cold.p_store_w, warm.p_store_w
        );
        prop_assert!(
            close(cold.i_out_a, warm.i_out_a, 1e-4, 1e-12),
            "i_out_a: {} vs {}", cold.i_out_a, warm.i_out_a
        );
        prop_assert!(
            close(cold.p_in_w, warm.p_in_w, 1e-4, 1e-9),
            "p_in_w: {} vs {}", cold.p_in_w, warm.p_in_w
        );
        prop_assert!(
            close(cold.efficiency, warm.efficiency, 1e-4, 1e-6),
            "efficiency: {} vs {}", cold.efficiency, warm.efficiency
        );
    }

    #[test]
    fn warm_start_is_bit_identical_on_the_dead_zone_path(
        v_oc_frac in 0.0f64..1.0,
        seed in 0.0f64..5.0,
        freq in 40.0f64..120.0,
        v_store in 0.0f64..6.0,
    ) {
        // v_oc at or below the diode drop: the solve returns the idle
        // point before consulting the seed, so any seed gives bits
        // equal to the cold start.
        let m = Multiplier::default();
        let v_oc = v_oc_frac * m.diode.v_fwd;
        let z = Complex::real(2e3);
        let ppu = m.prepared().expect("valid multiplier");
        let cold = ppu.operating_point(v_oc, z, freq, v_store).expect("cold solve");
        let warm = ppu
            .operating_point_from(seed, v_oc, z, freq, v_store)
            .expect("warm solve");
        assert_bit_identical(&cold, &warm)?;
        prop_assert_eq!(cold.p_store_w.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn degenerate_seeds_fall_back_to_cold_start(
        v_oc in 0.5f64..3.0,
        freq in 40.0f64..120.0,
        v_store in 0.0f64..6.0,
    ) {
        let m = Multiplier::default();
        let z = Complex::new(5e3, 1e3);
        let ppu = m.prepared().expect("valid multiplier");
        let cold = ppu.operating_point(v_oc, z, freq, v_store).expect("cold solve");
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let warm = ppu
                .operating_point_from(bad, v_oc, z, freq, v_store)
                .expect("warm solve");
            assert_bit_identical(&cold, &warm)?;
        }
    }
}

#[test]
fn accounted_step_matches_unaccounted_voltage_and_ledger() {
    use ehsim_power::Supercap;
    let sc = Supercap::default();
    // Away from the rail the accounted step returns the legacy voltage
    // bit-for-bit and the trapezoidal v_mid·i·dt energy.
    let (v, e) = sc.step_with_current_accounted(3.0, 1e-5, 2e-5, 0.1);
    assert_eq!(
        v.to_bits(),
        sc.step_with_current(3.0, 1e-5, 2e-5, 0.1).to_bits()
    );
    let v_mid = 3.0 + 0.5 * 1e-5 * 0.1 / sc.capacitance;
    assert_eq!(e.to_bits(), (v_mid * 1e-5 * 0.1).to_bits());
    // At the rail only the accepted charge counts: E(v_rated) − E(v).
    let sc_small = Supercap {
        capacitance: 1e-3,
        ..Supercap::default()
    };
    let v0 = sc_small.v_rated - 1e-4;
    let i = 1e-2; // would overshoot the rail by far
    let (v_clamped, e_clamped) = sc_small.step_with_current_accounted(v0, i, 0.0, 0.1);
    assert!(v_clamped <= sc_small.v_rated);
    let absorbed = sc_small.energy_j(sc_small.v_rated) - sc_small.energy_j(v0);
    assert!((e_clamped - absorbed).abs() < 1e-15);
    // The old separately clamped accounting would have claimed
    // v_rated·i·dt — three orders of magnitude more than was stored.
    assert!(e_clamped < 0.1 * (sc_small.v_rated * i * 0.1));
}
