//! Numerical substrate for the `ehsim` workspace.
//!
//! This crate provides, from scratch, every numerical routine the rest of
//! the workspace relies on:
//!
//! * dense linear algebra — [`Matrix`], [`Lu`], [`Qr`], [`Cholesky`];
//! * sparse linear algebra — [`Csc`] storage, fill-reducing orderings
//!   and structural analysis ([`amd`]), and the KLU-style
//!   symbolic/numeric split [`Symbolic`]/[`SparseLu`] with an `O(nnz)`
//!   [`SparseLu::refactorize`] for repeated same-pattern solves;
//! * the matrix exponential ([`expm()`]) used by the explicit linearized
//!   state-space circuit engine;
//! * ODE integrators ([`ode`]) for reference mechanical simulations;
//! * scalar root finding ([`rootfind`]);
//! * univariate polynomials ([`poly`]) and piecewise-linear tables
//!   ([`interp`]);
//! * probability distributions and special functions ([`stats`]) needed
//!   by the ANOVA/F-test machinery of the DoE crate.
//!
//! No external numerical dependencies are used; the implementations follow
//! the classic algorithms (partial-pivoting LU, Householder QR, Padé
//! scaling-and-squaring `expm`, embedded Runge–Kutta–Fehlberg stepping,
//! Lanczos log-gamma, continued-fraction incomplete beta).
//!
//! # Example
//!
//! ```
//! use ehsim_numeric::{Matrix, Lu};
//!
//! # fn main() -> Result<(), ehsim_numeric::NumericError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amd;
pub mod cholesky;
pub mod complex;
pub mod csc;
pub mod eigen;
pub mod expm;
pub mod interp;
pub mod lu;
pub mod matrix;
pub mod ode;
pub mod poly;
pub mod qr;
pub mod rootfind;
pub mod sparse_lu;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use complex::Complex;
pub use csc::Csc;
pub use expm::expm;
pub use interp::LinearTable;
pub use lu::Lu;
pub use matrix::Matrix;
pub use ode::{FnSystem, OdeSystem, Rk4, Rkf45, Trajectory};
pub use poly::Polynomial;
pub use qr::Qr;
pub use sparse_lu::{SparseLu, Symbolic};

use std::error::Error;
use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A matrix factorisation encountered a (numerically) singular matrix.
    Singular,
    /// A Cholesky factorisation was attempted on a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite,
    /// Operand dimensions are incompatible.
    Dimension {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape actually supplied.
        got: String,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
    },
    /// An argument was outside the routine's domain.
    InvalidArgument {
        /// Description of the violated precondition.
        message: String,
    },
}

impl NumericError {
    /// Builds a [`NumericError::Dimension`] from shape descriptions.
    pub fn dimension(expected: impl Into<String>, got: impl Into<String>) -> Self {
        NumericError::Dimension {
            expected: expected.into(),
            got: got.into(),
        }
    }

    /// Builds a [`NumericError::InvalidArgument`] from a message.
    pub fn invalid(message: impl Into<String>) -> Self {
        NumericError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::Singular => write!(f, "matrix is singular to working precision"),
            NumericError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            NumericError::Dimension { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            NumericError::NoConvergence { routine } => {
                write!(f, "routine `{routine}` failed to converge")
            }
            NumericError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl Error for NumericError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, NumericError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_never_empty() {
        let errors = [
            NumericError::Singular,
            NumericError::NotPositiveDefinite,
            NumericError::dimension("3x3", "2x3"),
            NumericError::NoConvergence { routine: "brent" },
            NumericError::invalid("x must be positive"),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
