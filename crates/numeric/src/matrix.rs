//! Dense, row-major, `f64` matrices.
//!
//! [`Matrix`] is deliberately small and concrete: the workspace only ever
//! needs modest dimensions (circuit MNA systems of a few dozen unknowns,
//! DoE model matrices of at most a few hundred rows), so a contiguous
//! row-major `Vec<f64>` with straightforward `O(n^3)` kernels is both
//! simple and fast enough.

use crate::{NumericError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use ehsim_numeric::Matrix;
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = (&a * &b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if the rows have differing
    /// lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(NumericError::dimension("at least one row", "0 rows"));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(NumericError::dimension("at least one column", "0 columns"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(NumericError::dimension(
                    format!("{cols} columns"),
                    format!("{} columns in row {i}", r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericError::dimension(
                format!("{} elements", rows * cols),
                format!("{}", data.len()),
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a single-column matrix from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of range {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of range {}", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of range");
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumericError::dimension(
                format!("vector of length {}", self.cols),
                format!("length {}", x.len()),
            ));
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(NumericError::dimension(
                format!("vector of length {}", self.rows),
                format!("length {}", x.len()),
            ));
        }
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                y[j] += self[(i, j)] * xi;
            }
        }
        Ok(y)
    }

    /// In-place scaling by a scalar.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` without modifying `self`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// 1-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Elementwise maximum absolute difference to another matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .fold(0.0, |m, (a, b)| m.max((a - b).abs())))
    }

    /// Stacks `self` above `other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(NumericError::dimension(
                format!("{} columns", self.cols),
                format!("{} columns", other.cols),
            ));
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `self` left of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(NumericError::dimension(
                format!("{} rows", self.rows),
                format!("{} rows", other.rows),
            ));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Extracts the contiguous sub-matrix with rows `r0..r1` and columns
    /// `c0..c1` (half-open ranges).
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or empty.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 < r1 && r1 <= self.rows, "bad row range {r0}..{r1}");
        assert!(c0 < c1 && c1 <= self.cols, "bad column range {c0}..{c1}");
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Whether all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn check_same_shape(&self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(NumericError::dimension(
                format!("{}x{}", self.rows, self.cols),
                format!("{}x{}", other.rows, other.cols),
            ));
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Result<Matrix>;

    fn add(self, rhs: &Matrix) -> Result<Matrix> {
        self.check_same_shape(rhs)?;
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Sub for &Matrix {
    type Output = Result<Matrix>;

    fn sub(self, rhs: &Matrix) -> Result<Matrix> {
        self.check_same_shape(rhs)?;
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix>;

    fn mul(self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(NumericError::dimension(
                format!("inner dimension {}", self.cols),
                format!("{} rows", rhs.rows),
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both
        // operands, which matters for the repeated squarings in `expm`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, r) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix {}x{} ", self.rows, self.cols)?;
        f.debug_list()
            .entries((0..self.rows).map(|i| self.row(i)))
            .finish()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert!(approx_eq(i.trace(), 3.0));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericError::Dimension { .. }));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = (&a * &b).unwrap();
        assert!(approx_eq(c[(0, 0)], 19.0));
        assert!(approx_eq(c[(0, 1)], 22.0));
        assert!(approx_eq(c[(1, 0)], 43.0));
        assert!(approx_eq(c[(1, 1)], 50.0));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!((&a * &b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0, 2.0], &[0.0, 3.0, 1.0]]).unwrap();
        let x = [2.0, 1.0, -1.0];
        let y = a.matvec(&x).unwrap();
        assert!(approx_eq(y[0], -1.0));
        assert!(approx_eq(y[1], 2.0));
    }

    #[test]
    fn matvec_transposed_matches_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let x = [1.0, -1.0, 2.0];
        let direct = a.matvec_transposed(&x).unwrap();
        let via_t = a.transpose().matvec(&x).unwrap();
        assert!(approx_eq(direct[0], via_t[0]));
        assert!(approx_eq(direct[1], via_t[1]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        a.swap_rows(0, 1);
        assert!(approx_eq(a[(0, 0)], 3.0));
        assert!(approx_eq(a[(1, 1)], 2.0));
    }

    #[test]
    fn norms_on_known_matrix() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]).unwrap();
        assert!(approx_eq(a.norm_inf(), 7.0));
        assert!(approx_eq(a.norm_one(), 6.0));
        assert!(approx_eq(a.norm_max(), 4.0));
        assert!(approx_eq(a.norm_frobenius(), 30.0_f64.sqrt()));
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 2);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 2));
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert!(approx_eq(h[(1, 1)], 1.0));
        assert!(approx_eq(h[(1, 3)], 0.0));
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert!(approx_eq(s[(0, 0)], 6.0));
        assert!(approx_eq(s[(1, 1)], 11.0));
    }

    #[test]
    fn diagonal_builds_square() {
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert!(approx_eq(d.trace(), 6.0));
        assert!(approx_eq(d[(0, 1)], 0.0));
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 3, |i, j| (i * j) as f64);
        let s = (&a + &b).unwrap();
        let back = (&s - &b).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-15);
    }
}
