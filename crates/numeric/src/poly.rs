//! Univariate polynomials with `f64` coefficients.
//!
//! The multivariate response-surface polynomials live in `ehsim-doe`;
//! this module supplies the univariate building blocks (evaluation,
//! calculus, arithmetic) used for tuning curves and analytic checks.

use crate::{NumericError, Result};
use std::fmt;

/// A univariate polynomial stored as ascending coefficients:
/// `coeffs[0] + coeffs[1] x + coeffs[2] x² + …`.
///
/// # Example
///
/// ```
/// use ehsim_numeric::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, -3.0, 2.0]); // 2x² - 3x + 1
/// assert_eq!(p.eval(2.0), 3.0);
/// let roots = p.real_roots().unwrap();
/// assert_eq!(roots.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients. Trailing zeros
    /// are trimmed; the zero polynomial is stored as a single `0.0`.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// Ascending coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::constant(0.0);
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| c * i as f64)
            .collect();
        Polynomial::new(coeffs)
    }

    /// Antiderivative with integration constant zero.
    pub fn antiderivative(&self) -> Polynomial {
        let mut coeffs = vec![0.0];
        coeffs.extend(
            self.coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| c / (i as f64 + 1.0)),
        );
        Polynomial::new(coeffs)
    }

    /// Definite integral over `[a, b]`.
    pub fn integrate(&self, a: f64, b: f64) -> f64 {
        let anti = self.antiderivative();
        anti.eval(b) - anti.eval(a)
    }

    /// Polynomial sum.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                self.coeffs.get(i).copied().unwrap_or(0.0)
                    + other.coeffs.get(i).copied().unwrap_or(0.0)
            })
            .collect();
        Polynomial::new(coeffs)
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut coeffs = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }

    /// Real roots, for polynomials of degree at most 3.
    ///
    /// Roots are returned in ascending order. Double roots appear once.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] for degree > 3 or the zero
    /// polynomial.
    pub fn real_roots(&self) -> Result<Vec<f64>> {
        let c = &self.coeffs;
        match self.degree() {
            0 => {
                if c[0] == 0.0 {
                    Err(NumericError::invalid(
                        "zero polynomial has infinitely many roots",
                    ))
                } else {
                    Ok(vec![])
                }
            }
            1 => Ok(vec![-c[0] / c[1]]),
            2 => {
                let (a, b, cc) = (c[2], c[1], c[0]);
                let disc = b * b - 4.0 * a * cc;
                if disc < 0.0 {
                    Ok(vec![])
                } else if disc == 0.0 {
                    Ok(vec![-b / (2.0 * a)])
                } else {
                    // Numerically stable quadratic formula.
                    let q = -0.5 * (b + disc.sqrt().copysign(b));
                    let mut roots = vec![q / a, cc / q];
                    roots.sort_by(|x, y| x.partial_cmp(y).expect("finite roots"));
                    Ok(roots)
                }
            }
            3 => {
                // Depressed-cubic trigonometric/Cardano solution.
                let (a, b, cc, d) = (c[3], c[2], c[1], c[0]);
                let b = b / a;
                let cc = cc / a;
                let d = d / a;
                let p = cc - b * b / 3.0;
                let q = 2.0 * b * b * b / 27.0 - b * cc / 3.0 + d;
                let shift = -b / 3.0;
                let disc = (q / 2.0) * (q / 2.0) + (p / 3.0) * (p / 3.0) * (p / 3.0);
                let mut roots = if disc > 1e-300 {
                    let sq = disc.sqrt();
                    let u = (-q / 2.0 + sq).cbrt();
                    let v = (-q / 2.0 - sq).cbrt();
                    vec![u + v + shift]
                } else if disc.abs() <= 1e-300 {
                    if q.abs() < 1e-300 {
                        vec![shift]
                    } else {
                        let u = (-q / 2.0).cbrt();
                        vec![2.0 * u + shift, -u + shift]
                    }
                } else {
                    let r = (-p * p * p / 27.0).sqrt();
                    let phi = (-q / (2.0 * r)).clamp(-1.0, 1.0).acos();
                    let m = 2.0 * (-p / 3.0).sqrt();
                    (0..3)
                        .map(|k| {
                            m * ((phi + 2.0 * std::f64::consts::PI * k as f64) / 3.0).cos() + shift
                        })
                        .collect()
                };
                roots.sort_by(|x, y| x.partial_cmp(y).expect("finite roots"));
                roots.dedup_by(|x, y| (*x - *y).abs() < 1e-9);
                Ok(roots)
            }
            d => Err(NumericError::invalid(format!(
                "real_roots supports degree <= 3, got {d}"
            ))),
        }
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c >= 0.0 { "+" } else { "-" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let mag = c.abs();
            match i {
                0 => write!(f, "{mag}")?,
                1 => write!(f, "{mag}·x")?,
                _ => write!(f, "{mag}·x^{i}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 3x² + 2x + 1
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 6.0);
        assert_eq!(p.eval(-2.0), 9.0);
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(Polynomial::new(vec![]).degree(), 0);
    }

    #[test]
    fn derivative_and_antiderivative_roundtrip() {
        let p = Polynomial::new(vec![4.0, 3.0, 2.0, 1.0]);
        let back = p.derivative().antiderivative();
        // Antiderivative drops the constant term.
        assert_eq!(back.coeffs()[1..], p.coeffs()[1..]);
        assert_eq!(back.coeffs()[0], 0.0);
    }

    #[test]
    fn definite_integral() {
        let p = Polynomial::new(vec![0.0, 0.0, 3.0]); // 3x²
        assert!((p.integrate(0.0, 2.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let p = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let q = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        assert_eq!(p.add(&q), Polynomial::new(vec![0.0, 2.0]));
        assert_eq!(p.mul(&q), Polynomial::new(vec![-1.0, 0.0, 1.0])); // x² - 1
    }

    #[test]
    fn quadratic_roots() {
        let p = Polynomial::new(vec![2.0, -3.0, 1.0]); // (x-1)(x-2)
        let roots = p.real_roots().unwrap();
        assert!((roots[0] - 1.0).abs() < 1e-12);
        assert!((roots[1] - 2.0).abs() < 1e-12);
        // No real roots.
        assert!(Polynomial::new(vec![1.0, 0.0, 1.0])
            .real_roots()
            .unwrap()
            .is_empty());
        // Double root.
        let d = Polynomial::new(vec![1.0, -2.0, 1.0]).real_roots().unwrap();
        assert_eq!(d.len(), 1);
        assert!((d[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cubic_roots_three_real() {
        // (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6
        let p = Polynomial::new(vec![-6.0, 11.0, -6.0, 1.0]);
        let roots = p.real_roots().unwrap();
        assert_eq!(roots.len(), 3);
        for (r, expect) in roots.iter().zip([1.0, 2.0, 3.0]) {
            assert!((r - expect).abs() < 1e-9, "root {r} vs {expect}");
        }
    }

    #[test]
    fn cubic_roots_one_real() {
        // x³ - 1 has a single real root at 1.
        let p = Polynomial::new(vec![-1.0, 0.0, 0.0, 1.0]);
        let roots = p.real_roots().unwrap();
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_and_constant_roots() {
        assert_eq!(
            Polynomial::new(vec![-4.0, 2.0]).real_roots().unwrap(),
            vec![2.0]
        );
        assert!(Polynomial::constant(3.0).real_roots().unwrap().is_empty());
        assert!(Polynomial::constant(0.0).real_roots().is_err());
        assert!(Polynomial::new(vec![0.0; 5]).real_roots().is_err());
    }

    #[test]
    fn quartic_rejected() {
        let p = Polynomial::new(vec![1.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(p.real_roots().is_err());
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Polynomial::new(vec![1.0, -2.0, 3.0])).is_empty());
        assert_eq!(format!("{}", Polynomial::constant(0.0)), "0");
    }
}
