//! Matrix exponential via Padé scaling-and-squaring.
//!
//! The explicit linearized state-space circuit engine discretises each
//! piecewise-linear topology exactly as
//! `x[k+1] = e^{A h} x[k] + A⁻¹ (e^{A h} − I) B u` and caches the
//! exponential per topology, so this routine sits on the engine's
//! (infrequent) re-linearisation path.

use crate::lu::Lu;
use crate::matrix::Matrix;
use crate::{NumericError, Result};

/// Computes the matrix exponential `e^A` using the [6/6] Padé approximant
/// with scaling and squaring.
///
/// Accuracy is close to machine precision for the moderately sized,
/// moderately normed matrices produced by circuit discretisation.
///
/// # Errors
///
/// * [`NumericError::Dimension`] if `a` is not square.
/// * [`NumericError::InvalidArgument`] if `a` contains non-finite values.
/// * [`NumericError::Singular`] if the Padé denominator cannot be solved
///   (indicates a pathologically scaled input).
///
/// # Example
///
/// ```
/// use ehsim_numeric::{expm, Matrix};
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// // exp of a diagonal matrix is elementwise exp on the diagonal.
/// let a = Matrix::diagonal(&[0.0, 1.0_f64.ln()]);
/// let e = expm(&a)?;
/// assert!((e[(0, 0)] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(NumericError::dimension(
            "square matrix",
            format!("{}x{}", a.rows(), a.cols()),
        ));
    }
    if !a.is_finite() {
        return Err(NumericError::invalid(
            "matrix exponential of a non-finite matrix",
        ));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }

    // Scaling: find s with ||A / 2^s|| <= 0.25, the safe radius for the
    // [6/6] approximant in double precision.
    let norm = a.norm_inf();
    let s = if norm > 0.25 {
        ((norm / 0.25).log2().ceil() as i32).max(0) as u32 // lint:allow(D5): scaling exponent: ceil of a finite log2, clamped to >= 0
    } else {
        0
    };
    let scaled = a.scaled(1.0 / f64::powi(2.0, s as i32));

    // [6/6] Padé approximant coefficients b_k / b_0 with
    // b = [665280, 332640, 75600, 10080, 840, 42, 1].
    const C: [f64; 7] = [
        1.0,
        0.5,
        75600.0 / 665280.0,
        10080.0 / 665280.0,
        840.0 / 665280.0,
        42.0 / 665280.0,
        1.0 / 665280.0,
    ];

    let ident = Matrix::identity(n);
    let a2 = (&scaled * &scaled)?;
    let a4 = (&a2 * &a2)?;
    let a6 = (&a2 * &a4)?;

    // U = A (c1 I + c3 A^2 + c5 A^4),  V = c0 I + c2 A^2 + c4 A^4 + c6 A^6
    let mut u_inner = ident.scaled(C[1]);
    u_inner = (&u_inner + &a2.scaled(C[3]))?;
    u_inner = (&u_inner + &a4.scaled(C[5]))?;
    let u = (&scaled * &u_inner)?;

    let mut v = ident.scaled(C[0]);
    v = (&v + &a2.scaled(C[2]))?;
    v = (&v + &a4.scaled(C[4]))?;
    v = (&v + &a6.scaled(C[6]))?;

    // (V - U) R = (V + U)
    let denom = (&v - &u)?;
    let numer = (&v + &u)?;
    let mut r = Lu::factor(&denom)?.solve_matrix(&numer)?;

    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        r = (&r * &r)?;
    }
    Ok(r)
}

/// Computes `Phi = e^{A h}` and `Gamma = ∫₀ʰ e^{A τ} dτ · B` in one shot
/// using the block-matrix trick
/// `exp([[A, B], [0, 0]] h) = [[Phi, Gamma], [0, I]]`.
///
/// This is the exact zero-order-hold discretisation of `ẋ = A x + B u`
/// and works even when `A` is singular.
///
/// # Errors
///
/// * [`NumericError::Dimension`] if `a` is not square or `b.rows() != a.rows()`.
/// * Propagates [`expm`] errors.
pub fn discretize_zoh(a: &Matrix, b: &Matrix, h: f64) -> Result<(Matrix, Matrix)> {
    if !a.is_square() {
        return Err(NumericError::dimension(
            "square matrix",
            format!("{}x{}", a.rows(), a.cols()),
        ));
    }
    if b.rows() != a.rows() {
        return Err(NumericError::dimension(
            format!("{} rows", a.rows()),
            format!("{} rows", b.rows()),
        ));
    }
    let n = a.rows();
    let m = b.cols();
    let mut block = Matrix::zeros(n + m, n + m);
    for i in 0..n {
        for j in 0..n {
            block[(i, j)] = a[(i, j)] * h;
        }
        for j in 0..m {
            block[(i, n + j)] = b[(i, j)] * h;
        }
    }
    let e = expm(&block)?;
    let phi = e.submatrix(0, n, 0, n);
    let gamma = e.submatrix(0, n, n, n + m);
    Ok((phi, gamma))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expm_zero_is_identity() {
        let e = expm(&Matrix::zeros(3, 3)).unwrap();
        assert!(e.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-15);
    }

    #[test]
    fn expm_diagonal() {
        let a = Matrix::diagonal(&[1.0, -2.0, 0.5]);
        let e = expm(&a).unwrap();
        for (i, &d) in [1.0f64, -2.0, 0.5].iter().enumerate() {
            assert!((e[(i, i)] - d.exp()).abs() < 1e-12 * d.exp().max(1.0));
        }
    }

    #[test]
    fn expm_rotation_matrix() {
        // exp([[0, -t], [t, 0]]) = [[cos t, -sin t], [sin t, cos t]]
        let t = 1.3;
        let a = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - t.cos()).abs() < 1e-12);
        assert!((e[(0, 1)] + t.sin()).abs() < 1e-12);
        assert!((e[(1, 0)] - t.sin()).abs() < 1e-12);
        assert!((e[(1, 1)] - t.cos()).abs() < 1e-12);
    }

    #[test]
    fn expm_additivity_for_same_matrix() {
        // e^{2A} == (e^{A})^2 for any A.
        let a = Matrix::from_rows(&[&[0.1, 0.7], &[-0.4, 0.2]]).unwrap();
        let e1 = expm(&a.scaled(2.0)).unwrap();
        let e2 = {
            let e = expm(&a).unwrap();
            (&e * &e).unwrap()
        };
        assert!(e1.max_abs_diff(&e2).unwrap() < 1e-12);
    }

    #[test]
    fn expm_large_norm_uses_scaling() {
        let a = Matrix::from_rows(&[&[0.0, 30.0], &[-30.0, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - 30.0f64.cos()).abs() < 1e-9);
        assert!((e[(1, 0)] + 30.0f64.sin()).abs() < 1e-9); // sin(-30) entry
    }

    #[test]
    fn expm_rejects_nan() {
        let a = Matrix::from_rows(&[&[f64::NAN]]).unwrap();
        assert!(expm(&a).is_err());
    }

    #[test]
    fn discretize_zoh_scalar_decay() {
        // ẋ = -x + u, h = 0.1: phi = e^{-h}, gamma = 1 - e^{-h}.
        let a = Matrix::from_rows(&[&[-1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let (phi, gamma) = discretize_zoh(&a, &b, 0.1).unwrap();
        assert!((phi[(0, 0)] - (-0.1f64).exp()).abs() < 1e-13);
        assert!((gamma[(0, 0)] - (1.0 - (-0.1f64).exp())).abs() < 1e-13);
    }

    #[test]
    fn discretize_zoh_singular_a() {
        // Pure integrator ẋ = u: phi = 1, gamma = h.
        let a = Matrix::zeros(1, 1);
        let b = Matrix::from_rows(&[&[1.0]]).unwrap();
        let (phi, gamma) = discretize_zoh(&a, &b, 0.25).unwrap();
        assert!((phi[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((gamma[(0, 0)] - 0.25).abs() < 1e-14);
    }

    #[test]
    fn discretised_oscillator_conserves_energy() {
        // Undamped oscillator: the ZOH map must be a rotation (norm 1).
        let w = 2.0 * std::f64::consts::PI * 5.0;
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-w * w, 0.0]]).unwrap();
        let b = Matrix::zeros(2, 1);
        let (phi, _) = discretize_zoh(&a, &b, 1e-3).unwrap();
        // det(phi) == 1 for a Hamiltonian flow.
        let det = phi[(0, 0)] * phi[(1, 1)] - phi[(0, 1)] * phi[(1, 0)];
        assert!((det - 1.0).abs() < 1e-12);
    }
}
