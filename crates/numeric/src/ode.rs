//! Ordinary differential equation integrators.
//!
//! Provides fixed-step forward Euler and classic Runge–Kutta 4, plus an
//! embedded Runge–Kutta–Fehlberg 4(5) adaptive stepper. These serve as
//! accuracy references for the circuit engines and integrate the
//! nonlinear mechanical models directly.

use crate::{NumericError, Result};

/// A first-order ODE system `ẋ = f(t, x)`.
pub trait OdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;

    /// Evaluates the derivative into `dxdt`.
    fn eval(&self, t: f64, x: &[f64], dxdt: &mut [f64]);
}

/// Adapter turning a closure `f(t, x, dxdt)` into an [`OdeSystem`].
///
/// # Example
///
/// ```
/// use ehsim_numeric::{FnSystem, Rk4};
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// // Exponential decay ẋ = -x.
/// let sys = FnSystem::new(1, |_t, x, dxdt| dxdt[0] = -x[0]);
/// let traj = Rk4::new(1e-3).integrate(&sys, 0.0, &[1.0], 1.0)?;
/// assert!((traj.last_state()[0] - (-1.0f64).exp()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps a derivative closure with its state dimension.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&self, t: f64, x: &[f64], dxdt: &mut [f64]) {
        (self.f)(t, x, dxdt)
    }
}

/// A sampled solution trajectory.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, t: f64, x: &[f64]) {
        self.times.push(t);
        self.states.push(x.to_vec());
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled states (one `Vec` per time point).
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trajectory holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Final state.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_state(&self) -> &[f64] {
        self.states.last().expect("empty trajectory")
    }

    /// Final time.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("empty trajectory")
    }

    /// Extracts the time series of one state component.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for any sample.
    pub fn component(&self, idx: usize) -> Vec<f64> {
        self.states.iter().map(|s| s[idx]).collect()
    }

    /// Linear interpolation of the state at time `t` (clamped to the
    /// sampled range).
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn sample(&self, t: f64) -> Vec<f64> {
        assert!(!self.is_empty(), "cannot sample an empty trajectory");
        if t <= self.times[0] {
            return self.states[0].clone();
        }
        if t >= self.last_time() {
            return self.last_state().to_vec();
        }
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("NaN time"))
        {
            Ok(i) => return self.states[i].clone(),
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let alpha = (t - t0) / (t1 - t0);
        crate::vector::lerp(&self.states[idx - 1], &self.states[idx], alpha)
    }
}

fn check_inputs(sys: &dyn OdeSystem, x0: &[f64], t0: f64, t_end: f64, h: f64) -> Result<()> {
    if x0.len() != sys.dim() {
        return Err(NumericError::dimension(
            format!("state of length {}", sys.dim()),
            format!("length {}", x0.len()),
        ));
    }
    if !(h > 0.0) || !h.is_finite() {
        return Err(NumericError::invalid(format!(
            "step size must be positive, got {h}"
        )));
    }
    if t_end < t0 {
        return Err(NumericError::invalid(format!(
            "t_end ({t_end}) must be >= t0 ({t0})"
        )));
    }
    Ok(())
}

/// Fixed-step forward Euler integrator.
#[derive(Debug, Clone, Copy)]
pub struct Euler {
    h: f64,
}

impl Euler {
    /// Creates an integrator with step size `h`.
    pub fn new(h: f64) -> Self {
        Euler { h }
    }

    /// Integrates from `t0` to `t_end`, sampling every step.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] / [`NumericError::InvalidArgument`]
    /// on malformed inputs.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        x0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory> {
        check_inputs(sys, x0, t0, t_end, self.h)?;
        let n = sys.dim();
        let mut x = x0.to_vec();
        let mut dxdt = vec![0.0; n];
        let mut t = t0;
        let mut traj = Trajectory::new();
        traj.push(t, &x);
        while t < t_end {
            let h = self.h.min(t_end - t);
            sys.eval(t, &x, &mut dxdt);
            crate::vector::axpy(h, &dxdt, &mut x);
            t += h;
            traj.push(t, &x);
        }
        Ok(traj)
    }
}

/// Fixed-step classic Runge–Kutta 4 integrator.
#[derive(Debug, Clone, Copy)]
pub struct Rk4 {
    h: f64,
}

impl Rk4 {
    /// Creates an integrator with step size `h`.
    pub fn new(h: f64) -> Self {
        Rk4 { h }
    }

    /// Performs a single RK4 step in place.
    pub fn step(sys: &impl OdeSystem, t: f64, x: &mut [f64], h: f64) {
        let n = x.len();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];

        sys.eval(t, x, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k1[i];
        }
        sys.eval(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k2[i];
        }
        sys.eval(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + h * k3[i];
        }
        sys.eval(t + h, &tmp, &mut k4);
        for i in 0..n {
            x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    /// Integrates from `t0` to `t_end`, sampling every step.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] / [`NumericError::InvalidArgument`]
    /// on malformed inputs.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        x0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory> {
        check_inputs(sys, x0, t0, t_end, self.h)?;
        let mut x = x0.to_vec();
        let mut t = t0;
        let mut traj = Trajectory::new();
        traj.push(t, &x);
        while t < t_end {
            let h = self.h.min(t_end - t);
            Self::step(sys, t, &mut x, h);
            t += h;
            traj.push(t, &x);
        }
        Ok(traj)
    }
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) integrator.
#[derive(Debug, Clone, Copy)]
pub struct Rkf45 {
    /// Relative error tolerance.
    pub rtol: f64,
    /// Absolute error tolerance.
    pub atol: f64,
    /// Minimum allowed step.
    pub h_min: f64,
    /// Maximum allowed step.
    pub h_max: f64,
}

impl Default for Rkf45 {
    fn default() -> Self {
        Rkf45 {
            rtol: 1e-8,
            atol: 1e-10,
            h_min: 1e-12,
            h_max: 1.0,
        }
    }
}

impl Rkf45 {
    /// Creates an adaptive integrator with the given tolerances and
    /// default step bounds.
    pub fn new(rtol: f64, atol: f64) -> Self {
        Rkf45 {
            rtol,
            atol,
            ..Rkf45::default()
        }
    }

    /// Integrates from `t0` to `t_end` with adaptive step control,
    /// sampling every accepted step.
    ///
    /// # Errors
    ///
    /// * [`NumericError::Dimension`] / [`NumericError::InvalidArgument`] on
    ///   malformed inputs.
    /// * [`NumericError::NoConvergence`] if the controller drives the step
    ///   below `h_min`.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        x0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory> {
        check_inputs(sys, x0, t0, t_end, self.h_max)?;
        // Fehlberg coefficients.
        const A: [[f64; 5]; 5] = [
            [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
            [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
            [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
            [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
            [
                -8.0 / 27.0,
                2.0,
                -3544.0 / 2565.0,
                1859.0 / 4104.0,
                -11.0 / 40.0,
            ],
        ];
        const C: [f64; 6] = [0.0, 0.25, 0.375, 12.0 / 13.0, 1.0, 0.5];
        // 5th-order solution weights.
        const B5: [f64; 6] = [
            16.0 / 135.0,
            0.0,
            6656.0 / 12825.0,
            28561.0 / 56430.0,
            -9.0 / 50.0,
            2.0 / 55.0,
        ];
        // 4th-order solution weights (for the error estimate).
        const B4: [f64; 6] = [
            25.0 / 216.0,
            0.0,
            1408.0 / 2565.0,
            2197.0 / 4104.0,
            -1.0 / 5.0,
            0.0,
        ];

        let n = sys.dim();
        let mut x = x0.to_vec();
        let mut t = t0;
        let mut h = ((t_end - t0) / 100.0).clamp(self.h_min, self.h_max);
        let mut traj = Trajectory::new();
        traj.push(t, &x);

        let mut k = vec![vec![0.0; n]; 6];
        let mut tmp = vec![0.0; n];

        while t < t_end {
            h = h.min(t_end - t);
            sys.eval(t, &x, &mut k[0]);
            for stage in 1..6 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, kj) in k.iter().enumerate().take(stage) {
                        acc += A[stage - 1][j] * kj[i];
                    }
                    tmp[i] = x[i] + h * acc;
                }
                let (head, tail) = k.split_at_mut(stage);
                let _ = head;
                sys.eval(t + C[stage] * h, &tmp, &mut tail[0]);
            }

            // Error estimate = ||x5 - x4||, scaled.
            let mut err: f64 = 0.0;
            let mut x5 = vec![0.0; n];
            for i in 0..n {
                let mut d5 = 0.0;
                let mut d4 = 0.0;
                for s in 0..6 {
                    d5 += B5[s] * k[s][i];
                    d4 += B4[s] * k[s][i];
                }
                x5[i] = x[i] + h * d5;
                let scale = self.atol + self.rtol * x[i].abs().max(x5[i].abs());
                err = err.max((h * (d5 - d4)).abs() / scale);
            }

            if err <= 1.0 || h <= self.h_min {
                t += h;
                x = x5;
                traj.push(t, &x);
            }
            // PI-free step controller with safety factor.
            let factor = if err > 0.0 {
                (0.9 * err.powf(-0.2)).clamp(0.2, 5.0)
            } else {
                5.0
            };
            h = (h * factor).clamp(self.h_min, self.h_max);
            if h <= self.h_min && err > 1.0 {
                return Err(NumericError::NoConvergence { routine: "rkf45" });
            }
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, x, d| d[0] = -x[0])
    }

    fn oscillator(w: f64) -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, move |_t, x, d| {
            d[0] = x[1];
            d[1] = -w * w * x[0];
        })
    }

    #[test]
    fn euler_first_order_accuracy() {
        let sys = decay();
        let coarse = Euler::new(1e-2).integrate(&sys, 0.0, &[1.0], 1.0).unwrap();
        let fine = Euler::new(1e-3).integrate(&sys, 0.0, &[1.0], 1.0).unwrap();
        let exact = (-1.0f64).exp();
        let e_coarse = (coarse.last_state()[0] - exact).abs();
        let e_fine = (fine.last_state()[0] - exact).abs();
        // Halving... reducing h by 10 should reduce error ~10x (order 1).
        assert!(
            e_fine < e_coarse / 5.0,
            "e_coarse={e_coarse}, e_fine={e_fine}"
        );
    }

    #[test]
    fn rk4_fourth_order_accuracy() {
        let sys = decay();
        let exact = (-1.0f64).exp();
        let e1 = (Rk4::new(1e-2)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap()
            .last_state()[0]
            - exact)
            .abs();
        let e2 = (Rk4::new(5e-3)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap()
            .last_state()[0]
            - exact)
            .abs();
        // Halving h should reduce error ~16x; allow slack.
        assert!(e2 < e1 / 8.0, "e1={e1}, e2={e2}");
    }

    #[test]
    fn rk4_oscillator_period() {
        let w = 2.0 * std::f64::consts::PI; // 1 Hz
        let sys = oscillator(w);
        let traj = Rk4::new(1e-4)
            .integrate(&sys, 0.0, &[1.0, 0.0], 1.0)
            .unwrap();
        // After one period the state returns to the initial condition.
        assert!((traj.last_state()[0] - 1.0).abs() < 1e-6);
        assert!(traj.last_state()[1].abs() < 1e-4);
    }

    #[test]
    fn rkf45_matches_exact_solution() {
        let sys = decay();
        let traj = Rkf45::new(1e-10, 1e-12)
            .integrate(&sys, 0.0, &[1.0], 2.0)
            .unwrap();
        assert!((traj.last_state()[0] - (-2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rkf45_takes_fewer_steps_than_rk4_for_same_accuracy() {
        let sys = oscillator(2.0 * std::f64::consts::PI);
        let adaptive = Rkf45::new(1e-8, 1e-10)
            .integrate(&sys, 0.0, &[1.0, 0.0], 5.0)
            .unwrap();
        let fixed = Rk4::new(1e-4)
            .integrate(&sys, 0.0, &[1.0, 0.0], 5.0)
            .unwrap();
        assert!(adaptive.len() < fixed.len() / 10);
        assert!((adaptive.last_state()[0] - fixed.last_state()[0]).abs() < 1e-5);
    }

    #[test]
    fn trajectory_sampling_interpolates() {
        let mut traj = Trajectory::new();
        traj.push(0.0, &[0.0]);
        traj.push(1.0, &[10.0]);
        assert!((traj.sample(0.5)[0] - 5.0).abs() < 1e-12);
        assert_eq!(traj.sample(-1.0)[0], 0.0);
        assert_eq!(traj.sample(2.0)[0], 10.0);
    }

    #[test]
    fn component_extraction() {
        let mut traj = Trajectory::new();
        traj.push(0.0, &[1.0, 2.0]);
        traj.push(1.0, &[3.0, 4.0]);
        assert_eq!(traj.component(1), vec![2.0, 4.0]);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let sys = decay();
        assert!(Rk4::new(0.0).integrate(&sys, 0.0, &[1.0], 1.0).is_err());
        assert!(Rk4::new(1e-3)
            .integrate(&sys, 0.0, &[1.0, 2.0], 1.0)
            .is_err());
        assert!(Rk4::new(1e-3).integrate(&sys, 1.0, &[1.0], 0.0).is_err());
    }
}
