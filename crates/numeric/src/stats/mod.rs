//! Statistics: special functions, probability distributions, and
//! descriptive summaries.
//!
//! The DoE crate's ANOVA tables need F-distribution tail probabilities,
//! coefficient t-tests need the Student-t distribution, and confidence
//! intervals need quantiles of both — all built here on top of the
//! regularized incomplete beta and gamma functions.

pub mod dist;
pub mod special;
pub mod summary;

pub use dist::{ChiSquared, FisherF, Normal, StudentT};
pub use summary::Summary;
