//! Descriptive statistics over `f64` samples.

use crate::{NumericError, Result};

/// Summary statistics of a sample.
///
/// # Example
///
/// ```
/// use ehsim_numeric::stats::Summary;
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Computes summary statistics of a non-empty sample.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if the sample is empty or
    /// contains non-finite values.
    pub fn of(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(NumericError::invalid("empty sample"));
        }
        if !crate::vector::all_finite(data) {
            return Err(NumericError::invalid("sample contains non-finite values"));
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            n,
            mean,
            variance,
            min,
            max,
        })
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero for singleton samples).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Range `max - min`.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }
}

/// Sample mean; `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance; `0.0` for samples smaller than 2.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() as f64 - 1.0)
}

/// Quantile with linear interpolation (type-7, the numpy default).
///
/// # Errors
///
/// [`NumericError::InvalidArgument`] if the sample is empty or
/// `q ∉ [0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(NumericError::invalid("empty sample"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(NumericError::invalid(format!(
            "quantile q={q} not in [0, 1]"
        )));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize; // lint:allow(D5): quantile bracket: pos is finite in [0, len-1]
    let hi = pos.ceil() as usize; // lint:allow(D5): quantile bracket: pos is finite in [0, len-1]
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// [`NumericError::InvalidArgument`] if the sample is empty.
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// # Errors
///
/// [`NumericError::Dimension`] if lengths differ;
/// [`NumericError::InvalidArgument`] if either sample has zero variance
/// or fewer than 2 points.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(NumericError::dimension(
            format!("equal lengths, lhs has {}", a.len()),
            format!("{}", b.len()),
        ));
    }
    if a.len() < 2 {
        return Err(NumericError::invalid("need at least 2 points"));
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return Err(NumericError::invalid("zero-variance sample"));
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Root-mean-square error between predictions and observations.
///
/// # Errors
///
/// [`NumericError::Dimension`] if lengths differ;
/// [`NumericError::InvalidArgument`] if the samples are empty.
pub fn rmse(pred: &[f64], obs: &[f64]) -> Result<f64> {
    if pred.len() != obs.len() {
        return Err(NumericError::dimension(
            format!("equal lengths, lhs has {}", pred.len()),
            format!("{}", obs.len()),
        ));
    }
    if pred.is_empty() {
        return Err(NumericError::invalid("empty sample"));
    }
    let mse = pred
        .iter()
        .zip(obs.iter())
        .map(|(p, o)| (p - o) * (p - o))
        .sum::<f64>()
        / pred.len() as f64;
    Ok(mse.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.range(), 7.0);
    }

    #[test]
    fn summary_singleton() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::of(&[]).is_err());
        assert!(Summary::of(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn quantile_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&data, 0.5).unwrap(), 2.5);
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn rmse_known() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
        assert!(rmse(&[], &[]).is_err());
    }

    #[test]
    fn free_function_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!(quantile(&[1.0], 2.0).is_err());
    }
}
