//! Probability distributions: normal, Student-t, Fisher F, chi-squared.
//!
//! Each distribution exposes `pdf`, `cdf`, `sf` (survival function) and
//! `quantile`. Quantiles are computed by a closed-form rational
//! approximation for the normal and by Brent inversion of the CDF for the
//! others, which is plenty fast for building ANOVA tables.

use super::special::{beta_inc, erfc, gamma_p, ln_gamma};
use crate::rootfind::brent;
use crate::{NumericError, Result};

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `sd <= 0` or either parameter
    /// is non-finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !(sd > 0.0) || !mean.is_finite() || !sd.is_finite() {
            return Err(NumericError::invalid(format!(
                "normal requires finite mean and sd > 0 (got mean={mean}, sd={sd})"
            )));
        }
        Ok(Normal { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// Mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation parameter.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Survival function `1 - cdf(x)`.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse CDF) via the Acklam rational approximation
    /// polished with one Newton step.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `p ∉ (0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0 < p && p < 1.0) {
            return Err(NumericError::invalid(format!(
                "quantile requires p in (0, 1), got {p}"
            )));
        }
        let z = standard_normal_quantile(p);
        // One Newton polish against our own cdf for consistency.
        let std = Normal::standard();
        let err = std.cdf(z) - p;
        let z = z - err / std.pdf(z).max(1e-300);
        Ok(self.mean + self.sd * z)
    }
}

/// Acklam's rational approximation to the standard normal quantile.
fn standard_normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates a t distribution.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `df <= 0` or non-finite.
    pub fn new(df: f64) -> Result<Self> {
        if !(df > 0.0) || !df.is_finite() {
            return Err(NumericError::invalid(format!(
                "student-t requires df > 0, got {df}"
            )));
        }
        Ok(StudentT { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln_coeff =
            ln_gamma((v + 1.0) / 2.0) - ln_gamma(v / 2.0) - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_coeff - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    /// Cumulative distribution function via the incomplete beta function.
    pub fn cdf(&self, x: f64) -> f64 {
        let v = self.df;
        if x == 0.0 {
            return 0.5;
        }
        let ib = beta_inc(v / 2.0, 0.5, v / (v + x * x))
            .expect("beta_inc arguments are in-domain by construction");
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    /// Survival function `1 - cdf(x)`.
    pub fn sf(&self, x: f64) -> f64 {
        self.cdf(-x)
    }

    /// Two-sided p-value for an observed statistic `t`.
    pub fn p_value_two_sided(&self, t: f64) -> f64 {
        (2.0 * self.sf(t.abs())).min(1.0)
    }

    /// Quantile via Brent inversion of the CDF.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `p ∉ (0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0 < p && p < 1.0) {
            return Err(NumericError::invalid(format!(
                "quantile requires p in (0, 1), got {p}"
            )));
        }
        if (p - 0.5).abs() < 1e-15 {
            return Ok(0.0);
        }
        // Bracket using the normal quantile inflated for heavy tails.
        let z = standard_normal_quantile(p);
        let guess = z * (1.0 + 2.0 / self.df).sqrt();
        let half_width = 10.0 + guess.abs() * 10.0;
        brent(
            |x| self.cdf(x) - p,
            guess - half_width,
            guess + half_width,
            1e-12,
        )
    }
}

/// Fisher–Snedecor F distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// Creates an F distribution with numerator df `d1` and denominator
    /// df `d2`.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if either df is non-positive or
    /// non-finite.
    pub fn new(d1: f64, d2: f64) -> Result<Self> {
        if !(d1 > 0.0) || !(d2 > 0.0) || !d1.is_finite() || !d2.is_finite() {
            return Err(NumericError::invalid(format!(
                "fisher-f requires d1, d2 > 0 (got d1={d1}, d2={d2})"
            )));
        }
        Ok(FisherF { d1, d2 })
    }

    /// Numerator degrees of freedom.
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Denominator degrees of freedom.
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        beta_inc(
            self.d1 / 2.0,
            self.d2 / 2.0,
            self.d1 * x / (self.d1 * x + self.d2),
        )
        .expect("beta_inc arguments are in-domain by construction")
    }

    /// Survival function `1 - cdf(x)` — the p-value of an F test.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        beta_inc(
            self.d2 / 2.0,
            self.d1 / 2.0,
            self.d2 / (self.d1 * x + self.d2),
        )
        .expect("beta_inc arguments are in-domain by construction")
    }

    /// Quantile via Brent inversion of the CDF.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `p ∉ (0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0 < p && p < 1.0) {
            return Err(NumericError::invalid(format!(
                "quantile requires p in (0, 1), got {p}"
            )));
        }
        // The CDF is monotone from 0 to 1; expand the bracket until it
        // contains p.
        let mut hi = 1.0;
        while self.cdf(hi) < p && hi < 1e12 {
            hi *= 4.0;
        }
        brent(|x| self.cdf(x) - p, 0.0, hi, 1e-12)
    }
}

/// Chi-squared distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `k <= 0` or non-finite.
    pub fn new(k: f64) -> Result<Self> {
        if !(k > 0.0) || !k.is_finite() {
            return Err(NumericError::invalid(format!(
                "chi-squared requires k > 0, got {k}"
            )));
        }
        Ok(ChiSquared { k })
    }

    /// Degrees of freedom.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.k / 2.0, x / 2.0).expect("gamma_p arguments are in-domain")
    }

    /// Survival function `1 - cdf(x)`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile via Brent inversion of the CDF.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `p ∉ (0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0 < p && p < 1.0) {
            return Err(NumericError::invalid(format!(
                "quantile requires p in (0, 1), got {p}"
            )));
        }
        let mut hi = self.k.max(1.0);
        while self.cdf(hi) < p && hi < 1e12 {
            hi *= 4.0;
        }
        brent(|x| self.cdf(x) - p, 0.0, hi, 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((n.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-10);
        assert!((n.cdf(-1.96) - 0.024_997_895_148_220_43).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(2.0, 3.0).unwrap();
        for p in [0.001, 0.05, 0.3, 0.5, 0.9, 0.999] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn normal_known_critical_value() {
        let n = Normal::standard();
        assert!((n.quantile(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-8);
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::standard().quantile(0.0).is_err());
    }

    #[test]
    fn student_t_reference_values() {
        // t(10): P(T <= 1.812) ~ 0.95 (critical value for alpha=0.05)
        let t = StudentT::new(10.0).unwrap();
        assert!((t.cdf(1.812_461_122_811_676) - 0.95).abs() < 1e-9);
        assert!((t.cdf(0.0) - 0.5).abs() < 1e-14);
        // Large df approaches the normal.
        let t_big = StudentT::new(1e6).unwrap();
        assert!((t_big.cdf(1.0) - Normal::standard().cdf(1.0)).abs() < 1e-5);
    }

    #[test]
    fn student_t_quantile_inverts() {
        let t = StudentT::new(5.0).unwrap();
        for p in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = t.quantile(p).unwrap();
            assert!((t.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert_eq!(t.quantile(0.5).unwrap(), 0.0);
    }

    #[test]
    fn student_t_two_sided_p() {
        let t = StudentT::new(20.0).unwrap();
        // |t| = 2.086 is the 0.05 two-sided critical value at df=20.
        assert!((t.p_value_two_sided(2.085_963_447_265_837) - 0.05).abs() < 1e-6);
        assert!((t.p_value_two_sided(-2.085_963_447_265_837) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn fisher_f_reference_value() {
        // F(3, 12): the 0.95 quantile is 3.4903.
        let f = FisherF::new(3.0, 12.0).unwrap();
        assert!((f.quantile(0.95).unwrap() - 3.490_294_819_497_605).abs() < 1e-6);
        assert!((f.cdf(3.490_294_819_497_605) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn fisher_f_sf_complements_cdf() {
        let f = FisherF::new(4.0, 7.0).unwrap();
        for x in [0.1, 0.5, 1.0, 2.0, 10.0] {
            assert!((f.cdf(x) + f.sf(x) - 1.0).abs() < 1e-12);
        }
        assert_eq!(f.cdf(-1.0), 0.0);
        assert_eq!(f.sf(0.0), 1.0);
    }

    #[test]
    fn fisher_f_equals_t_squared() {
        // If T ~ t(v) then T² ~ F(1, v).
        let v = 8.0;
        let t = StudentT::new(v).unwrap();
        let f = FisherF::new(1.0, v).unwrap();
        let x = 1.7;
        let p_t = t.cdf(x) - t.cdf(-x); // P(|T| <= x)
        let p_f = f.cdf(x * x);
        assert!((p_t - p_f).abs() < 1e-10);
    }

    #[test]
    fn chi_squared_reference_values() {
        // chi2(2) cdf(x) = 1 - e^{-x/2}
        let c = ChiSquared::new(2.0).unwrap();
        for x in [0.5, 1.0, 5.0] {
            assert!((c.cdf(x) - (1.0 - (-x / 2.0).exp())).abs() < 1e-12);
        }
        // 0.95 quantile of chi2(3) is 7.8147.
        let c3 = ChiSquared::new(3.0).unwrap();
        assert!((c3.quantile(0.95).unwrap() - 7.814_727_903_251_178).abs() < 1e-6);
    }

    #[test]
    fn parameter_validation() {
        assert!(StudentT::new(0.0).is_err());
        assert!(FisherF::new(1.0, 0.0).is_err());
        assert!(ChiSquared::new(-1.0).is_err());
    }
}
