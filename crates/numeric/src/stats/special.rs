//! Special functions: log-gamma, regularized incomplete gamma and beta,
//! and the error function.
//!
//! Implementations follow the classic series/continued-fraction forms
//! (Lanczos approximation for `ln Γ`, Lentz's algorithm for the beta
//! continued fraction) and are accurate to ~1e-13 over the parameter
//! ranges the DoE machinery uses.

use crate::{NumericError, Result};

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients).
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Errors
///
/// [`NumericError::InvalidArgument`] if `a <= 0` or `x < 0`;
/// [`NumericError::NoConvergence`] if the expansion stalls.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 {
        return Err(NumericError::invalid(format!(
            "gamma_p requires a > 0, x >= 0 (got a={a}, x={x})"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation converges quickly here.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                let ln_prefix = -x + a * x.ln() - ln_gamma(a);
                return Ok((sum * ln_prefix.exp()).clamp(0.0, 1.0));
            }
        }
        Err(NumericError::NoConvergence {
            routine: "gamma_p series",
        })
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        Ok(1.0 - gamma_q_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Errors
///
/// Same as [`gamma_p`].
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    Ok(1.0 - gamma_p(a, x)?)
}

fn gamma_q_cf(a: f64, x: f64) -> Result<f64> {
    // Modified Lentz's method on the continued fraction.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            let ln_prefix = -x + a * x.ln() - ln_gamma(a);
            return Ok((h * ln_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(NumericError::NoConvergence {
        routine: "gamma_q continued fraction",
    })
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Errors
///
/// [`NumericError::InvalidArgument`] if `a <= 0`, `b <= 0`, or
/// `x ∉ [0, 1]`; [`NumericError::NoConvergence`] if the continued
/// fraction stalls.
pub fn beta_inc(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(NumericError::invalid(format!(
            "beta_inc requires a, b > 0 (got a={a}, b={b})"
        )));
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(NumericError::invalid(format!(
            "beta_inc requires x in [0, 1], got {x}"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction in its
    // rapidly converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((front * beta_cf(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - front * beta_cf(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            return Ok(h);
        }
    }
    Err(NumericError::NoConvergence {
        routine: "beta_inc continued fraction",
    })
}

/// Error function `erf(x)`, computed from the incomplete gamma function.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x).expect("gamma_p(0.5, x²) is always valid");
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x > 0.0 {
        gamma_q(0.5, x * x).expect("gamma_q(0.5, x²) is always valid")
    } else {
        1.0 + gamma_p(0.5, x * x).expect("gamma_p(0.5, x²) is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let factorials = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in factorials.iter().enumerate() {
            let n = (i + 1) as f64;
            assert!(
                (ln_gamma(n) - f.ln()).abs() < 1e-12,
                "ln_gamma({n}) vs ln({f})"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x).unwrap() - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        assert_eq!(gamma_p(2.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            for x in [0.1, 1.0, 5.0, 20.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert!((p + q - 1.0).abs() < 1e-12, "a={a}, x={x}");
            }
        }
    }

    #[test]
    fn gamma_p_rejects_bad_args() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for (a, b, x) in [(2.0, 3.0, 0.4), (0.5, 0.5, 0.3), (5.0, 1.0, 0.7)] {
            let lhs = beta_inc(a, b, x).unwrap();
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x).unwrap();
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1,1) = x
        for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!((beta_inc(1.0, 1.0, x).unwrap() - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_inc_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry
        assert!((beta_inc(2.0, 2.0, 0.5).unwrap() - 0.5).abs() < 1e-12);
        // I_x(1, 2) = 1 - (1-x)^2
        let x = 0.3;
        assert!((beta_inc(1.0, 2.0, x).unwrap() - (1.0 - (1.0 - x) * (1.0 - x))).abs() < 1e-12);
    }

    #[test]
    fn beta_inc_rejects_bad_args() {
        assert!(beta_inc(-1.0, 1.0, 0.5).is_err());
        assert!(beta_inc(1.0, 0.0, 0.5).is_err());
        assert!(beta_inc(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(3.0) - 0.999_977_909_503_001_4).abs() < 1e-12);
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }
}
