//! Compressed-sparse-column (CSC) matrices.
//!
//! [`Csc`] is the storage format behind the sparse circuit engine: a
//! matrix is held as three arrays — `col_ptr` (length `n_cols + 1`),
//! `row_idx` and `values` (length `nnz`) — with the entries of column
//! `j` stored contiguously in `row_idx[col_ptr[j]..col_ptr[j + 1]]`,
//! sorted by ascending row index and with no duplicate rows.
//!
//! Construction is **deterministic**: [`Csc::from_triplets`] sorts the
//! input with a stable `(col, row)` key and sums duplicates in their
//! original insertion order, so the same triplet list always produces
//! bit-identical values regardless of how the caller generated it.
//!
//! The pattern (everything except `values`) is what the sparse LU's
//! symbolic analysis consumes; [`Csc::refresh_from_dense`] and
//! [`Csc::set_values`] let a caller reuse one pattern across many
//! numeric refactorisations.

use crate::matrix::Matrix;
use crate::{NumericError, Result};

/// A sparse matrix in compressed-sparse-column form.
///
/// # Example
///
/// ```
/// use ehsim_numeric::Csc;
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// // [2 0]
/// // [1 3]
/// let a = Csc::from_triplets(2, 2, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0)])?;
/// assert_eq!(a.nnz(), 3);
/// let y = a.matvec(&[1.0, 1.0])?;
/// assert_eq!(y, vec![2.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed in their insertion
    /// order, making the result deterministic for a given triplet list.
    ///
    /// # Errors
    ///
    /// [`NumericError::Dimension`] if the matrix would be empty or any
    /// triplet indexes out of range.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        Ok(Self::from_triplets_with_map(n_rows, n_cols, triplets)?.0)
    }

    /// Like [`Csc::from_triplets`], additionally returning, for each
    /// input triplet, the index of the value slot it was folded into —
    /// the map a caller needs to refresh `values` in `O(nnz)` without
    /// re-running construction.
    ///
    /// # Errors
    ///
    /// Same as [`Csc::from_triplets`].
    pub fn from_triplets_with_map(
        n_rows: usize,
        n_cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<(Self, Vec<usize>)> {
        if n_rows == 0 || n_cols == 0 {
            return Err(NumericError::dimension(
                "at least 1x1",
                format!("{n_rows}x{n_cols}"),
            ));
        }
        for &(r, c, _) in triplets {
            if r >= n_rows || c >= n_cols {
                return Err(NumericError::dimension(
                    format!("indices within {n_rows}x{n_cols}"),
                    format!("entry at ({r}, {c})"),
                ));
            }
        }
        // Stable sort by (col, row): duplicates stay in insertion order,
        // so the summation order below is deterministic.
        let mut order: Vec<usize> = (0..triplets.len()).collect();
        order.sort_by_key(|&i| (triplets[i].1, triplets[i].0));

        let mut col_ptr = vec![0usize; n_cols + 1];
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut slot_of = vec![0usize; triplets.len()];
        let mut last: Option<(usize, usize)> = None;
        for &i in &order {
            let (r, c, v) = triplets[i];
            if last == Some((c, r)) {
                // Duplicate of the previous emitted entry: fold into its
                // slot. Insertion order is preserved by the stable sort,
                // so the summation order is deterministic.
                let slot = values.len() - 1;
                values[slot] += v;
                slot_of[i] = slot;
                continue;
            }
            row_idx.push(r);
            values.push(v);
            slot_of[i] = values.len() - 1;
            col_ptr[c + 1] = row_idx.len();
            last = Some((c, r));
        }
        // Prefix-fill: columns with no entries inherit the running count.
        for c in 0..n_cols {
            if col_ptr[c + 1] < col_ptr[c] {
                col_ptr[c + 1] = col_ptr[c];
            }
        }
        Ok((
            Csc {
                n_rows,
                n_cols,
                col_ptr,
                row_idx,
                values,
            },
            slot_of,
        ))
    }

    /// Builds a sparse matrix holding the nonzero entries of `a`.
    pub fn from_dense(a: &Matrix) -> Self {
        let (n_rows, n_cols) = (a.rows(), a.cols());
        let mut col_ptr = vec![0usize; n_cols + 1];
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for j in 0..n_cols {
            for i in 0..n_rows {
                let v = a[(i, j)];
                if v != 0.0 {
                    row_idx.push(i);
                    values.push(v);
                }
            }
            col_ptr[j + 1] = row_idx.len();
        }
        Csc {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Re-reads `values` from a dense matrix at this pattern's
    /// positions.
    ///
    /// Returns `Ok(true)` when every nonzero of `a` lies inside the
    /// pattern (the refresh is then complete); `Ok(false)` when `a` has
    /// a nonzero outside the pattern, in which case `self` is left
    /// unchanged and the caller must rebuild the pattern from scratch.
    ///
    /// # Errors
    ///
    /// [`NumericError::Dimension`] if `a` has a different shape.
    pub fn refresh_from_dense(&mut self, a: &Matrix) -> Result<bool> {
        if a.rows() != self.n_rows || a.cols() != self.n_cols {
            return Err(NumericError::dimension(
                format!("{}x{}", self.n_rows, self.n_cols),
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        // Count nonzeros of `a` inside the pattern; compare with the
        // total nonzero count to detect out-of-pattern entries without
        // a per-entry membership probe.
        let mut covered = 0usize;
        let mut total = 0usize;
        for j in 0..self.n_cols {
            for i in 0..self.n_rows {
                if a[(i, j)] != 0.0 {
                    total += 1;
                }
            }
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                if a[(self.row_idx[k], j)] != 0.0 {
                    covered += 1;
                }
            }
        }
        if covered != total {
            return Ok(false);
        }
        for j in 0..self.n_cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                self.values[k] = a[(self.row_idx[k], j)];
            }
        }
        Ok(true)
    }

    /// Overwrites the value array, keeping the pattern.
    ///
    /// `new_values[k]` replaces the `k`-th stored value (the slot
    /// numbering returned by [`Csc::from_triplets_with_map`]).
    ///
    /// # Errors
    ///
    /// [`NumericError::Dimension`] if `new_values.len() != self.nnz()`.
    pub fn set_values(&mut self, new_values: &[f64]) -> Result<()> {
        if new_values.len() != self.values.len() {
            return Err(NumericError::dimension(
                format!("{} values", self.values.len()),
                format!("{}", new_values.len()),
            ));
        }
        self.values.copy_from_slice(new_values);
        Ok(())
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries (structural nonzeros).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The column-pointer array (`n_cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row-index array (`nnz` entries, ascending within a column).
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The stored values (`nnz` entries, parallel to [`Csc::row_idx`]).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether `other` has the identical sparsity pattern (shape,
    /// column pointers and row indices all equal).
    pub fn same_pattern(&self, other: &Csc) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.col_ptr == other.col_ptr
            && self.row_idx == other.row_idx
    }

    /// The stored value at `(row, col)`, or `0.0` when the position is
    /// not in the pattern.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.n_rows || col >= self.n_cols {
            return 0.0;
        }
        let seg = &self.row_idx[self.col_ptr[col]..self.col_ptr[col + 1]];
        match seg.binary_search(&row) {
            Ok(k) => self.values[self.col_ptr[col] + k],
            Err(_) => 0.0,
        }
    }

    /// Expands to a dense [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows, self.n_cols);
        for j in 0..self.n_cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                m[(self.row_idx[k], j)] += self.values[k];
            }
        }
        m
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// [`NumericError::Dimension`] if `x.len() != self.n_cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n_cols {
            return Err(NumericError::dimension(
                format!("vector of length {}", self.n_cols),
                format!("length {}", x.len()),
            ));
        }
        let mut y = vec![0.0; self.n_rows];
        for j in 0..self.n_cols {
            let xj = x[j];
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[k]] += self.values[k] * xj;
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sorted_and_deduplicated() {
        // Out-of-order insertion with a duplicate at (1, 0).
        let (a, map) = Csc::from_triplets_with_map(
            3,
            3,
            &[
                (2, 1, 5.0),
                (1, 0, 1.0),
                (0, 0, 4.0),
                (1, 0, 2.0),
                (0, 2, -1.0),
            ],
        )
        .unwrap();
        assert_eq!(a.col_ptr(), &[0, 2, 3, 4]);
        assert_eq!(a.row_idx(), &[0, 1, 2, 0]);
        assert_eq!(a.values(), &[4.0, 3.0, 5.0, -1.0]);
        // map: triplet 1 and 3 share the slot of (1, 0).
        assert_eq!(map[1], map[3]);
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.get(2, 2), 0.0);
    }

    #[test]
    fn empty_columns_get_valid_pointers() {
        let a = Csc::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        assert_eq!(a.col_ptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn out_of_range_triplet_is_rejected() {
        assert!(matches!(
            Csc::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(NumericError::Dimension { .. })
        ));
        assert!(matches!(
            Csc::from_triplets(0, 2, &[]),
            Err(NumericError::Dimension { .. })
        ));
    }

    #[test]
    fn dense_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]).unwrap();
        let a = Csc::from_dense(&m);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.to_dense(), m);
    }

    #[test]
    fn refresh_from_dense_detects_pattern_escape() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let mut a = Csc::from_dense(&m);
        let m2 = Matrix::from_rows(&[&[7.0, 0.0], &[0.0, 8.0]]).unwrap();
        assert!(a.refresh_from_dense(&m2).unwrap());
        assert_eq!(a.get(0, 0), 7.0);
        let m3 = Matrix::from_rows(&[&[7.0, 1.0], &[0.0, 8.0]]).unwrap();
        assert!(!a.refresh_from_dense(&m3).unwrap());
        // Unchanged on failure.
        assert_eq!(a.get(0, 0), 7.0);
        let wrong_shape = Matrix::zeros(3, 3);
        assert!(a.refresh_from_dense(&wrong_shape).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let m = Matrix::from_rows(&[&[1.0, -2.0, 0.0], &[0.0, 3.0, 4.0]]).unwrap();
        let a = Csc::from_dense(&m);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x).unwrap(), m.matvec(&x).unwrap());
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn set_values_keeps_pattern() {
        let mut a = Csc::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        a.set_values(&[5.0, 6.0]).unwrap();
        assert_eq!(a.get(1, 1), 6.0);
        assert!(a.set_values(&[1.0]).is_err());
    }
}
