//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Used by the D-optimal design search (information-matrix updates) and
//! anywhere a Gram matrix must be solved quickly.

use crate::matrix::Matrix;
use crate::{NumericError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Example
///
/// ```
/// use ehsim_numeric::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::factor(&a)?;
/// let x = ch.solve(&[2.0, 1.0])?;
/// assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility.
    ///
    /// # Errors
    ///
    /// * [`NumericError::Dimension`] if `a` is not square.
    /// * [`NumericError::NotPositiveDefinite`] if a diagonal pivot is not
    ///   strictly positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumericError::dimension(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NumericError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::dimension(
                format!("vector of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (numerically robust for large matrices).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        self.log_det().exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_reconstruct() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = (ch.l() * &ch.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn solve_spd_system() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]).unwrap();
        let x_true = [1.5, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        assert!(crate::vector::max_abs_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            NumericError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(NumericError::Dimension { .. })
        ));
    }

    #[test]
    fn determinant_matches_lu() {
        let a = Matrix::from_rows(&[&[9.0, 3.0, 1.0], &[3.0, 8.0, 2.0], &[1.0, 2.0, 7.0]]).unwrap();
        let ch_det = Cholesky::factor(&a).unwrap().det();
        let lu_det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((ch_det - lu_det).abs() < 1e-9 * lu_det.abs());
    }

    #[test]
    fn log_det_is_stable_for_small_entries() {
        let a = Matrix::diagonal(&[1e-8, 1e-8, 1e-8]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - 3.0 * (1e-8f64).ln()).abs() < 1e-9);
    }
}
