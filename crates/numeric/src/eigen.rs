//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used by the response-surface canonical analysis: the nature of a
//! fitted quadratic's stationary point (maximum / minimum / saddle) is
//! read off the eigenvalues of the quadratic-coefficient matrix `B`.

use crate::matrix::Matrix;
use crate::{NumericError, Result};

/// Eigenvalues and eigenvectors of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` corresponds to
    /// `values[j]`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix by the cyclic
/// Jacobi method.
///
/// Only the lower triangle is read; symmetry of the input is the
/// caller's responsibility.
///
/// # Errors
///
/// * [`NumericError::Dimension`] if `a` is not square.
/// * [`NumericError::NoConvergence`] if off-diagonal mass does not
///   vanish in 100 sweeps (practically impossible for symmetric input).
///
/// # Example
///
/// ```
/// use ehsim_numeric::{eigen::symmetric_eigen, Matrix};
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let e = symmetric_eigen(&a)?;
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(NumericError::dimension(
            "square matrix",
            format!("{}x{}", a.rows(), a.cols()),
        ));
    }
    let n = a.rows();
    // Work on a symmetrised copy.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
        }
        s
    };

    let scale = m.norm_frobenius().max(1e-300);
    for _sweep in 0..100 {
        if off(&m).sqrt() < 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if off(&m).sqrt() >= 1e-10 * scale {
        return Err(NumericError::NoConvergence {
            routine: "jacobi eigen",
        });
    }

    // Sort ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[(i, i)]
            .partial_cmp(&m[(j, j)])
            .expect("finite eigenvalues")
    });
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v = e.vectors.col(1);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10 || (v[0] + v[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 5.0, 0.5], &[1.0, 0.5, 3.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        // A = V Λ Vᵀ
        let lambda = Matrix::diagonal(&e.values);
        let rec = (&(&e.vectors * &lambda).unwrap() * &e.vectors.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
        // V orthonormal.
        let vtv = (&e.vectors.transpose() * &e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn indefinite_matrix_signs() {
        // Saddle: eigenvalues of opposite sign.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.values[0] < 0.0 && e.values[1] > 0.0);
    }

    #[test]
    fn rejects_non_square() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }
}
