//! KLU-style sparse LU: one-time symbolic analysis plus an `O(nnz)`
//! numeric refactorisation.
//!
//! The factorisation is split the way circuit simulators split it:
//!
//! 1. [`Symbolic::analyze`] runs once per sparsity *pattern*. It checks
//!    structural nonsingularity (maximum transversal), records the
//!    block-triangular block structure (Tarjan SCC), and chooses a
//!    fill-reducing column permutation `Q` ([`Ordering::Amd`]) or the
//!    identity ([`Ordering::Natural`]).
//! 2. [`SparseLu::factorize`] runs a left-looking Gilbert–Peierls
//!    factorisation `L·U = P·A·Q` with partial pivoting, recording the
//!    pivot sequence and the L/U structure.
//! 3. [`SparseLu::refactorize`] refactors **new values on the same
//!    pattern** by replaying the recorded structure and pivot sequence
//!    — no pivot search, no reachability analysis, no allocation: pure
//!    `O(nnz(L) + nnz(U))` arithmetic. This is what a transient circuit
//!    loop calls on every Newton iteration after the first.
//!
//! # Determinism and dense bit-compatibility
//!
//! Under [`Ordering::Natural`] the factorisation replicates the dense
//! [`Lu`](crate::Lu) arithmetic **bit for bit**: the pivot search scans
//! candidates in ascending current-position order with the same
//! strictly-greater rule and the same singularity threshold; column
//! updates are applied in ascending pivot order with the same
//! `m == 0.0` skip; and [`SparseLu::solve`] substitutes row-by-row in
//! the same loop order as the dense solve, via CSR mirrors of `L` and
//! `U`. Entries the dense code touches but the sparse structure does
//! not are exactly `±0.0` on the dense side; subtracting them can only
//! flip the sign of a zero accumulator, a corner the differential
//! battery pins empirically. Refactorisation reproduces a from-scratch
//! factorisation bit-for-bit whenever the fresh pivot search would
//! select the same pivot sequence (always true for strictly
//! column-diagonally-dominant values); otherwise it still yields a
//! valid factorisation with the frozen pivot order, as KLU does.

use crate::amd::{btf_blocks, max_transversal, min_degree_order};
use crate::csc::Csc;
use crate::matrix::Matrix;
use crate::{NumericError, Result};

/// Pivot magnitudes below this threshold are treated as singular (the
/// same threshold as the dense [`Lu`](crate::Lu)).
const SINGULAR_TOL: f64 = 1e-300;

/// Sentinel for "not yet pivoted".
const UNPIVOTED: usize = usize::MAX;

/// Column-ordering strategy for the symbolic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// No column permutation. Bit-identical to the dense LU.
    #[default]
    Natural,
    /// Minimum-degree fill-reducing permutation of `A + Aᵀ`.
    /// Deterministic, but not bit-identical to the dense LU.
    Amd,
}

/// Reusable symbolic analysis of a sparsity pattern.
///
/// # Example
///
/// ```
/// use ehsim_numeric::{Csc, Matrix, Symbolic, SparseLu, sparse_lu::Ordering};
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// let m = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let a = Csc::from_dense(&m);
/// let sym = Symbolic::analyze(&a, Ordering::Natural)?;
/// let lu = SparseLu::factorize(&sym, &a)?;
/// let x = lu.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Symbolic {
    n: usize,
    ordering: Ordering,
    /// Column permutation: working column `j` is original column `q[j]`.
    q: Vec<usize>,
    /// The analysed pattern (for refactorisation-time validation).
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    /// BTF block index of each column, blocks in topological order.
    block_of: Vec<usize>,
    n_blocks: usize,
}

impl Symbolic {
    /// Analyses the pattern of a square sparse matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericError::Dimension`] if `a` is not square.
    /// * [`NumericError::Singular`] if the pattern is structurally
    ///   singular (no permutation yields a zero-free diagonal).
    pub fn analyze(a: &Csc, ordering: Ordering) -> Result<Self> {
        if a.n_rows() != a.n_cols() {
            return Err(NumericError::dimension(
                "square matrix",
                format!("{}x{}", a.n_rows(), a.n_cols()),
            ));
        }
        let n = a.n_rows();
        let (row_of_col, size) = max_transversal(a)?;
        if size < n {
            return Err(NumericError::Singular);
        }
        let (block_of, n_blocks) = btf_blocks(a, &row_of_col)?;
        let q = match ordering {
            Ordering::Natural => (0..n).collect(),
            Ordering::Amd => min_degree_order(a)?,
        };
        Ok(Symbolic {
            n,
            ordering,
            q,
            col_ptr: a.col_ptr().to_vec(),
            row_idx: a.row_idx().to_vec(),
            block_of,
            n_blocks,
        })
    }

    /// Dimension of the analysed pattern.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The ordering strategy the analysis used.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// The column permutation `q`: working column `j` of the factored
    /// system is original column `q[j]`.
    pub fn col_perm(&self) -> &[usize] {
        &self.q
    }

    /// Number of diagonal blocks in the block-triangular form.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// BTF block index of each column (blocks numbered so that block
    /// `b` only couples into blocks `>= b`).
    pub fn block_of(&self) -> &[usize] {
        &self.block_of
    }

    /// Whether `a` has exactly the analysed pattern.
    pub fn matches_pattern(&self, a: &Csc) -> bool {
        a.n_rows() == self.n
            && a.n_cols() == self.n
            && a.col_ptr() == self.col_ptr.as_slice()
            && a.row_idx() == self.row_idx.as_slice()
    }
}

/// A sparse LU factorisation `L·U = P·A·Q` with a replayable pivot
/// sequence.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    q: Vec<usize>,
    // Strictly-lower L by pivot column; row indices are *original* rows.
    l_col_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    // Strictly-upper U by working column; row indices are pivot steps.
    u_col_ptr: Vec<usize>,
    u_steps: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// `prow[t]` = original row pivoted at step `t` (final position `t`).
    prow: Vec<usize>,
    /// `pinv[r]` = final position of original row `r`.
    pinv: Vec<usize>,
    sign: f64,
    // CSR mirrors (final-position rows) for dense-order substitution;
    // `*_from` index into `l_vals` / `u_vals`, so refactorisation never
    // has to rebuild them.
    lr_ptr: Vec<usize>,
    lr_col: Vec<usize>,
    lr_from: Vec<usize>,
    ur_ptr: Vec<usize>,
    ur_col: Vec<usize>,
    ur_from: Vec<usize>,
}

/// Scratch state for one left-looking factorisation pass.
struct Workspace {
    /// Dense accumulator, indexed by original row.
    x: Vec<f64>,
    /// Column stamp marking rows present in the current column's reach.
    stamp: Vec<usize>,
    /// Current position of each original row (dense-compatible pivoting).
    row_to_pos: Vec<usize>,
    pos_to_row: Vec<usize>,
    /// DFS stack for the reachability pass: (row, next L offset).
    dfs: Vec<(usize, usize)>,
}

impl SparseLu {
    /// Factors the values of `a` using a prior symbolic analysis of its
    /// pattern.
    ///
    /// # Errors
    ///
    /// * [`NumericError::InvalidArgument`] if `a`'s pattern differs
    ///   from the one `symbolic` analysed.
    /// * [`NumericError::Singular`] if a pivot underflows to zero (the
    ///   same threshold and scan rule as the dense LU).
    pub fn factorize(symbolic: &Symbolic, a: &Csc) -> Result<Self> {
        if !symbolic.matches_pattern(a) {
            return Err(NumericError::invalid(
                "matrix pattern does not match the symbolic analysis",
            ));
        }
        let n = symbolic.n;
        let mut lu = SparseLu {
            n,
            q: symbolic.q.clone(),
            l_col_ptr: Vec::with_capacity(n + 1),
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_col_ptr: Vec::with_capacity(n + 1),
            u_steps: Vec::new(),
            u_vals: Vec::new(),
            u_diag: vec![0.0; n],
            prow: vec![0; n],
            pinv: vec![UNPIVOTED; n],
            sign: 1.0,
            lr_ptr: Vec::new(),
            lr_col: Vec::new(),
            lr_from: Vec::new(),
            ur_ptr: Vec::new(),
            ur_col: Vec::new(),
            ur_from: Vec::new(),
        };
        let mut ws = Workspace {
            x: vec![0.0; n],
            stamp: vec![UNPIVOTED; n],
            row_to_pos: (0..n).collect(),
            pos_to_row: (0..n).collect(),
            dfs: Vec::new(),
        };
        lu.l_col_ptr.push(0);
        lu.u_col_ptr.push(0);
        let mut reach_pivoted: Vec<usize> = Vec::new();
        let mut reach_below: Vec<usize> = Vec::new();
        for j in 0..n {
            lu.factor_column(j, a, &mut ws, &mut reach_pivoted, &mut reach_below)?;
        }
        lu.build_csr_mirrors();
        Ok(lu)
    }

    /// Processes working column `j`: sparse triangular solve against the
    /// already-computed columns, dense-compatible pivot search, then
    /// appends the new L/U column.
    fn factor_column(
        &mut self,
        j: usize,
        a: &Csc,
        ws: &mut Workspace,
        reach_pivoted: &mut Vec<usize>,
        reach_below: &mut Vec<usize>,
    ) -> Result<()> {
        let col = self.q[j];
        reach_pivoted.clear();
        reach_below.clear();
        // Scatter column q[j] of A and walk the reachable set: a row
        // already pivoted at step t pulls in the rows of L's column t.
        for k in a.col_ptr()[col]..a.col_ptr()[col + 1] {
            let r = a.row_idx()[k];
            if ws.stamp[r] != j {
                ws.stamp[r] = j;
                ws.x[r] = a.values()[k];
                self.reach_from(r, j, ws, reach_pivoted, reach_below);
            } else {
                ws.x[r] = a.values()[k];
            }
        }
        // Updates in ascending pivot order: per target row this is the
        // exact accumulation sequence of the dense right-looking loop.
        reach_pivoted.sort_unstable();
        for &t in reach_pivoted.iter() {
            let xt = ws.x[self.prow[t]];
            for idx in self.l_col_ptr[t]..self.l_col_ptr[t + 1] {
                let m = self.l_vals[idx];
                if m == 0.0 {
                    continue;
                }
                ws.x[self.l_rows[idx]] -= m * xt;
            }
        }
        // Pivot search, replicating the dense scan bit-for-bit: start
        // from the value currently at position j, then take any strictly
        // larger magnitude, scanning in ascending current position.
        let r0 = ws.pos_to_row[j];
        let mut max = if ws.stamp[r0] == j {
            ws.x[r0].abs()
        } else {
            0.0
        };
        let mut p = j;
        reach_below.sort_unstable_by_key(|&r| ws.row_to_pos[r]);
        for &r in reach_below.iter() {
            let pos = ws.row_to_pos[r];
            if pos == j {
                continue; // already the initial candidate
            }
            let v = ws.x[r].abs();
            if v > max {
                max = v;
                p = pos;
            }
        }
        if max < SINGULAR_TOL || !max.is_finite() {
            return Err(NumericError::Singular);
        }
        if p != j {
            let rp = ws.pos_to_row[p];
            let rj = ws.pos_to_row[j];
            ws.pos_to_row.swap(p, j);
            ws.row_to_pos[rp] = j;
            ws.row_to_pos[rj] = p;
            self.sign = -self.sign;
        }
        let rp = ws.pos_to_row[j];
        self.pinv[rp] = j;
        self.prow[j] = rp;
        let pivot = ws.x[rp];
        self.u_diag[j] = pivot;
        // U column j: the pivoted part of the reach, ascending steps.
        for &t in reach_pivoted.iter() {
            self.u_steps.push(t);
            self.u_vals.push(ws.x[self.prow[t]]);
        }
        self.u_col_ptr.push(self.u_steps.len());
        // L column j: the sub-pivot part, divided through; stored in
        // ascending original-row order (deterministic, order-free
        // numerically because each target takes one update per column).
        reach_below.sort_unstable();
        for &r in reach_below.iter() {
            if r == rp {
                continue;
            }
            self.l_rows.push(r);
            self.l_vals.push(ws.x[r] / pivot);
        }
        self.l_col_ptr.push(self.l_rows.len());
        Ok(())
    }

    /// Depth-first reachability from row `r` through the structure of
    /// the already-computed L columns, stamping and zero-initialising
    /// newly reached rows.
    fn reach_from(
        &self,
        r: usize,
        j: usize,
        ws: &mut Workspace,
        reach_pivoted: &mut Vec<usize>,
        reach_below: &mut Vec<usize>,
    ) {
        // The caller has already stamped `r`.
        if self.pinv[r] == UNPIVOTED {
            reach_below.push(r);
            return;
        }
        reach_pivoted.push(self.pinv[r]);
        ws.dfs.clear();
        ws.dfs.push((self.pinv[r], self.l_col_ptr[self.pinv[r]]));
        while let Some(&(t, k)) = ws.dfs.last() {
            if k >= self.l_col_ptr[t + 1] {
                ws.dfs.pop();
                continue;
            }
            let top = ws.dfs.len() - 1;
            ws.dfs[top].1 = k + 1;
            let rr = self.l_rows[k];
            if ws.stamp[rr] == j {
                continue;
            }
            ws.stamp[rr] = j;
            ws.x[rr] = 0.0;
            if self.pinv[rr] == UNPIVOTED {
                reach_below.push(rr);
            } else {
                reach_pivoted.push(self.pinv[rr]);
                ws.dfs.push((self.pinv[rr], self.l_col_ptr[self.pinv[rr]]));
            }
        }
    }

    /// Refactors new values on the same pattern by replaying the
    /// recorded structure and pivot sequence — no pivot search, no
    /// reachability, `O(nnz)` arithmetic.
    ///
    /// Returns `true` when every multiplier stayed strictly below 1 in
    /// magnitude, i.e. each frozen pivot is still the strict maximum of
    /// its column among the eligible rows. In that case a from-scratch
    /// [`SparseLu::factorize`] on the same values would pick the same
    /// pivot sequence and the replay is **bit-identical** to it.
    /// Returns `false` when a fresh factorisation might pivot
    /// differently — the factorisation is still valid (KLU-style frozen
    /// pivots) but carries a growth factor up to the largest multiplier.
    ///
    /// # Errors
    ///
    /// * [`NumericError::InvalidArgument`] if `a`'s pattern differs
    ///   from the analysed pattern or `symbolic` disagrees with the
    ///   factorisation's shape/ordering.
    /// * [`NumericError::Singular`] if a frozen pivot underflows to
    ///   zero on the new values.
    pub fn refactorize(&mut self, symbolic: &Symbolic, a: &Csc) -> Result<bool> {
        if !symbolic.matches_pattern(a) || symbolic.n != self.n || symbolic.q != self.q {
            return Err(NumericError::invalid(
                "matrix pattern does not match the symbolic analysis",
            ));
        }
        let n = self.n;
        let mut x = vec![0.0; n];
        let mut stable = true;
        for j in 0..n {
            // Zero exactly the rows this column's recorded structure
            // touches, then scatter the new values over them.
            for k in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                x[self.prow[self.u_steps[k]]] = 0.0;
            }
            for k in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                x[self.l_rows[k]] = 0.0;
            }
            x[self.prow[j]] = 0.0;
            let col = self.q[j];
            for k in a.col_ptr()[col]..a.col_ptr()[col + 1] {
                x[a.row_idx()[k]] = a.values()[k];
            }
            // Replay the updates in the recorded (ascending) pivot order.
            for k in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                let t = self.u_steps[k];
                let xt = x[self.prow[t]];
                self.u_vals[k] = xt;
                for idx in self.l_col_ptr[t]..self.l_col_ptr[t + 1] {
                    let m = self.l_vals[idx];
                    if m == 0.0 {
                        continue;
                    }
                    x[self.l_rows[idx]] -= m * xt;
                }
            }
            let pivot = x[self.prow[j]];
            if pivot.abs() < SINGULAR_TOL || !pivot.is_finite() {
                return Err(NumericError::Singular);
            }
            self.u_diag[j] = pivot;
            for idx in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                let m = x[self.l_rows[idx]] / pivot;
                self.l_vals[idx] = m;
                // A multiplier at or above 1 means some eligible row now
                // matches or beats the frozen pivot; a fresh pivot
                // search could choose differently.
                if !(m.abs() < 1.0) {
                    stable = false;
                }
            }
        }
        Ok(stable)
    }

    /// Builds CSR (row-major) mirrors of L and U over final positions,
    /// so the solves can run in the dense row-by-row loop order. The
    /// `*_from` indirection into the value arrays survives
    /// refactorisation unchanged.
    fn build_csr_mirrors(&mut self) {
        let n = self.n;
        let transpose = |col_ptr: &[usize], rows_final: &dyn Fn(usize) -> usize| {
            let nnz = col_ptr[n];
            let mut ptr = vec![0usize; n + 1];
            for k in 0..nnz {
                ptr[rows_final(k) + 1] += 1;
            }
            for i in 0..n {
                ptr[i + 1] += ptr[i];
            }
            let mut fill = ptr.clone();
            let mut cols = vec![0usize; nnz];
            let mut from = vec![0usize; nnz];
            for j in 0..n {
                for k in col_ptr[j]..col_ptr[j + 1] {
                    let i = rows_final(k);
                    cols[fill[i]] = j;
                    from[fill[i]] = k;
                    fill[i] += 1;
                }
            }
            (ptr, cols, from)
        };
        let pinv = self.pinv.clone();
        let l_rows = self.l_rows.clone();
        let (lp, lc, lf) = transpose(&self.l_col_ptr, &|k: usize| pinv[l_rows[k]]);
        let u_steps = self.u_steps.clone();
        let (up, uc, uf) = transpose(&self.u_col_ptr, &|k: usize| u_steps[k]);
        self.lr_ptr = lp;
        self.lr_col = lc;
        self.lr_from = lf;
        self.ur_ptr = up;
        self.ur_col = uc;
        self.ur_from = uf;
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` and `U` combined, unit diagonal included —
    /// the quantity the fill-in bound (`nnz <= n^2`) speaks about.
    pub fn nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + 2 * self.n
    }

    /// The row permutation: row `i` of `P·A` is row `row_perm()[i]` of
    /// `A`, making `L·U == P·A·Q`.
    pub fn row_perm(&self) -> &[usize] {
        &self.prow
    }

    /// The column permutation `Q` as `q`: column `j` of `A·Q` is column
    /// `q[j]` of `A`.
    pub fn col_perm(&self) -> &[usize] {
        &self.q
    }

    /// The unit-lower-triangular factor as a dense matrix.
    pub fn l(&self) -> Matrix {
        let mut m = Matrix::identity(self.n);
        for j in 0..self.n {
            for k in self.l_col_ptr[j]..self.l_col_ptr[j + 1] {
                m[(self.pinv[self.l_rows[k]], j)] = self.l_vals[k];
            }
        }
        m
    }

    /// The upper-triangular factor as a dense matrix.
    pub fn u(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            m[(j, j)] = self.u_diag[j];
            for k in self.u_col_ptr[j]..self.u_col_ptr[j + 1] {
                m[(self.u_steps[k], j)] = self.u_vals[k];
            }
        }
        m
    }

    /// Determinant of the original matrix (pivot product times the
    /// parities of both permutations).
    pub fn det(&self) -> f64 {
        let mut d = self.sign * permutation_sign(&self.q);
        for &u in &self.u_diag {
            d *= u;
        }
        d
    }

    /// Solves `A x = b`, substituting in the dense loop order so that
    /// [`Ordering::Natural`] factorisations return bit-identical
    /// solutions to the dense LU.
    ///
    /// # Errors
    ///
    /// [`NumericError::Dimension`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericError::dimension(
                format!("vector of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        // Row permutation, then forward substitution with unit L, then
        // back substitution with U — row-oriented, ascending columns,
        // exactly the dense traversal over the stored structure.
        let mut x: Vec<f64> = self.prow.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for k in self.lr_ptr[i]..self.lr_ptr[i + 1] {
                acc -= self.l_vals[self.lr_from[k]] * x[self.lr_col[k]];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in self.ur_ptr[i]..self.ur_ptr[i + 1] {
                acc -= self.u_vals[self.ur_from[k]] * x[self.ur_col[k]];
            }
            x[i] = acc / self.u_diag[i];
        }
        // Undo the column permutation: x_original[q[j]] = y[j].
        let mut out = vec![0.0; n];
        for j in 0..n {
            out[self.q[j]] = x[j];
        }
        Ok(out)
    }
}

/// Parity of a permutation (`+1.0` even, `-1.0` odd) via cycle counting.
fn permutation_sign(perm: &[usize]) -> f64 {
    let n = perm.len();
    let mut seen = vec![false; n];
    let mut sign = 1.0;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut len = 0usize;
        let mut i = start;
        while !seen[i] {
            seen[i] = true;
            i = perm[i];
            len += 1;
        }
        if len % 2 == 0 {
            sign = -sign;
        }
    }
    sign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::Lu;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn factor_both(m: &Matrix) -> (Lu, SparseLu, Csc) {
        let a = Csc::from_dense(m);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        let sparse = SparseLu::factorize(&sym, &a).unwrap();
        (Lu::factor(m).unwrap(), sparse, a)
    }

    #[test]
    fn natural_matches_dense_bits_with_pivoting() {
        // Forces a row swap (zero leading entry) plus fill-in.
        let m = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, 0.5, 0.0], &[1.0, 0.0, 4.0]]).unwrap();
        let (dense, sparse, _) = factor_both(&m);
        assert_eq!(dense.permutation(), sparse.row_perm());
        let b = [1.0, -2.0, 0.5];
        assert_eq!(
            bits(&dense.solve(&b).unwrap()),
            bits(&sparse.solve(&b).unwrap())
        );
        assert!((dense.det() - sparse.det()).abs() <= 1e-15 * dense.det().abs());
    }

    #[test]
    fn refactorize_matches_fresh_bits() {
        let m =
            Matrix::from_rows(&[&[10.0, 1.0, 0.0], &[2.0, 12.0, 3.0], &[0.0, 1.0, 9.0]]).unwrap();
        let a = Csc::from_dense(&m);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        let mut lu = SparseLu::factorize(&sym, &a).unwrap();
        // New values, same pattern, still diagonally dominant.
        let m2 = Matrix::from_rows(&[&[20.0, -1.0, 0.0], &[3.0, 15.0, -2.0], &[0.0, 4.0, 11.0]])
            .unwrap();
        let a2 = Csc::from_dense(&m2);
        assert!(sym.matches_pattern(&a2));
        // Diagonally dominant values keep every multiplier below 1, so
        // the replay must report a stable (fresh-equivalent) pivot order.
        assert!(lu.refactorize(&sym, &a2).unwrap());
        let fresh = SparseLu::factorize(&sym, &a2).unwrap();
        let b = [0.3, 1.7, -2.2];
        assert_eq!(
            bits(&lu.solve(&b).unwrap()),
            bits(&fresh.solve(&b).unwrap())
        );
        // And both match dense on the new values.
        let dense = Lu::factor(&m2).unwrap();
        assert_eq!(
            bits(&dense.solve(&b).unwrap()),
            bits(&lu.solve(&b).unwrap())
        );
    }

    #[test]
    fn amd_solves_to_tolerance() {
        // Arrow matrix: worst case for natural order, best for AMD.
        let n = 8;
        let m = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else if i == 0 || j == 0 {
                1.0
            } else {
                0.0
            }
        });
        let a = Csc::from_dense(&m);
        let sym = Symbolic::analyze(&a, Ordering::Amd).unwrap();
        let lu = SparseLu::factorize(&sym, &a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b = m.matvec(&x_true).unwrap();
        let x = lu.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
        // Residual check of the factor product.
        let pa_q = {
            let mut w = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    w[(i, j)] = m[(lu.row_perm()[i], lu.col_perm()[j])];
                }
            }
            w
        };
        let prod = (&lu.l() * &lu.u()).unwrap();
        assert!(prod.max_abs_diff(&pa_q).unwrap() < 1e-9);
    }

    #[test]
    fn structurally_singular_is_typed_error() {
        // Empty column 1.
        let a = Csc::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(
            Symbolic::analyze(&a, Ordering::Natural).unwrap_err(),
            NumericError::Singular
        );
    }

    #[test]
    fn numerically_singular_is_typed_error() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let a = Csc::from_dense(&m);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        assert_eq!(
            SparseLu::factorize(&sym, &a).unwrap_err(),
            NumericError::Singular
        );
    }

    #[test]
    fn pattern_mismatch_is_rejected() {
        let a = Csc::from_dense(&Matrix::identity(2));
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        let other = Csc::from_dense(&Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap());
        assert!(SparseLu::factorize(&sym, &other).is_err());
        let mut lu = SparseLu::factorize(&sym, &a).unwrap();
        assert!(lu.refactorize(&sym, &other).is_err());
    }

    #[test]
    fn btf_info_exposed() {
        let m = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[1.0, 2.0, 0.0], &[0.0, 1.0, 3.0]]).unwrap();
        let a = Csc::from_dense(&m);
        let sym = Symbolic::analyze(&a, Ordering::Natural).unwrap();
        assert_eq!(sym.n_blocks(), 3);
        assert_eq!(sym.block_of().len(), 3);
    }
}
