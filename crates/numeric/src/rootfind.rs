//! Scalar root finding: bisection, Brent's method, and safeguarded Newton.
//!
//! Used for distribution quantiles (inverting CDFs), event location in the
//! linearized state-space engine, and impedance-matching calculations in
//! the harvester model.

use crate::{NumericError, Result};

/// Maximum iterations for the bracketing methods.
const MAX_ITER: usize = 200;

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// # Errors
///
/// * [`NumericError::InvalidArgument`] if `f(a)` and `f(b)` do not bracket
///   a root (same sign) or the interval is malformed.
/// * [`NumericError::NoConvergence`] if the tolerance is not reached in
///   200 iterations (practically impossible for sane tolerances).
pub fn bisect(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !(a < b) {
        return Err(NumericError::invalid(format!("bad interval [{a}, {b}]")));
    }
    let (mut lo, mut hi) = (a, b);
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(NumericError::invalid(format!(
            "f({a}) and f({b}) have the same sign"
        )));
    }
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if flo * fmid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    Err(NumericError::NoConvergence { routine: "bisect" })
}

/// Finds a root of `f` in `[a, b]` using Brent's method (inverse quadratic
/// interpolation with bisection fallback).
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn brent(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !(a < b) {
        return Err(NumericError::invalid(format!("bad interval [{a}, {b}]")));
    }
    let (mut xa, mut xb) = (a, b);
    let mut fa = f(xa);
    let mut fb = f(xb);
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa * fb > 0.0 {
        return Err(NumericError::invalid(format!(
            "f({a}) and f({b}) have the same sign"
        )));
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut d = xb - xa;
    let mut e = d;

    for _ in 0..MAX_ITER {
        if fb.abs() > fc.abs() {
            // Ensure b is the best approximation.
            xa = xb;
            xb = xc;
            xc = xa;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * xb.abs() + 0.5 * tol;
        let xm = 0.5 * (xc - xb);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(xb);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation.
            let s = fb / fa;
            let (mut p, mut q);
            if xa == xc {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (xb - xa) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            if 2.0 * p < (3.0 * xm * q - (tol1 * q).abs()).min((e * q).abs()) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        xa = xb;
        fa = fb;
        if d.abs() > tol1 {
            xb += d;
        } else {
            xb += tol1.copysign(xm);
        }
        fb = f(xb);
        if (fb > 0.0) == (fc > 0.0) {
            xc = xa;
            fc = fa;
            d = xb - xa;
            e = d;
        }
    }
    Err(NumericError::NoConvergence { routine: "brent" })
}

/// Safeguarded Newton iteration: falls back to bisection when the Newton
/// step leaves the bracket `[a, b]`.
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn newton_bracketed(
    f: impl Fn(f64) -> f64,
    df: impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<f64> {
    if !(a < b) {
        return Err(NumericError::invalid(format!("bad interval [{a}, {b}]")));
    }
    let (mut lo, mut hi) = (a, b);
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(NumericError::invalid(format!(
            "f({a}) and f({b}) have the same sign"
        )));
    }
    // Orient so f(lo) < 0.
    if flo > 0.0 {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut x = 0.5 * (lo + hi);
    for _ in 0..MAX_ITER {
        let fx = f(x);
        if fx.abs() == 0.0 {
            return Ok(x);
        }
        if fx < 0.0 {
            lo = x;
        } else {
            hi = x;
        }
        let dfx = df(x);
        let newton_x = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        let inside = if lo < hi {
            newton_x > lo && newton_x < hi
        } else {
            newton_x > hi && newton_x < lo
        };
        let next = if newton_x.is_finite() && inside {
            newton_x
        } else {
            0.5 * (lo + hi)
        };
        if (next - x).abs() < tol {
            return Ok(next);
        }
        x = next;
    }
    Err(NumericError::NoConvergence {
        routine: "newton_bracketed",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_sqrt2_faster_than_bisect_tolerance() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn brent_transcendental() {
        // x = cos(x) has root ~0.7390851332151607
        let r = brent(|x| x - x.cos(), 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.7390851332151607).abs() < 1e-12);
    }

    #[test]
    fn newton_with_derivative() {
        let r = newton_bracketed(|x| x * x - 2.0, |x| 2.0 * x, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn endpoints_that_are_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn non_bracketing_is_rejected() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_err());
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_err());
        assert!(newton_bracketed(|x| x * x + 1.0, |x| 2.0 * x, -1.0, 1.0, 1e-12).is_err());
    }

    #[test]
    fn malformed_interval_is_rejected() {
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12).is_err());
        assert!(brent(|x| x, 1.0, 1.0, 1e-12).is_err());
    }

    #[test]
    fn brent_steep_function() {
        // Root of x^9 near 0: hard for naive interpolation.
        let r = brent(|x| x.powi(9) - 1e-9, 0.0, 2.0, 1e-15).unwrap();
        assert!((r - 1e-1).abs() < 1e-6);
    }
}
