//! LU factorisation with partial pivoting.
//!
//! This is the workhorse of the Newton–Raphson circuit engine: every NR
//! iteration refactors the Jacobian and back-substitutes — exactly the
//! cost profile the DATE'13 paper identifies as the bottleneck of
//! traditional analogue simulation.

use crate::matrix::Matrix;
use crate::{NumericError, Result};

/// An LU factorisation `P * A = L * U` with partial pivoting.
///
/// # Example
///
/// ```
/// use ehsim_numeric::{Lu, Matrix};
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
    sign: f64,
}

/// Pivot magnitudes below this threshold are treated as singular.
const SINGULAR_TOL: f64 = 1e-300;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericError::Dimension`] if `a` is not square.
    /// * [`NumericError::Singular`] if a pivot underflows to zero.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumericError::dimension(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < SINGULAR_TOL || !max.is_finite() {
                return Err(NumericError::Singular);
            }
            if p != k {
                lu.swap_rows(p, k);
                piv.swap(p, k);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let upd = m * lu[(k, j)];
                    lu[(i, j)] -= upd;
                }
            }
        }
        Ok(Lu { lu, piv, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// The unit-lower-triangular factor `L`.
    pub fn l(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if j < i {
                self.lu[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// The upper-triangular factor `U`.
    pub fn u(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.lu[(i, j)] } else { 0.0 })
    }

    /// The row permutation `p` such that row `i` of `P·A` is row `p[i]`
    /// of `A`, making `L·U == P·A`.
    pub fn permutation(&self) -> &[usize] {
        &self.piv
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::dimension(
                format!("vector of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        // Apply the row permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(NumericError::dimension(
                format!("{n} rows"),
                format!("{} rows", b.rows()),
            ));
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from the per-column solves (cannot normally occur
    /// once factoring succeeded).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// One-shot convenience: solves `A x = b` by factoring `a`.
///
/// # Errors
///
/// Same as [`Lu::factor`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        crate::vector::max_abs_diff(&ax, b)
    }

    #[test]
    fn solve_small_system() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]).unwrap();
        let b = [6.0, 15.0, 25.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(Lu::factor(&a).unwrap_err(), NumericError::Singular);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(NumericError::Dimension { .. })
        ));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_pivots() {
        // This matrix needs a row swap; det must still be correct.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = (&a * &inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]).unwrap();
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((x[(1, 1)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn larger_random_like_system() {
        // Deterministic pseudo-random fill with a diagonally dominant bump
        // to guarantee solvability.
        let n = 25;
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17 + 7) % 13) as f64 - 6.0;
            if i == j {
                v + 40.0
            } else {
                v
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(crate::vector::max_abs_diff(&x, &x_true) < 1e-9);
    }
}
