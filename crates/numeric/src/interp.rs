//! Piecewise-linear interpolation tables.
//!
//! Used for the tuning-frequency-vs-actuator-position curve, converter
//! efficiency maps, and the harvester's calibrated power map.

use crate::{NumericError, Result};

/// A 1-D piecewise-linear lookup table over strictly increasing knots.
///
/// Evaluation outside the knot range clamps to the boundary values, which
/// is the physically sensible behaviour for device curves.
///
/// # Example
///
/// ```
/// use ehsim_numeric::LinearTable;
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// let eff = LinearTable::new(vec![0.0, 1.0, 2.0], vec![0.5, 0.9, 0.8])?;
/// assert!((eff.eval(0.5) - 0.7).abs() < 1e-12);
/// assert_eq!(eff.eval(-1.0), 0.5); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearTable {
    /// Builds a table from knot positions and values.
    ///
    /// # Errors
    ///
    /// * [`NumericError::Dimension`] if the vectors differ in length or
    ///   are empty.
    /// * [`NumericError::InvalidArgument`] if `xs` is not strictly
    ///   increasing or contains non-finite values.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(NumericError::dimension(
                "equal-length non-empty knot vectors",
                format!("xs: {}, ys: {}", xs.len(), ys.len()),
            ));
        }
        for w in xs.windows(2) {
            if !(w[0] < w[1]) {
                return Err(NumericError::invalid(format!(
                    "knots must be strictly increasing, found {} then {}",
                    w[0], w[1]
                )));
            }
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumericError::invalid("knots must be finite"));
        }
        Ok(LinearTable { xs, ys })
    }

    /// Builds a table by sampling `f` at `n` evenly spaced points on
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`NumericError::InvalidArgument`] if `n < 2` or `lo >= hi`.
    pub fn from_fn(lo: f64, hi: f64, n: usize, f: impl Fn(f64) -> f64) -> Result<Self> {
        if n < 2 {
            return Err(NumericError::invalid("need at least 2 sample points"));
        }
        if !(lo < hi) {
            return Err(NumericError::invalid(format!("bad range [{lo}, {hi}]")));
        }
        let xs: Vec<f64> = (0..n)
            .map(|i| lo + (hi - lo) * (i as f64) / ((n - 1) as f64))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        LinearTable::new(xs, ys)
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the table has no knots (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Knot positions.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }

    /// Knot values.
    pub fn values(&self) -> &[f64] {
        &self.ys
    }

    /// Domain `(min, max)` of the knots.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("non-empty"))
    }

    /// Evaluates the table at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let idx = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite knots"))
        {
            Ok(i) => return self.ys[i],
            Err(i) => i,
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Inverse lookup: finds `x` with `eval(x) == y` assuming the values
    /// are monotonically increasing.
    ///
    /// # Errors
    ///
    /// * [`NumericError::InvalidArgument`] if the table values are not
    ///   non-decreasing or `y` lies outside the value range.
    pub fn eval_inverse(&self, y: f64) -> Result<f64> {
        for w in self.ys.windows(2) {
            if w[0] > w[1] {
                return Err(NumericError::invalid(
                    "inverse lookup requires non-decreasing values",
                ));
            }
        }
        let n = self.ys.len();
        if y < self.ys[0] || y > self.ys[n - 1] {
            return Err(NumericError::invalid(format!(
                "value {y} outside table range [{}, {}]",
                self.ys[0],
                self.ys[n - 1]
            )));
        }
        for i in 1..n {
            if y <= self.ys[i] {
                let (y0, y1) = (self.ys[i - 1], self.ys[i]);
                let (x0, x1) = (self.xs[i - 1], self.xs[i]);
                if y1 == y0 {
                    return Ok(x0);
                }
                return Ok(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
            }
        }
        Ok(*self.xs.last().expect("non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_interpolates_and_clamps() {
        let t = LinearTable::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert_eq!(t.eval(1.0), 2.0);
        assert_eq!(t.eval(-5.0), 0.0);
        assert_eq!(t.eval(5.0), 4.0);
    }

    #[test]
    fn eval_hits_knots_exactly() {
        let t = LinearTable::new(vec![0.0, 1.0, 3.0], vec![1.0, -1.0, 5.0]).unwrap();
        assert_eq!(t.eval(0.0), 1.0);
        assert_eq!(t.eval(1.0), -1.0);
        assert_eq!(t.eval(3.0), 5.0);
    }

    #[test]
    fn rejects_unsorted_and_ragged() {
        assert!(LinearTable::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![0.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![], vec![]).is_err());
        assert!(LinearTable::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn from_fn_samples_evenly() {
        let t = LinearTable::from_fn(0.0, 1.0, 11, |x| x * x).unwrap();
        assert_eq!(t.len(), 11);
        // The table is exact at the sample points.
        assert!((t.eval(0.5) - 0.25).abs() < 1e-12);
        // Between samples there is linearisation error; for f'' = 2 the
        // midpoint error is exactly (h/2)^2 = 0.0025.
        assert!((t.eval(0.55) - 0.3025).abs() <= 0.0025 + 1e-12);
    }

    #[test]
    fn inverse_lookup() {
        let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![10.0, 20.0, 40.0]).unwrap();
        assert!((t.eval_inverse(15.0).unwrap() - 0.5).abs() < 1e-12);
        assert!((t.eval_inverse(30.0).unwrap() - 1.5).abs() < 1e-12);
        assert!(t.eval_inverse(5.0).is_err());
        assert!(t.eval_inverse(50.0).is_err());
    }

    #[test]
    fn inverse_rejects_non_monotone() {
        let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![0.0, 5.0, 3.0]).unwrap();
        assert!(t.eval_inverse(2.0).is_err());
    }

    #[test]
    fn domain_reports_range() {
        let t = LinearTable::new(vec![-1.0, 4.0], vec![0.0, 1.0]).unwrap();
        assert_eq!(t.domain(), (-1.0, 4.0));
    }
}
