//! Householder QR factorisation and least-squares solving.
//!
//! The DoE crate fits response-surface models by ordinary least squares;
//! QR is the numerically sound way to do that (forming the normal
//! equations squares the condition number). The factorisation also
//! exposes `(XᵀX)⁻¹ = R⁻¹R⁻ᵀ`, needed for coefficient covariance,
//! leverage, and PRESS statistics.

use crate::matrix::Matrix;
use crate::{NumericError, Result};

/// A Householder QR factorisation of an `m x n` matrix with `m >= n`.
///
/// # Example
///
/// ```
/// use ehsim_numeric::{Matrix, Qr};
///
/// # fn main() -> Result<(), ehsim_numeric::NumericError> {
/// // Fit y = a + b*x to three points on the line y = 1 + 2x.
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let qr = Qr::factor(&x)?;
/// let beta = qr.solve_least_squares(&[1.0, 3.0, 5.0])?;
/// assert!((beta[0] - 1.0).abs() < 1e-12);
/// assert!((beta[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: R in the upper triangle, Householder vectors below.
    qr: Matrix,
    /// Householder scalars `beta_k`.
    betas: Vec<f64>,
}

impl Qr {
    /// Factors `a` (must have at least as many rows as columns).
    ///
    /// # Errors
    ///
    /// * [`NumericError::Dimension`] if `a.rows() < a.cols()`.
    /// * [`NumericError::Singular`] if a column is (numerically) linearly
    ///   dependent on the previous ones, i.e. the model matrix is
    ///   rank-deficient.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(NumericError::dimension("rows >= cols", format!("{m}x{n}")));
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        let scale = a.norm_max().max(1.0);

        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-13 * scale {
                return Err(NumericError::Singular);
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalise so v[k] == 1 (stored implicitly).
            let mut vtv = 1.0;
            for i in (k + 1)..m {
                let vi = qr[(i, k)] / v0;
                qr[(i, k)] = vi;
                vtv += vi * vi;
            }
            betas[k] = 2.0 / vtv;
            qr[(k, k)] = alpha;

            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let tau = betas[k] * dot;
                qr[(k, j)] -= tau;
                for i in (k + 1)..m {
                    let upd = tau * qr[(i, k)];
                    qr[(i, j)] -= upd;
                }
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to a vector in place.
    fn apply_qt(&self, x: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            let mut dot = x[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * x[i];
            }
            let tau = self.betas[k] * dot;
            x[k] -= tau;
            for i in (k + 1)..m {
                x[i] -= tau * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ||A x - b||₂`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `b.len() != self.rows()`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(NumericError::dimension(
                format!("vector of length {m}"),
                format!("length {}", b.len()),
            ));
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on the leading n x n triangle.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            x[i] = acc / self.qr[(i, i)];
        }
        Ok(x)
    }

    /// Applies `Q` to a vector in place (reflectors in reverse order).
    fn apply_q(&self, x: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in (0..n).rev() {
            let mut dot = x[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * x[i];
            }
            let tau = self.betas[k] * dot;
            x[k] -= tau;
            for i in (k + 1)..m {
                x[i] -= tau * self.qr[(i, k)];
            }
        }
    }

    /// Returns the thin orthonormal factor `Q` (size `m x n`), so that
    /// `Q·R` reconstructs the factored matrix.
    pub fn q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            let mut e = vec![0.0; m];
            e[j] = 1.0;
            self.apply_q(&mut e);
            for i in 0..m {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Returns the upper-triangular factor `R` (size `n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Computes `(AᵀA)⁻¹ = R⁻¹ R⁻ᵀ`.
    ///
    /// This is the unscaled coefficient covariance matrix of an OLS fit.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Singular`] if `R` has a zero diagonal entry
    /// (cannot occur when `factor` succeeded).
    pub fn xtx_inverse(&self) -> Result<Matrix> {
        let n = self.qr.cols();
        // Solve R * Z = I  (Z = R^{-1}) by back substitution per column.
        let mut z = Matrix::zeros(n, n);
        for col in 0..n {
            for i in (0..=col).rev() {
                let mut acc = if i == col { 1.0 } else { 0.0 };
                for j in (i + 1)..=col {
                    acc -= self.qr[(i, j)] * z[(j, col)];
                }
                let d = self.qr[(i, i)];
                if d == 0.0 {
                    return Err(NumericError::Singular);
                }
                z[(i, col)] = acc / d;
            }
        }
        // (X^T X)^{-1} = Z * Z^T
        &z * &z.transpose()
    }

    /// Residual sum of squares for the given right-hand side, computed
    /// from the tail of `Qᵀ b` without forming the fitted values.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Dimension`] if `b.len() != self.rows()`.
    pub fn residual_sum_of_squares(&self, b: &[f64]) -> Result<f64> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(NumericError::dimension(
                format!("vector of length {m}"),
                format!("length {}", b.len()),
            ));
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        Ok(y[n..].iter().map(|v| v * v).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve_least_squares(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_regression() {
        // y = 2 + 3x with exact data: residual must vanish.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let qr = Qr::factor(&a).unwrap();
        let beta = qr.solve_least_squares(&b).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-12);
        assert!((beta[1] - 3.0).abs() < 1e-12);
        assert!(qr.residual_sum_of_squares(&b).unwrap() < 1e-20);
    }

    #[test]
    fn least_squares_minimises_residual() {
        // Noisy data: LS solution must beat small perturbations of itself.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [0.1, 0.9, 2.2, 2.8];
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let rss = |x: &[f64]| -> f64 {
            let ax = a.matvec(x).unwrap();
            ax.iter()
                .zip(b.iter())
                .map(|(p, q)| (p - q) * (p - q))
                .sum()
        };
        let base = rss(&x);
        for d in [[1e-3, 0.0], [0.0, 1e-3], [-1e-3, 1e-3]] {
            let perturbed = [x[0] + d[0], x[1] + d[1]];
            assert!(rss(&perturbed) >= base);
        }
        assert!((qr.residual_sum_of_squares(&b).unwrap() - base).abs() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        // Columns 1, i², sqrt(i+1) are linearly independent over 6 rows.
        let a = Matrix::from_fn(6, 3, |i, j| match j {
            0 => 1.0,
            1 => (i * i) as f64,
            _ => ((i + 1) as f64).sqrt(),
        });
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // A^T A == R^T R
        let ata = (&a.transpose() * &a).unwrap();
        let rtr = (&r.transpose() * &r).unwrap();
        assert!(ata.max_abs_diff(&rtr).unwrap() < 1e-9 * ata.norm_max());
    }

    #[test]
    fn xtx_inverse_matches_lu_inverse() {
        let a = Matrix::from_fn(8, 3, |i, j| {
            ((i * 7 + j * 3 + 1) % 5) as f64 + if i == j { 3.0 } else { 0.0 }
        });
        let qr = Qr::factor(&a).unwrap();
        let via_qr = qr.xtx_inverse().unwrap();
        let ata = (&a.transpose() * &a).unwrap();
        let via_lu = crate::lu::Lu::factor(&ata).unwrap().inverse().unwrap();
        assert!(via_qr.max_abs_diff(&via_lu).unwrap() < 1e-8 * via_lu.norm_max());
    }

    #[test]
    fn rank_deficient_is_detected() {
        // Second column is 2x the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(Qr::factor(&a).unwrap_err(), NumericError::Singular);
    }

    #[test]
    fn underdetermined_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Qr::factor(&a),
            Err(NumericError::Dimension { .. })
        ));
    }
}
