//! Free functions on `&[f64]` slices.
//!
//! The circuit engines keep their states in plain `Vec<f64>` buffers and
//! use these kernels in their inner loops, so they panic on dimension
//! mismatch (callers own the invariant) rather than returning `Result`.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (maximum absolute entry); `0.0` for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `y += alpha * x`, in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Elementwise `a - b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Elementwise `a + b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Maximum absolute elementwise difference.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b.iter())
        .fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// Linear interpolation `a + t * (b - a)` applied elementwise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x + t * (y - x))
        .collect()
}

/// Whether every entry is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 2.0]), 3.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [1.0, 20.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![0.5, 15.0]);
    }

    #[test]
    fn finiteness_check() {
        assert!(all_finite(&[1.0, -2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
