//! Fill-reducing orderings and structural analysis for sparse LU.
//!
//! Three classic structural algorithms, all operating on a [`Csc`]
//! pattern (values are ignored):
//!
//! * [`min_degree_order`] — a greedy minimum-degree ordering of the
//!   symmetrised pattern `A + Aᵀ`, the AMD-style fill-reducing column
//!   permutation used by [`crate::sparse_lu::Ordering::Amd`]. Ties are
//!   broken by smallest node index so the ordering is deterministic.
//! * [`max_transversal`] — a maximum matching of rows to columns
//!   (MC21-style augmenting paths). A full transversal proves the
//!   matrix is structurally nonsingular; a deficient one means no
//!   permutation can produce a zero-free diagonal.
//! * [`btf_blocks`] — Tarjan's strongly-connected-components algorithm
//!   on the transversal-permuted pattern, yielding the block-triangular
//!   form (BTF) block structure of the matrix.
//!
//! All three are deterministic: identical inputs produce identical
//! permutations, with no randomised tie-breaking anywhere.

use crate::csc::Csc;
use crate::{NumericError, Result};
use std::collections::BTreeSet;

/// Greedy minimum-degree ordering of the symmetrised pattern.
///
/// Returns a permutation `q` such that eliminating columns in the order
/// `q[0], q[1], …` tends to minimise fill-in. The algorithm is the
/// textbook quotient-free variant: maintain the adjacency of
/// `A + Aᵀ` (off-diagonal), repeatedly eliminate the minimum-degree
/// node (smallest index on ties), and connect its neighbours into a
/// clique. Quadratic in the worst case, which is fine at circuit sizes.
///
/// # Errors
///
/// [`NumericError::Dimension`] if `a` is not square.
pub fn min_degree_order(a: &Csc) -> Result<Vec<usize>> {
    let n = square_dim(a)?;
    // Symmetrised off-diagonal adjacency.
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for j in 0..n {
        for k in a.col_ptr()[j]..a.col_ptr()[j + 1] {
            let i = a.row_idx()[k];
            if i != j {
                adj[i].insert(j);
                adj[j].insert(i);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Minimum degree, smallest index on ties.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best = v;
                best_deg = adj[v].len();
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        // Clique the neighbourhood, then detach v.
        let neigh: Vec<usize> = adj[v].iter().copied().collect();
        for &x in &neigh {
            adj[x].remove(&v);
        }
        for (i, &x) in neigh.iter().enumerate() {
            for &y in &neigh[i + 1..] {
                adj[x].insert(y);
                adj[y].insert(x);
            }
        }
        adj[v].clear();
    }
    Ok(order)
}

/// Maximum transversal (row-to-column matching) by augmenting paths.
///
/// Returns `(row_of_col, size)`: `row_of_col[j]` is the row matched to
/// column `j` (or `usize::MAX` if column `j` is unmatched) and `size`
/// is the matching cardinality. `size == n` proves structural
/// nonsingularity.
///
/// # Errors
///
/// [`NumericError::Dimension`] if `a` is not square.
pub fn max_transversal(a: &Csc) -> Result<(Vec<usize>, usize)> {
    let n = square_dim(a)?;
    let mut row_of_col = vec![usize::MAX; n];
    let mut col_of_row = vec![usize::MAX; n];
    let mut size = 0usize;
    let mut visited = vec![usize::MAX; n]; // per-pass row stamp
    for j in 0..n {
        if augment(a, j, j, &mut row_of_col, &mut col_of_row, &mut visited) {
            size += 1;
        }
    }
    Ok((row_of_col, size))
}

/// One augmenting-path pass from column `j` (depth-first, iterative).
fn augment(
    a: &Csc,
    j: usize,
    stamp: usize,
    row_of_col: &mut [usize],
    col_of_row: &mut [usize],
    visited: &mut [usize],
) -> bool {
    // Stack of (column, next entry offset within the column).
    let mut stack: Vec<(usize, usize)> = vec![(j, a.col_ptr()[j])];
    while let Some(&(c, k)) = stack.last() {
        if k >= a.col_ptr()[c + 1] {
            // Column exhausted: it keeps its old match; the parent
            // resumes scanning from where it left off.
            stack.pop();
            continue;
        }
        let top = stack.len() - 1;
        stack[top].1 = k + 1;
        let r = a.row_idx()[k];
        if visited[r] == stamp {
            continue;
        }
        visited[r] = stamp;
        if col_of_row[r] == usize::MAX {
            // Free row: unwind the stack, flipping the path.
            let mut row = r;
            while let Some((c2, _)) = stack.pop() {
                let prev = row_of_col[c2];
                row_of_col[c2] = row;
                col_of_row[row] = c2;
                row = prev;
                if row == usize::MAX {
                    break;
                }
            }
            return true;
        }
        // Occupied row: try to re-match its column deeper.
        let c2 = col_of_row[r];
        stack.push((c2, a.col_ptr()[c2]));
    }
    false
}

/// Block-triangular-form block structure via Tarjan's SCC algorithm.
///
/// The matrix is viewed as a directed graph on `n` vertices after the
/// row permutation implied by a full transversal (`row_of_col` from
/// [`max_transversal`]): vertex `j` has an edge to `j'` when column `j`
/// has an entry in the row matched to column `j'`. The strongly
/// connected components of this graph are the diagonal blocks of the
/// BTF; the returned `(block_of, n_blocks)` assigns each column a block
/// index in `0..n_blocks`, numbered in a topological order of the
/// block dependency graph (block `b` only depends on blocks `>= b`).
///
/// # Errors
///
/// * [`NumericError::Dimension`] if `a` is not square.
/// * [`NumericError::Singular`] if the transversal is not full
///   (structurally singular matrices have no BTF).
pub fn btf_blocks(a: &Csc, row_of_col: &[usize]) -> Result<(Vec<usize>, usize)> {
    let n = square_dim(a)?;
    if row_of_col.len() != n || row_of_col.iter().any(|&r| r == usize::MAX) {
        return Err(NumericError::Singular);
    }
    // Column matched to each row.
    let mut col_of_row = vec![usize::MAX; n];
    for (j, &r) in row_of_col.iter().enumerate() {
        if r >= n || col_of_row[r] != usize::MAX {
            return Err(NumericError::Singular);
        }
        col_of_row[r] = j;
    }
    // Iterative Tarjan.
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut block_of = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut n_blocks = 0usize;

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        // Work stack of (vertex, next entry offset).
        let mut work: Vec<(usize, usize)> = vec![(root, a.col_ptr()[root])];
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        while let Some(&(v, k)) = work.last() {
            if k < a.col_ptr()[v + 1] {
                let top = work.len() - 1;
                work[top].1 = k + 1;
                let r = a.row_idx()[k];
                let w = col_of_row[r];
                if w == v {
                    continue;
                }
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    scc_stack.push(w);
                    on_stack[w] = true;
                    work.push((w, a.col_ptr()[w]));
                } else if on_stack[w] && index[w] < lowlink[v] {
                    lowlink[v] = index[w];
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    if lowlink[v] < lowlink[parent] {
                        lowlink[parent] = lowlink[v];
                    }
                }
                if lowlink[v] == index[v] {
                    // v roots an SCC: pop it off.
                    while let Some(w) = scc_stack.pop() {
                        on_stack[w] = false;
                        block_of[w] = n_blocks;
                        if w == v {
                            break;
                        }
                    }
                    n_blocks += 1;
                }
            }
        }
    }
    Ok((block_of, n_blocks))
}

/// Checks `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

fn square_dim(a: &Csc) -> Result<usize> {
    if a.n_rows() != a.n_cols() {
        return Err(NumericError::dimension(
            "square matrix",
            format!("{}x{}", a.n_rows(), a.n_cols()),
        ));
    }
    Ok(a.n_rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn arrow(n: usize) -> Csc {
        // Arrow matrix: dense first row/column + diagonal. Natural-order
        // elimination fills everything; eliminating the spokes first
        // (min-degree) produces no fill.
        Csc::from_dense(&Matrix::from_fn(n, n, |i, j| {
            if i == 0 || j == 0 || i == j {
                1.0
            } else {
                0.0
            }
        }))
    }

    #[test]
    fn min_degree_defers_the_hub() {
        let order = min_degree_order(&arrow(6)).unwrap();
        assert!(is_permutation(&order, 6));
        // The hub (node 0, degree 5) must outlast every spoke except
        // the final degree-1 pair, where the index tie-break lets the
        // hub go first.
        let hub_pos = order.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 4, "hub eliminated too early: {order:?}");
    }

    #[test]
    fn transversal_full_on_identity_pattern() {
        let a = Csc::from_dense(&Matrix::identity(4));
        let (row_of_col, size) = max_transversal(&a).unwrap();
        assert_eq!(size, 4);
        assert_eq!(row_of_col, vec![0, 1, 2, 3]);
    }

    #[test]
    fn transversal_needs_augmenting_path() {
        // Column 0 hits rows {0,1}, column 1 hits {0}: matching must
        // re-route column 0 to row 1.
        let a = Csc::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let (row_of_col, size) = max_transversal(&a).unwrap();
        assert_eq!(size, 2);
        assert_eq!(row_of_col, vec![1, 0]);
    }

    #[test]
    fn transversal_deficient_on_empty_column() {
        let a = Csc::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        let (_, size) = max_transversal(&a).unwrap();
        assert_eq!(size, 1);
    }

    #[test]
    fn btf_identifies_triangular_blocks() {
        // Lower-block-triangular: {0,1} strongly connected, {2} alone.
        let m = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0], &[1.0, 0.0, 1.0]]).unwrap();
        let a = Csc::from_dense(&m);
        let (row_of_col, size) = max_transversal(&a).unwrap();
        assert_eq!(size, 3);
        let (block_of, n_blocks) = btf_blocks(&a, &row_of_col).unwrap();
        assert_eq!(n_blocks, 2);
        assert_eq!(block_of[0], block_of[1]);
        assert_ne!(block_of[0], block_of[2]);
    }

    #[test]
    fn btf_rejects_deficient_transversal() {
        let a = Csc::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        let (row_of_col, _) = max_transversal(&a).unwrap();
        assert_eq!(btf_blocks(&a, &row_of_col), Err(NumericError::Singular));
    }
}
