//! Minimal complex arithmetic for AC (phasor) analysis.
//!
//! The harvester's analytic steady-state solution works with impedances
//! `Z(jω)`; this module provides just enough complex algebra for that,
//! with operator overloads matching `f64` ergonomics.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + j·im`.
///
/// # Example
///
/// ```
/// use ehsim_numeric::complex::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// let w = z * Complex::i();
/// assert_eq!(w, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + j·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The imaginary unit `j`.
    pub fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// A purely real number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `|z|`.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn abs_sq(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when inverting exact zero.
    pub fn inv(&self) -> Self {
        let d = self.abs_sq();
        debug_assert!(d > 0.0, "inverting zero complex number");
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        let w = Complex::new(-1.0, 4.0);
        assert_eq!(z + w, Complex::new(1.0, 1.0));
        assert_eq!(z - w, Complex::new(3.0, -7.0));
        assert_eq!(z * Complex::real(1.0), z);
        // (2-3j)(-1+4j) = -2+8j+3j+12 = 10+11j
        assert_eq!(z * w, Complex::new(10.0, 11.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let z = Complex::new(2.0, -3.0);
        let w = Complex::new(-1.0, 4.0);
        let q = (z * w) / w;
        assert!((q - z).abs() < 1e-12);
    }

    #[test]
    fn polar_quantities() {
        let z = Complex::new(0.0, 2.0);
        assert_eq!(z.abs(), 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(z.conj(), Complex::new(0.0, -2.0));
        assert_eq!(Complex::i() * Complex::i(), Complex::real(-1.0));
    }

    #[test]
    fn inverse_and_scalar_ops() {
        let z = Complex::new(3.0, 4.0);
        let zi = z.inv();
        assert!((z * zi - Complex::real(1.0)).abs() < 1e-12);
        assert_eq!(z * 2.0, Complex::new(6.0, 8.0));
        assert_eq!(z / 2.0, Complex::new(1.5, 2.0));
        let from: Complex = 5.0.into();
        assert_eq!(from, Complex::real(5.0));
    }
}
