//! Property-based tests for the sparse LU kernel: factor-product
//! identity, permutation validity, fill bounds, typed failure on
//! singular input, and refactorization bit-identity.

use ehsim_numeric::amd::is_permutation;
use ehsim_numeric::sparse_lu::Ordering;
use ehsim_numeric::{Csc, Matrix, NumericError, SparseLu, Symbolic};
use proptest::prelude::*;

/// Strategy: a well-conditioned sparse matrix — off-diagonal entries
/// below the keep threshold are dropped, the diagonal strictly
/// dominates what remains.
fn sparse_diag_dominant(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = vals[i * n + j];
                // Keep roughly 40 % of off-diagonal entries.
                if i != j && v.abs() > 0.6 {
                    m[(i, j)] = v;
                }
            }
            m[(i, i)] = n as f64 + 1.0 + vals[i * n + i];
        }
        m
    })
}

/// `P·A·Q` built from a factorization's permutations.
fn permuted(a: &Matrix, lu: &SparseLu) -> Matrix {
    let n = lu.dim();
    let mut w = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            w[(i, j)] = a[(lu.row_perm()[i], lu.col_perm()[j])];
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The factor product reproduces the permuted input for both
    /// orderings: `L·U == P·A·Q` to 1e-9.
    #[test]
    fn factor_product_matches_permuted_input(m in sparse_diag_dominant(7)) {
        let a = Csc::from_dense(&m);
        for ordering in [Ordering::Natural, Ordering::Amd] {
            let sym = Symbolic::analyze(&a, ordering).expect("nonsingular");
            let lu = SparseLu::factorize(&sym, &a).expect("well conditioned");
            let prod = (&lu.l() * &lu.u()).expect("square");
            let diff = prod.max_abs_diff(&permuted(&m, &lu)).expect("same shape");
            prop_assert!(diff < 1e-9, "ordering {:?}: |LU - PAQ| = {:e}", ordering, diff);
        }
    }

    /// Row and column permutations of both the symbolic analysis and
    /// the numeric factorization are genuine permutations of 0..n.
    #[test]
    fn permutations_are_valid(m in sparse_diag_dominant(8)) {
        let a = Csc::from_dense(&m);
        for ordering in [Ordering::Natural, Ordering::Amd] {
            let sym = Symbolic::analyze(&a, ordering).expect("nonsingular");
            prop_assert!(is_permutation(sym.col_perm(), sym.n()));
            let lu = SparseLu::factorize(&sym, &a).expect("well conditioned");
            prop_assert!(is_permutation(lu.row_perm(), lu.dim()));
            prop_assert!(is_permutation(lu.col_perm(), lu.dim()));
        }
    }

    /// Fill-in never exceeds the dense bound: `n²` entries plus the
    /// unit diagonal of L.
    #[test]
    fn fill_in_is_bounded_by_dense(m in sparse_diag_dominant(8)) {
        let a = Csc::from_dense(&m);
        let n = a.n_rows();
        for ordering in [Ordering::Natural, Ordering::Amd] {
            let sym = Symbolic::analyze(&a, ordering).expect("nonsingular");
            let lu = SparseLu::factorize(&sym, &a).expect("well conditioned");
            prop_assert!(
                lu.nnz() <= n * n + n,
                "ordering {:?}: nnz {} exceeds dense bound {}", ordering, lu.nnz(), n * n + n
            );
            // And the sparse kernel must actually stay sparse here: the
            // input keeps ~40 % density, so a dense-sized factor would
            // flag catastrophic (quadratic) fill.
            prop_assert!(lu.nnz() <= a.nnz() * a.n_rows());
        }
    }

    /// A structurally deficient matrix (one empty column) fails the
    /// symbolic analysis with the typed singular error — never a panic.
    #[test]
    fn structurally_deficient_is_typed_error(
        m in sparse_diag_dominant(6),
        dead_col in 0usize..6,
    ) {
        let mut dead = m.clone();
        for i in 0..6 {
            dead[(i, dead_col)] = 0.0;
        }
        let a = Csc::from_dense(&dead);
        for ordering in [Ordering::Natural, Ordering::Amd] {
            prop_assert_eq!(
                Symbolic::analyze(&a, ordering).unwrap_err(),
                NumericError::Singular
            );
        }
    }

    /// A numerically singular matrix (two identical rows) fails the
    /// numeric factorization with the typed singular error.
    #[test]
    fn numerically_singular_is_typed_error(m in sparse_diag_dominant(6)) {
        let mut sing = m.clone();
        for j in 0..6 {
            let v = sing[(0, j)];
            sing[(1, j)] = v;
        }
        let a = Csc::from_dense(&sing);
        for ordering in [Ordering::Natural, Ordering::Amd] {
            // Overwriting row 1 may also empty a column that only row 1
            // populated; then the failure is (correctly) structural and
            // surfaces one stage earlier. Either way: typed, no panic.
            match Symbolic::analyze(&a, ordering) {
                Err(e) => prop_assert_eq!(e, NumericError::Singular),
                Ok(sym) => prop_assert_eq!(
                    SparseLu::factorize(&sym, &a).unwrap_err(),
                    NumericError::Singular
                ),
            }
        }
    }

    /// Refactorizing with perturbed values (same pattern, dominance
    /// preserved) reports pivot stability and solves bit-identically to
    /// a from-scratch factorization of the same values.
    #[test]
    fn refactorize_is_bit_identical_to_fresh(
        m in sparse_diag_dominant(7),
        scale in 0.5f64..2.0,
        rhs in prop::collection::vec(-5.0f64..5.0, 7),
    ) {
        let a = Csc::from_dense(&m);
        for ordering in [Ordering::Natural, Ordering::Amd] {
            let sym = Symbolic::analyze(&a, ordering).expect("nonsingular");
            let mut lu = SparseLu::factorize(&sym, &a).expect("well conditioned");

            // Uniform scaling preserves every pivot ratio exactly.
            let scaled: Vec<f64> = a.values().iter().map(|v| v * scale).collect();
            let mut a2 = a.clone();
            a2.set_values(&scaled).expect("same nnz");
            let stable = lu.refactorize(&sym, &a2).expect("same pattern");
            prop_assert!(stable, "uniform scaling must keep the pivot sequence");

            let fresh = SparseLu::factorize(&sym, &a2).expect("well conditioned");
            let xw = lu.solve(&rhs).expect("solve");
            let xf = fresh.solve(&rhs).expect("solve");
            for (w, f) in xw.iter().zip(&xf) {
                prop_assert_eq!(w.to_bits(), f.to_bits());
            }
        }
    }

    /// Solutions satisfy the original system to a tight residual under
    /// both orderings.
    #[test]
    fn solve_residual_is_small(
        m in sparse_diag_dominant(8),
        rhs in prop::collection::vec(-10.0f64..10.0, 8),
    ) {
        let a = Csc::from_dense(&m);
        for ordering in [Ordering::Natural, Ordering::Amd] {
            let sym = Symbolic::analyze(&a, ordering).expect("nonsingular");
            let lu = SparseLu::factorize(&sym, &a).expect("well conditioned");
            let x = lu.solve(&rhs).expect("dimension matches");
            let ax = m.matvec(&x).expect("dimension matches");
            for (l, r) in ax.iter().zip(&rhs) {
                prop_assert!((l - r).abs() < 1e-8, "residual {:e}", (l - r).abs());
            }
        }
    }
}
