//! Property-based tests for the numerical substrate.

use ehsim_numeric::stats::dist::{FisherF, Normal, StudentT};
use ehsim_numeric::stats::special::{beta_inc, gamma_p, gamma_q};
use ehsim_numeric::{expm, vector, Cholesky, FnSystem, Lu, Matrix, Polynomial, Qr, Rk4};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix built as D + N with a
/// dominant diagonal.
fn diag_dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals).expect("sized buffer");
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

/// Strategy: a Hurwitz-stable matrix — off-diagonal noise dominated by
/// a strongly negative diagonal, so all eigenvalues have negative real
/// part (Gershgorin).
fn stable_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-0.8f64..0.8, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals).expect("sized buffer");
        for i in 0..n {
            m[(i, i)] -= n as f64 + 1.0;
        }
        m
    })
}

proptest! {
    #[test]
    fn lu_solve_produces_small_residual(
        a in diag_dominant_matrix(5),
        b in prop::collection::vec(-10.0f64..10.0, 5),
    ) {
        let lu = Lu::factor(&a).expect("diagonally dominant is nonsingular");
        let x = lu.solve(&b).expect("dimension matches");
        let ax = a.matvec(&x).expect("dimension matches");
        prop_assert!(vector::max_abs_diff(&ax, &b) < 1e-8);
    }

    #[test]
    fn lu_det_matches_expansion_for_2x2(
        a in -5.0f64..5.0, b in -5.0f64..5.0,
        c in -5.0f64..5.0, d in -5.0f64..5.0,
    ) {
        let det_direct = a * d - b * c;
        prop_assume!(det_direct.abs() > 1e-6);
        let m = Matrix::from_rows(&[&[a, b], &[c, d]]).expect("2x2");
        let lu = Lu::factor(&m).expect("nonsingular by assumption");
        prop_assert!((lu.det() - det_direct).abs() < 1e-9 * det_direct.abs().max(1.0));
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal_to_columns(
        vals in prop::collection::vec(-3.0f64..3.0, 8 * 3),
        b in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let mut a = Matrix::from_vec(8, 3, vals).expect("sized buffer");
        // Bump towards full rank.
        for j in 0..3 {
            a[(j, j)] += 10.0;
        }
        let qr = Qr::factor(&a).expect("full rank after bump");
        let x = qr.solve_least_squares(&b).expect("dimension matches");
        let ax = a.matvec(&x).expect("dimension matches");
        let r = vector::sub(&b, &ax);
        // Normal equations: A^T r == 0 at the LS optimum.
        let atr = a.matvec_transposed(&r).expect("dimension matches");
        prop_assert!(vector::norm_inf(&atr) < 1e-7);
    }

    #[test]
    fn cholesky_solves_gram_systems(
        vals in prop::collection::vec(-2.0f64..2.0, 6 * 4),
        b in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let x_mat = Matrix::from_vec(6, 4, vals).expect("sized buffer");
        let mut gram = (&x_mat.transpose() * &x_mat).expect("conformable");
        for i in 0..4 {
            gram[(i, i)] += 1.0; // regularise
        }
        let ch = Cholesky::factor(&gram).expect("SPD after regularisation");
        let x = ch.solve(&b).expect("dimension matches");
        let gx = gram.matvec(&x).expect("dimension matches");
        prop_assert!(vector::max_abs_diff(&gx, &b) < 1e-8);
    }

    #[test]
    fn lu_factors_reconstruct_the_matrix(a in diag_dominant_matrix(5)) {
        // L·U == P·A within 1e-9.
        let lu = Lu::factor(&a).expect("diagonally dominant is nonsingular");
        let prod = (&lu.l() * &lu.u()).expect("conformable");
        let p = lu.permutation();
        let pa = Matrix::from_fn(5, 5, |i, j| a[(p[i], j)]);
        prop_assert!(prod.max_abs_diff(&pa).expect("same shape") < 1e-9);
    }

    #[test]
    fn qr_factors_reconstruct_the_matrix(
        vals in prop::collection::vec(-3.0f64..3.0, 8 * 3),
    ) {
        let mut a = Matrix::from_vec(8, 3, vals).expect("sized buffer");
        for j in 0..3 {
            a[(j, j)] += 10.0; // bump towards full rank
        }
        let qr = Qr::factor(&a).expect("full rank after bump");
        // Q·R == A within 1e-9.
        let prod = (&qr.q() * &qr.r()).expect("conformable");
        prop_assert!(prod.max_abs_diff(&a).expect("same shape") < 1e-9);
        // Q has orthonormal columns: QᵀQ == I.
        let q = qr.q();
        let qtq = (&q.transpose() * &q).expect("conformable");
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(3)).expect("same shape") < 1e-12);
    }

    #[test]
    fn cholesky_factor_reconstructs_the_matrix(
        vals in prop::collection::vec(-2.0f64..2.0, 6 * 4),
    ) {
        let x_mat = Matrix::from_vec(6, 4, vals).expect("sized buffer");
        let mut gram = (&x_mat.transpose() * &x_mat).expect("conformable");
        for i in 0..4 {
            gram[(i, i)] += 1.0; // regularise to SPD
        }
        let ch = Cholesky::factor(&gram).expect("SPD after regularisation");
        // L·Lᵀ == A within 1e-9.
        let l = ch.l();
        let prod = (l * &l.transpose()).expect("conformable");
        prop_assert!(prod.max_abs_diff(&gram).expect("same shape") < 1e-9);
    }

    #[test]
    fn expm_matches_ode_reference_on_stable_systems(
        a in stable_matrix(3),
        x0 in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        // x(1) for ẋ = A·x is e^{A}·x0; RK4 at h = 1e-3 carries a
        // global error of O(h⁴), far below the 1e-8 tolerance.
        let sys = FnSystem::new(3, |_t, x: &[f64], dxdt: &mut [f64]| {
            for i in 0..3 {
                dxdt[i] = (0..3).map(|j| a[(i, j)] * x[j]).sum();
            }
        });
        let traj = Rk4::new(1e-3).integrate(&sys, 0.0, &x0, 1.0).expect("integrates");
        let e = expm(&a).expect("finite matrix");
        let want = e.matvec(&x0).expect("dimension matches");
        prop_assert!(vector::max_abs_diff(traj.last_state(), &want) < 1e-8);
    }

    #[test]
    fn expm_inverse_property(vals in prop::collection::vec(-0.8f64..0.8, 9)) {
        // e^{A} e^{-A} == I for every A.
        let a = Matrix::from_vec(3, 3, vals).expect("sized buffer");
        let e_pos = expm(&a).expect("finite matrix");
        let e_neg = expm(&a.scaled(-1.0)).expect("finite matrix");
        let prod = (&e_pos * &e_neg).expect("conformable");
        prop_assert!(prod.max_abs_diff(&Matrix::identity(3)).expect("same shape") < 1e-10);
    }

    #[test]
    fn expm_det_equals_exp_trace(vals in prop::collection::vec(-0.5f64..0.5, 4)) {
        // det(e^A) == e^{tr A} (Jacobi's formula).
        let a = Matrix::from_vec(2, 2, vals).expect("sized buffer");
        let e = expm(&a).expect("finite matrix");
        let det = e[(0, 0)] * e[(1, 1)] - e[(0, 1)] * e[(1, 0)];
        prop_assert!((det - a.trace().exp()).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_is_monotone_and_bounded(x in -6.0f64..6.0, dx in 0.001f64..2.0) {
        let n = Normal::standard();
        let c1 = n.cdf(x);
        let c2 = n.cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c2 >= c1);
    }

    #[test]
    fn normal_quantile_roundtrip(p in 0.001f64..0.999) {
        let n = Normal::standard();
        let x = n.quantile(p).expect("p in range");
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn student_t_symmetry(df in 1.0f64..50.0, x in 0.0f64..8.0) {
        let t = StudentT::new(df).expect("positive df");
        prop_assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fisher_f_reciprocal_relation(d1 in 1.0f64..20.0, d2 in 1.0f64..20.0, x in 0.01f64..10.0) {
        // If X ~ F(d1, d2) then 1/X ~ F(d2, d1).
        let f12 = FisherF::new(d1, d2).expect("positive dfs");
        let f21 = FisherF::new(d2, d1).expect("positive dfs");
        prop_assert!((f12.cdf(x) - f21.sf(1.0 / x)).abs() < 1e-9);
    }

    #[test]
    fn beta_inc_monotone_in_x(a in 0.2f64..10.0, b in 0.2f64..10.0, x in 0.0f64..0.98) {
        let i1 = beta_inc(a, b, x).expect("in domain");
        let i2 = beta_inc(a, b, x + 0.01).expect("in domain");
        prop_assert!(i2 >= i1 - 1e-12);
    }

    #[test]
    fn gamma_p_plus_q_is_one(a in 0.1f64..30.0, x in 0.0f64..60.0) {
        let p = gamma_p(a, x).expect("in domain");
        let q = gamma_q(a, x).expect("in domain");
        prop_assert!((p + q - 1.0).abs() < 1e-10);
    }

    #[test]
    fn polynomial_eval_linear_in_add(
        c1 in prop::collection::vec(-3.0f64..3.0, 1..6),
        c2 in prop::collection::vec(-3.0f64..3.0, 1..6),
        x in -2.0f64..2.0,
    ) {
        let p = Polynomial::new(c1);
        let q = Polynomial::new(c2);
        let sum = p.add(&q);
        prop_assert!((sum.eval(x) - (p.eval(x) + q.eval(x))).abs() < 1e-9);
    }

    #[test]
    fn polynomial_mul_matches_pointwise(
        c1 in prop::collection::vec(-2.0f64..2.0, 1..5),
        c2 in prop::collection::vec(-2.0f64..2.0, 1..5),
        x in -1.5f64..1.5,
    ) {
        let p = Polynomial::new(c1);
        let q = Polynomial::new(c2);
        let prod = p.mul(&q);
        prop_assert!((prod.eval(x) - p.eval(x) * q.eval(x)).abs() < 1e-8);
    }

    #[test]
    fn quadratic_roots_actually_vanish(
        a in 0.1f64..5.0, b in -10.0f64..10.0, c in -10.0f64..10.0,
    ) {
        let p = Polynomial::new(vec![c, b, a]);
        for r in p.real_roots().expect("degree 2") {
            prop_assert!(p.eval(r).abs() < 1e-6 * (a.abs() + b.abs() + c.abs()).max(1.0));
        }
    }
}
