//! Report helpers: CSV export and fixed-width text tables for the
//! experiment harnesses.

use crate::Result;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Writes a CSV file with a header row and numeric data rows.
///
/// # Errors
///
/// [`crate::CoreError::Io`] on filesystem failures;
/// [`crate::CoreError::InvalidArgument`] if any row width differs from
/// the header width.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<f64>]) -> Result<()> {
    for (i, r) in rows.iter().enumerate() {
        if r.len() != headers.len() {
            return Err(crate::CoreError::invalid(format!(
                "row {i} has {} columns, header has {}",
                r.len(),
                headers.len()
            )));
        }
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", headers.join(","))?;
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(file, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes a CSV file whose first column is a string label (scenario or
/// method name) followed by numeric columns.
///
/// `headers[0]` names the label column; `headers[1..]` must match the
/// numeric row width. Labels containing commas or quotes are quoted
/// per RFC 4180.
///
/// # Errors
///
/// [`crate::CoreError::Io`] on filesystem failures;
/// [`crate::CoreError::InvalidArgument`] on a label/row count mismatch
/// or a row width that differs from the header width.
pub fn write_labeled_csv(
    path: &Path,
    headers: &[&str],
    labels: &[String],
    rows: &[Vec<f64>],
) -> Result<()> {
    if labels.len() != rows.len() {
        return Err(crate::CoreError::invalid(format!(
            "{} labels for {} rows",
            labels.len(),
            rows.len()
        )));
    }
    for (i, r) in rows.iter().enumerate() {
        if r.len() + 1 != headers.len() {
            return Err(crate::CoreError::invalid(format!(
                "row {i} has {} columns, header has {} (incl. label)",
                r.len() + 1,
                headers.len()
            )));
        }
    }
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", headers.join(","))?;
    for (label, row) in labels.iter().zip(rows.iter()) {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(file, "{},{}", quote(label), cells.join(","))?;
    }
    Ok(())
}

/// Formats a fixed-width text table (headers + numeric rows) for
/// terminal output.
pub fn format_table(headers: &[&str], rows: &[Vec<f64>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| {
                    if v.abs() >= 1e5 || (v.abs() < 1e-3 && *v != 0.0) {
                        format!("{v:.4e}")
                    } else {
                        format!("{v:.4}")
                    }
                })
                .collect()
        })
        .collect();
    for row in &formatted {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:>width$}  ", h, width = widths[i]);
    }
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in &formatted {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Formats a table with string-valued first column (e.g. method names).
pub fn format_labeled_table(headers: &[&str], labels: &[String], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let label_w = labels
        .iter()
        .map(|l| l.len())
        .chain(std::iter::once(headers[0].len()))
        .max()
        .unwrap_or(8);
    let _ = write!(out, "{:<label_w$}  ", headers[0]);
    for h in &headers[1..] {
        let _ = write!(out, "{h:>14}  ");
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + 16 * (headers.len() - 1)));
    out.push('\n');
    for (label, row) in labels.iter().zip(rows.iter()) {
        let _ = write!(out, "{label:<label_w$}  ");
        for v in row {
            if v.abs() >= 1e5 || (v.abs() < 1e-3 && *v != 0.0) {
                let _ = write!(out, "{v:>14.4e}  ");
            } else {
                let _ = write!(out, "{v:>14.4}  ");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("ehsim_report_test.csv");
        write_csv(&path, &["a", "b"], &[vec![1.0, 2.0], vec![3.5, -4.0]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("3.5,-4"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let dir = std::env::temp_dir();
        let path = dir.join("ehsim_report_ragged.csv");
        let err = write_csv(&path, &["a", "b"], &[vec![1.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn labeled_csv_quotes_and_validates() {
        let dir = std::env::temp_dir();
        let path = dir.join("ehsim_report_labeled.csv");
        write_labeled_csv(
            &path,
            &["scenario", "v"],
            &["plain".into(), "with,comma".into(), "with\"quote".into()],
            &[vec![1.0], vec![2.0], vec![3.0]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("scenario,v\n"));
        assert!(content.contains("\"with,comma\",2"));
        assert!(content.contains("\"with\"\"quote\",3"));
        assert!(write_labeled_csv(&path, &["a", "b"], &["x".into()], &[vec![1.0, 2.0]]).is_err());
        assert!(write_labeled_csv(&path, &["a", "b"], &["x".into()], &[]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_formatting() {
        let t = format_table(&["x", "y"], &[vec![1.0, 2e-6], vec![123456.0, 3.0]]);
        assert!(t.contains('x'));
        assert!(t.contains("2.0000e-6"));
        assert!(t.lines().count() == 4);
        let lt = format_labeled_table(
            &["method", "value"],
            &["grid".into(), "ga".into()],
            &[vec![1.0], vec![2.0]],
        );
        assert!(lt.contains("grid"));
        assert!(lt.contains("ga"));
    }
}
