//! Simulation scenarios: a vibration environment plus a duration.

use crate::{CoreError, Result};
use ehsim_vibration::{DriftSchedule, MultiTone, Sine, VibrationSource};
use std::sync::Arc;

/// A reproducible simulation scenario.
#[derive(Clone)]
pub struct Scenario {
    source: Arc<dyn VibrationSource>,
    duration_s: f64,
    label: String,
}

impl Scenario {
    /// Creates a scenario from any vibration source.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a non-positive duration.
    pub fn new(
        source: Arc<dyn VibrationSource>,
        duration_s: f64,
        label: impl Into<String>,
    ) -> Result<Self> {
        if !(duration_s > 0.0) {
            return Err(CoreError::invalid(format!(
                "duration must be positive, got {duration_s}"
            )));
        }
        Ok(Scenario {
            source,
            duration_s,
            label: label.into(),
        })
    }

    /// Stationary machine vibration at 64 Hz, 0.9 m/s².
    pub fn stationary_machine(duration_s: f64) -> Self {
        Scenario {
            source: Arc::new(Sine::new(0.9, 64.0).expect("valid parameters")),
            duration_s,
            label: "stationary-64Hz".into(),
        }
    }

    /// A machine whose speed ramps 58 → 70 Hz across the run — the
    /// workload that makes the tuning controller earn its keep.
    pub fn drifting_machine(duration_s: f64) -> Self {
        let schedule = DriftSchedule::new(
            vec![
                (0.0, 58.0),
                (duration_s * 0.4, 63.0),
                (duration_s * 0.7, 69.0),
                (duration_s, 70.0),
            ],
            0.9,
        )
        .expect("valid schedule");
        Scenario {
            source: Arc::new(schedule),
            duration_s,
            label: "drifting-58-70Hz".into(),
        }
    }

    /// Harmonic-rich industrial spectrum: 62 Hz fundamental plus
    /// harmonics.
    pub fn industrial_spectrum(duration_s: f64) -> Self {
        Scenario {
            source: Arc::new(MultiTone::machinery(62.0, 0.8, 3).expect("valid parameters")),
            duration_s,
            label: "industrial-62Hz".into(),
        }
    }

    /// The excitation source.
    pub fn source(&self) -> &Arc<dyn VibrationSource> {
        &self.source
    }

    /// Simulated duration (s).
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scenario({}, {} s)", self.label, self.duration_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let s = Scenario::stationary_machine(600.0);
        assert_eq!(s.duration_s(), 600.0);
        assert!((s.source().envelope(0.0).freq_hz - 64.0).abs() < 1e-9);
        let d = Scenario::drifting_machine(1000.0);
        assert!((d.source().envelope(0.0).freq_hz - 58.0).abs() < 1e-9);
        assert!((d.source().envelope(1000.0).freq_hz - 70.0).abs() < 1e-9);
        let i = Scenario::industrial_spectrum(60.0);
        assert_eq!(i.source().envelope(0.0).freq_hz, 62.0);
        assert!(!format!("{i:?}").is_empty());
    }

    #[test]
    fn validation() {
        let src = Arc::new(Sine::new(1.0, 50.0).unwrap());
        assert!(Scenario::new(src, 0.0, "x").is_err());
    }
}
