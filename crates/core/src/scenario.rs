//! Simulation scenarios: a vibration environment plus a duration, and
//! weighted ensembles of them for cross-scenario (robust) optimisation.

use crate::{CoreError, Result};
use ehsim_vibration::{
    AmplitudeSchedule, Composite, DriftSchedule, DutyCycled, FilteredNoise, MultiTone, ShockTrain,
    Sine, VibrationSource,
};
use std::sync::Arc;

/// A reproducible simulation scenario.
#[derive(Clone)]
pub struct Scenario {
    source: Arc<dyn VibrationSource>,
    duration_s: f64,
    label: String,
}

impl Scenario {
    /// Creates a scenario from any vibration source.
    ///
    /// # Example
    ///
    /// ```
    /// use ehsim_core::scenario::Scenario;
    /// use ehsim_vibration::Sine;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), ehsim_core::CoreError> {
    /// let src = Arc::new(Sine::new(0.9, 64.0).expect("valid sine"));
    /// let scenario = Scenario::new(src, 600.0, "bench-grinder")?;
    /// assert_eq!(scenario.label(), "bench-grinder");
    /// assert_eq!(scenario.duration_s(), 600.0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a duration that is not
    /// positive and finite (the historical guard admitted
    /// `f64::INFINITY`, which would hang the simulator's tick loop).
    pub fn new(
        source: Arc<dyn VibrationSource>,
        duration_s: f64,
        label: impl Into<String>,
    ) -> Result<Self> {
        if !(duration_s > 0.0) || !duration_s.is_finite() {
            return Err(CoreError::invalid(format!(
                "duration must be positive and finite, got {duration_s}"
            )));
        }
        Ok(Scenario {
            source,
            duration_s,
            label: label.into(),
        })
    }

    /// Stationary machine vibration at 64 Hz, 0.9 m/s².
    pub fn stationary_machine(duration_s: f64) -> Self {
        Scenario {
            source: Arc::new(Sine::new(0.9, 64.0).expect("valid parameters")),
            duration_s,
            label: "stationary-64Hz".into(),
        }
    }

    /// A machine whose speed ramps 58 → 70 Hz across the run — the
    /// workload that makes the tuning controller earn its keep.
    pub fn drifting_machine(duration_s: f64) -> Self {
        let schedule = DriftSchedule::new(
            vec![
                (0.0, 58.0),
                (duration_s * 0.4, 63.0),
                (duration_s * 0.7, 69.0),
                (duration_s, 70.0),
            ],
            0.9,
        )
        .expect("valid schedule");
        Scenario {
            source: Arc::new(schedule),
            duration_s,
            label: "drifting-58-70Hz".into(),
        }
    }

    /// Harmonic-rich industrial spectrum: 62 Hz fundamental plus
    /// harmonics.
    pub fn industrial_spectrum(duration_s: f64) -> Self {
        Scenario {
            source: Arc::new(MultiTone::machinery(62.0, 0.8, 3).expect("valid parameters")),
            duration_s,
            label: "industrial-62Hz".into(),
        }
    }

    /// A machine whose vibration *level* fades and recovers while its
    /// speed stays at 64 Hz: full amplitude for the first third, a deep
    /// fade to 25 % through the middle (load removed), then recovery.
    /// Frequency retuning cannot help here — the excitation itself
    /// weakens — which is what makes this the canonical workload for
    /// *runtime* energy-management policies.
    pub fn fading_machine(duration_s: f64) -> Self {
        let schedule = AmplitudeSchedule::new(
            vec![
                (0.0, 0.9),
                (duration_s * 0.3, 0.9),
                (duration_s * 0.4, 0.25),
                (duration_s * 0.75, 0.25),
                (duration_s * 0.85, 0.9),
                (duration_s, 0.9),
            ],
            64.0,
        )
        .expect("valid schedule");
        Scenario {
            source: Arc::new(schedule),
            duration_s,
            label: "fading-64Hz".into(),
        }
    }

    /// Intermittent machinery: long on/off blocks (35 % duty over four
    /// cycles per run) of a harmonic-rich 64 Hz spectrum. During the
    /// off blocks nothing is harvested at all, so a tuning that merely
    /// maximises average packets power-cycles the node; surviving the
    /// gaps takes either oversized storage or an adaptive policy.
    pub fn intermittent_machine(duration_s: f64) -> Self {
        let burst = DutyCycled::new(
            Box::new(MultiTone::machinery(64.0, 0.9, 3).expect("valid parameters")),
            duration_s / 4.0,
            0.35,
            duration_s / 80.0,
        )
        .expect("valid duty cycle");
        Scenario {
            source: Arc::new(burst),
            duration_s,
            label: "intermittent-64Hz".into(),
        }
    }

    /// The excitation source.
    pub fn source(&self) -> &Arc<dyn VibrationSource> {
        &self.source
    }

    /// Simulated duration (s).
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scenario({}, {} s)", self.label, self.duration_s)
    }
}

/// A weighted ensemble of named scenarios — the node's whole expected
/// *deployment envelope* rather than a single operating point.
///
/// The paper optimises energy management for a tunable harvester
/// precisely because the vibration environment is not stationary; an
/// ensemble makes that explicit: each entry is one environment the
/// node may encounter, with a weight expressing how much of its life
/// it spends there. Weights are stored as given and normalised on
/// read, so `[(a, 2.0), (b, 2.0)]` and `[(a, 0.5), (b, 0.5)]` are the
/// same ensemble.
///
/// # Example
///
/// ```
/// use ehsim_core::scenario::{Scenario, ScenarioEnsemble};
///
/// # fn main() -> Result<(), ehsim_core::CoreError> {
/// let ensemble = ScenarioEnsemble::new(vec![
///     (Scenario::stationary_machine(600.0), 0.6),
///     (Scenario::drifting_machine(600.0), 0.4),
/// ])?;
/// assert_eq!(ensemble.len(), 2);
/// assert_eq!(ensemble.labels(), vec!["stationary-64Hz", "drifting-58-70Hz"]);
/// // Weights come back normalised.
/// assert!((ensemble.weights()[0] - 0.6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioEnsemble {
    entries: Vec<(Scenario, f64)>,
}

impl ScenarioEnsemble {
    /// Creates an ensemble from `(scenario, weight)` entries.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if the list is empty or any
    /// weight is non-positive or non-finite.
    pub fn new(entries: Vec<(Scenario, f64)>) -> Result<Self> {
        if entries.is_empty() {
            return Err(CoreError::invalid("ensemble needs at least one scenario"));
        }
        for (s, w) in &entries {
            if !(*w > 0.0) || !w.is_finite() {
                return Err(CoreError::invalid(format!(
                    "weight for scenario '{}' must be positive and finite, got {w}",
                    s.label()
                )));
            }
        }
        Ok(ScenarioEnsemble { entries })
    }

    /// Creates an equally weighted ensemble.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if the list is empty.
    pub fn uniform(scenarios: Vec<Scenario>) -> Result<Self> {
        ScenarioEnsemble::new(scenarios.into_iter().map(|s| (s, 1.0)).collect())
    }

    /// A canonical five-environment "factory floor" ensemble exercising
    /// every source family: stationary hum, a speed-ramping machine,
    /// duty-cycled machinery bursts, resonance-filtered broadband
    /// noise, and a shock train riding on a weak hum. All stochastic
    /// members are seeded, so the ensemble is fully reproducible.
    pub fn factory_floor(duration_s: f64) -> Self {
        let duty = DutyCycled::new(
            Box::new(MultiTone::machinery(61.0, 0.9, 3).expect("valid parameters")),
            duration_s / 6.0,
            0.7,
            duration_s / 120.0,
        )
        .expect("valid duty cycle");
        let noise =
            FilteredNoise::new(63.0, 10.0, (40.0, 90.0), 0.7, 48, 20).expect("valid parameters");
        let shocks = Composite::new(vec![
            Box::new(Sine::new(0.5, 59.0).expect("valid parameters")),
            Box::new(ShockTrain::new(8.0, 110.0, 4.0, 0.12, 0.2, 21).expect("valid parameters")),
        ])
        .expect("non-empty composite");
        let mk = |src: Arc<dyn VibrationSource>, label: &str| {
            Scenario::new(src, duration_s, label).expect("positive duration")
        };
        ScenarioEnsemble::new(vec![
            (Scenario::stationary_machine(duration_s), 0.30),
            (Scenario::drifting_machine(duration_s), 0.25),
            (mk(Arc::new(duty), "duty-cycled-61Hz"), 0.20),
            (mk(Arc::new(noise), "filtered-noise-63Hz"), 0.15),
            (mk(Arc::new(shocks), "shock-train-110Hz"), 0.10),
        ])
        .expect("static ensemble is valid")
    }

    /// Number of scenarios.
    #[allow(clippy::len_without_is_empty)] // never empty by construction
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The `(scenario, raw weight)` entries in order.
    pub fn entries(&self) -> &[(Scenario, f64)] {
        &self.entries
    }

    /// One scenario by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn scenario(&self, idx: usize) -> &Scenario {
        &self.entries[idx].0
    }

    /// The weights, normalised to sum to 1.
    pub fn weights(&self) -> Vec<f64> {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        self.entries.iter().map(|(_, w)| w / total).collect()
    }

    /// The scenario labels, in order.
    pub fn labels(&self) -> Vec<&str> {
        self.entries.iter().map(|(s, _)| s.label()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let s = Scenario::stationary_machine(600.0);
        assert_eq!(s.duration_s(), 600.0);
        assert!((s.source().envelope(0.0).freq_hz - 64.0).abs() < 1e-9);
        let d = Scenario::drifting_machine(1000.0);
        assert!((d.source().envelope(0.0).freq_hz - 58.0).abs() < 1e-9);
        assert!((d.source().envelope(1000.0).freq_hz - 70.0).abs() < 1e-9);
        let i = Scenario::industrial_spectrum(60.0);
        assert_eq!(i.source().envelope(0.0).freq_hz, 62.0);
        assert!(!format!("{i:?}").is_empty());
    }

    #[test]
    fn validation() {
        let src = Arc::new(Sine::new(1.0, 50.0).unwrap());
        assert!(Scenario::new(src.clone(), 0.0, "x").is_err());
        // Regression: infinite and NaN durations must be rejected here,
        // not handed to the simulator's tick loop.
        assert!(Scenario::new(src.clone(), f64::INFINITY, "x").is_err());
        assert!(Scenario::new(src, f64::NAN, "x").is_err());
    }

    #[test]
    fn non_stationary_fixtures() {
        let f = Scenario::fading_machine(1000.0);
        assert_eq!(f.label(), "fading-64Hz");
        // Full level at the start, faded in the middle, recovered at
        // the end; the frequency never moves.
        assert!((f.source().envelope(0.0).amp - 0.9).abs() < 1e-12);
        assert!((f.source().envelope(500.0).amp - 0.25).abs() < 1e-12);
        assert!((f.source().envelope(1000.0).amp - 0.9).abs() < 1e-12);
        assert_eq!(f.source().envelope(500.0).freq_hz, 64.0);

        let i = Scenario::intermittent_machine(1000.0);
        assert_eq!(i.label(), "intermittent-64Hz");
        // On at the middle of the first burst, fully off mid-gap.
        assert!(i.source().envelope(40.0).amp > 0.5);
        assert_eq!(i.source().envelope(200.0).amp, 0.0);
    }

    #[test]
    fn ensemble_weights_normalise() {
        let e = ScenarioEnsemble::new(vec![
            (Scenario::stationary_machine(60.0), 3.0),
            (Scenario::drifting_machine(60.0), 1.0),
        ])
        .unwrap();
        let w = e.weights();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
        assert_eq!(e.len(), 2);
        assert_eq!(e.scenario(1).label(), "drifting-58-70Hz");
        assert_eq!(e.entries().len(), 2);
    }

    #[test]
    fn ensemble_uniform_and_validation() {
        let u = ScenarioEnsemble::uniform(vec![
            Scenario::stationary_machine(60.0),
            Scenario::industrial_spectrum(60.0),
        ])
        .unwrap();
        assert!((u.weights()[0] - 0.5).abs() < 1e-12);
        assert!(ScenarioEnsemble::new(vec![]).is_err());
        assert!(ScenarioEnsemble::new(vec![(Scenario::stationary_machine(60.0), 0.0)]).is_err());
        assert!(
            ScenarioEnsemble::new(vec![(Scenario::stationary_machine(60.0), f64::NAN)]).is_err()
        );
    }

    #[test]
    fn factory_floor_is_diverse_and_reproducible() {
        let a = ScenarioEnsemble::factory_floor(300.0);
        let b = ScenarioEnsemble::factory_floor(300.0);
        assert_eq!(a.len(), 5);
        assert!((a.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Labels are unique.
        let mut labels: Vec<&str> = a.labels();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
        // Bit-identical across constructions (seeded sources).
        for (sa, sb) in a.entries().iter().zip(b.entries()) {
            for k in 0..50 {
                let t = k as f64 * 0.37;
                assert_eq!(
                    sa.0.source().acceleration(t).to_bits(),
                    sb.0.source().acceleration(t).to_bits()
                );
            }
        }
    }
}
