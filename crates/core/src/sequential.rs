//! Sequential adaptive campaigns: a memoizing simulation evaluator and
//! a budget-capped refinement campaign over a scenario ensemble.
//!
//! This is the simulation-side half of the sequential RSM subsystem
//! (the statistics-side half is [`ehsim_doe::sequential`]):
//!
//! * [`CachedEvaluator`] memoizes ensemble simulation results keyed by
//!   the canonicalized design-point bits
//!   ([`ehsim_doe::sequential::canonical_key`]) × scenario, so the
//!   augmented and re-centred designs of a refinement run never re-pay
//!   for points already simulated. Fresh points are batched through
//!   [`EnsembleCampaign::run_design`] — the deterministic
//!   self-scheduling thread pool — so cached campaigns stay
//!   bit-identical for every thread count.
//! * [`SequentialCampaign`] drives a
//!   [`ehsim_doe::sequential::RefinementLoop`] against a cached
//!   evaluator under a **hard budget** of fresh design-point
//!   evaluations, and returns the best *simulated* (not extrapolated)
//!   tuning along with a per-iteration audit trail for
//!   reproducibility.
//!
//! Both compose with every campaign kind: the standard four-factor
//! space, and the *(tuning × policy)* spaces of
//! [`crate::experiment::PolicyFactors`].

use crate::experiment::{EnsembleCampaign, EnsembleCampaignResult};
use crate::{CoreError, Result};
use ehsim_doe::optimize::{Goal, RobustGoal};
use ehsim_doe::sequential::{
    canonical_key, RefinementConfig, RefinementLoop, RefinementReport, SequentialError,
    SequentialEvaluator,
};
use ehsim_doe::Design;
use std::collections::{BTreeMap, BTreeSet};

/// The simulated responses of one design point across a scenario
/// ensemble, as served by a [`CachedEvaluator`] (from cache or fresh).
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleResponse {
    /// `per_scenario[s][i]`: indicator `i` under scenario `s`, in
    /// ensemble order — bit-identical whether served fresh or replayed
    /// from cache.
    pub per_scenario: Vec<Vec<f64>>,
}

impl EnsembleResponse {
    /// The weighted aggregate of one indicator (weights as given, i.e.
    /// already normalised by the ensemble).
    pub fn weighted_mean(&self, weights: &[f64], indicator_idx: usize) -> f64 {
        self.per_scenario
            .iter()
            .zip(weights.iter())
            .map(|(y, w)| w * y[indicator_idx])
            .sum()
    }

    /// The worst case of one indicator across scenarios: the minimum
    /// when maximising, the maximum when minimising.
    pub fn worst_case(&self, goal: Goal, indicator_idx: usize) -> f64 {
        let it = self.per_scenario.iter().map(|y| y[indicator_idx]);
        match goal {
            Goal::Maximize => it.fold(f64::INFINITY, f64::min),
            Goal::Minimize => it.fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// A memoizing, budget-metered ensemble evaluator.
///
/// Results are cached under the canonicalized design-point key, so
/// asking again for an evaluated point — a re-centred region's centre,
/// an augmented design's cube, a replicate — is free and **bit
/// identical** to the original simulation. Fresh points are simulated
/// in one batched pass per call through the deterministic
/// self-scheduling scheduler, so results never depend on thread count
/// or on how points were grouped into batches.
///
/// The budget counts fresh *design-point evaluations* (each costs
/// `ensemble.len()` simulator runs); a call that would exceed it fails
/// with [`CoreError::InvalidArgument`] before simulating anything.
///
/// # Example
///
/// ```
/// use ehsim_core::experiment::{EnsembleCampaign, StandardFactors};
/// use ehsim_core::indicators::Indicator;
/// use ehsim_core::scenario::{Scenario, ScenarioEnsemble};
/// use ehsim_core::sequential::CachedEvaluator;
///
/// # fn main() -> Result<(), ehsim_core::CoreError> {
/// let campaign = EnsembleCampaign::standard(
///     StandardFactors::default(),
///     ScenarioEnsemble::uniform(vec![
///         Scenario::stationary_machine(60.0),
///         Scenario::drifting_machine(60.0),
///     ])?,
///     vec![Indicator::PacketsPerHour],
/// )?;
/// let mut ev = CachedEvaluator::new(campaign, 2).with_budget(4);
/// let center = vec![0.0; 4];
/// let first = ev.evaluate(std::slice::from_ref(&center))?;
/// let replay = ev.evaluate(std::slice::from_ref(&center))?;
/// assert_eq!(first, replay, "cache replays are bit-identical");
/// assert_eq!(ev.fresh_evals(), 1);
/// assert_eq!(ev.cache_hits(), 1);
/// assert_eq!(ev.remaining_budget(), 3);
/// # Ok(())
/// # }
/// ```
pub struct CachedEvaluator {
    campaign: EnsembleCampaign,
    threads: usize,
    budget: Option<usize>,
    // Audited for determinism rule D1: the cache is keyed-lookup only
    // (get/insert/contains_key — results leave it in request order,
    // never in iteration order), but an ordered map makes that property
    // structural instead of audited.
    cache: BTreeMap<Vec<i64>, EnsembleResponse>,
    hits: usize,
    fresh: usize,
}

impl CachedEvaluator {
    /// Wraps an ensemble campaign with an unlimited budget.
    pub fn new(campaign: EnsembleCampaign, threads: usize) -> Self {
        CachedEvaluator {
            campaign,
            threads: threads.max(1),
            budget: None,
            cache: BTreeMap::new(),
            hits: 0,
            fresh: 0,
        }
    }

    /// Sets a hard budget of fresh design-point evaluations.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The wrapped campaign.
    pub fn campaign(&self) -> &EnsembleCampaign {
        &self.campaign
    }

    /// Fresh design-point evaluations spent so far.
    pub fn fresh_evals(&self) -> usize {
        self.fresh
    }

    /// Cache hits served so far (including within-batch replicates).
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// `hits / (hits + fresh)`, or 0 before any evaluation.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.fresh;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Simulator invocations spent (`fresh × ensemble.len()`).
    pub fn sims_used(&self) -> usize {
        self.fresh * self.campaign.ensemble().len()
    }

    /// How many *fresh* design-point evaluations a batch would cost
    /// (distinct uncached points; duplicates count once).
    pub fn fresh_cost(&self, points: &[Vec<f64>]) -> usize {
        let mut seen = BTreeSet::new();
        points
            .iter()
            .map(|p| canonical_key(p))
            .filter(|k| !self.cache.contains_key(k) && seen.insert(k.clone()))
            .count()
    }

    /// Fresh evaluations still affordable (`usize::MAX` if unlimited).
    pub fn remaining_budget(&self) -> usize {
        self.budget.map_or(usize::MAX, |b| b - self.fresh.min(b))
    }

    /// Evaluates every coded point, serving cached points from the memo
    /// and simulating the rest in one batched scheduler pass.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if the batch would exceed the
    /// budget (nothing is simulated in that case) or on a factor-count
    /// mismatch; propagates simulation errors.
    pub fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<EnsembleResponse>> {
        // One canonicalization pass: per-point keys, plus the misses in
        // first-occurrence order (deterministic).
        let keys: Vec<Vec<i64>> = points.iter().map(|p| canonical_key(p)).collect();
        let mut miss_keys: Vec<Vec<i64>> = Vec::new();
        let mut miss_points: Vec<Vec<f64>> = Vec::new();
        let mut seen = BTreeSet::new();
        for (p, key) in points.iter().zip(keys.iter()) {
            if !self.cache.contains_key(key) && seen.insert(key.clone()) {
                miss_keys.push(key.clone());
                miss_points.push(p.clone());
            }
        }
        let need = miss_points.len();
        if need > self.remaining_budget() {
            return Err(CoreError::invalid(format!(
                "evaluation budget exhausted: batch needs {need} fresh design-point \
                 evaluations, {} remain of {}",
                self.remaining_budget(),
                self.budget.unwrap_or(0)
            )));
        }
        if !miss_points.is_empty() {
            let design = Design::new(
                self.campaign.space().k(),
                miss_points,
                "cached-evaluator-batch",
            )
            .map_err(CoreError::from)?;
            let result = self.campaign.run_design(&design, self.threads)?;
            for (run, key) in miss_keys.into_iter().enumerate() {
                let per_scenario: Vec<Vec<f64>> = result
                    .per_scenario
                    .iter()
                    .map(|sc| sc.responses[run].clone())
                    .collect();
                self.cache.insert(key, EnsembleResponse { per_scenario });
                self.fresh += 1;
            }
        }
        let mut out = Vec::with_capacity(points.len());
        for key in &keys {
            out.push(
                self.cache
                    .get(key)
                    .expect("every requested point is cached by now")
                    .clone(),
            );
        }
        self.hits += points.len() - need;
        Ok(out)
    }
}

impl std::fmt::Debug for CachedEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CachedEvaluator({} cached, {} fresh, {} hits, budget {:?})",
            self.cache.len(),
            self.fresh,
            self.hits,
            self.budget
        )
    }
}

/// Adapter exposing a scalar robust objective over a [`CachedEvaluator`]
/// to the doe-side refinement loop.
struct ObjectiveEvaluator<'a> {
    ev: &'a mut CachedEvaluator,
    weights: Vec<f64>,
    indicator_idx: usize,
    goal: Goal,
    robust: RobustGoal,
}

impl SequentialEvaluator for ObjectiveEvaluator<'_> {
    type Error = CoreError;

    fn eval_batch(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>> {
        let responses = self.ev.evaluate(points)?;
        Ok(responses
            .iter()
            .map(|r| match self.robust {
                RobustGoal::WeightedMean => r.weighted_mean(&self.weights, self.indicator_idx),
                RobustGoal::WorstCase => r.worst_case(self.goal, self.indicator_idx),
            })
            .collect())
    }

    fn fresh_cost(&self, points: &[Vec<f64>]) -> usize {
        self.ev.fresh_cost(points)
    }

    fn remaining_budget(&self) -> usize {
        self.ev.remaining_budget()
    }
}

/// Outcome of a sequential campaign: the best *simulated* tuning, the
/// budget ledger, and the per-iteration audit trail.
#[derive(Debug, Clone)]
pub struct SequentialOutcome {
    /// The doe-side refinement report (per-iteration records, best
    /// point, convergence flag).
    pub report: RefinementReport,
    /// Best evaluated design point, coded units.
    pub best_coded: Vec<f64>,
    /// Best evaluated design point, physical units.
    pub best_physical: Vec<f64>,
    /// The robust objective at the best point — a *simulated* value
    /// (cache-replayed, bit-identical to the original run), not a model
    /// extrapolation.
    pub best_objective: f64,
    /// Fresh design-point evaluations spent (≤ the configured budget).
    pub evals_used: usize,
    /// Simulator invocations spent (`evals_used × ensemble.len()`).
    pub sims_used: usize,
    /// Cache hits served during the run.
    pub cache_hits: usize,
    /// `cache_hits / (cache_hits + evals_used)`.
    pub cache_hit_rate: f64,
}

impl SequentialOutcome {
    /// The audit trail as one canonical line per iteration — a
    /// deterministic rendering (NaN-stable, full float round-trip) that
    /// is bit-identical across runs and thread counts, for
    /// reproducibility checks and logs.
    pub fn audit_lines(&self) -> Vec<String> {
        self.report
            .iterations
            .iter()
            .map(|r| {
                format!(
                    "iter={} center={:?} half={:?} points={} fresh={} second_order={} \
                     r2={:?} pred_r2={:?} curvature={:?} decision={} best={:?}",
                    r.iteration,
                    r.center,
                    r.half_width,
                    r.n_points,
                    r.n_fresh,
                    r.second_order,
                    r.r_squared,
                    r.predicted_r_squared,
                    r.curvature_ratio,
                    r.decision,
                    r.best_value,
                )
            })
            .collect()
    }
}

/// A budget-capped sequential refinement campaign over a scenario
/// ensemble: the run-time counterpart of the one-shot
/// [`crate::flow::DoeFlow`].
///
/// Where `DoeFlow` spends its whole simulation budget on one fixed
/// design and trusts one global quadratic, `SequentialCampaign` spends
/// it adaptively — screen, ascend, augment, shrink — through a
/// [`CachedEvaluator`], and returns the best tuning it actually
/// *simulated*. The budget is a hard cap on fresh design-point
/// evaluations (each costing `ensemble.len()` simulator runs), enforced
/// both by the loop (which never submits an unaffordable batch) and by
/// the evaluator (which refuses one).
///
/// # Example
///
/// ```
/// use ehsim_core::experiment::{EnsembleCampaign, PolicyFactorSet, PolicyFactors};
/// use ehsim_core::indicators::Indicator;
/// use ehsim_core::scenario::{Scenario, ScenarioEnsemble};
/// use ehsim_core::sequential::SequentialCampaign;
/// use ehsim_doe::optimize::Goal;
///
/// # fn main() -> Result<(), ehsim_core::CoreError> {
/// // A 2-factor (tuning-only) ensemble campaign, 20-point budget.
/// let campaign = EnsembleCampaign::adaptive(
///     PolicyFactors::standard(PolicyFactorSet::Static),
///     ScenarioEnsemble::uniform(vec![
///         Scenario::stationary_machine(60.0),
///         Scenario::fading_machine(60.0),
///     ])?,
///     vec![Indicator::PacketsPerHour],
/// )?;
/// let outcome = SequentialCampaign::new(campaign, 0, Goal::Maximize, 20)?
///     .with_threads(2)
///     .run()?;
/// assert!(outcome.evals_used <= 20, "hard budget");
/// assert_eq!(outcome.sims_used, outcome.evals_used * 2);
/// assert_eq!(outcome.best_coded.len(), 2);
/// assert!(!outcome.audit_lines().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialCampaign {
    campaign: EnsembleCampaign,
    indicator_idx: usize,
    goal: Goal,
    robust: RobustGoal,
    budget: usize,
    threads: usize,
    refinement: RefinementConfig,
}

impl SequentialCampaign {
    /// Creates a campaign optimising `indicator_idx`'s weighted mean
    /// across the ensemble under `budget` fresh design-point
    /// evaluations, with 4 worker threads and default refinement
    /// settings.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a bad indicator index or a
    /// zero budget.
    pub fn new(
        campaign: EnsembleCampaign,
        indicator_idx: usize,
        goal: Goal,
        budget: usize,
    ) -> Result<Self> {
        if indicator_idx >= campaign.indicators().len() {
            return Err(CoreError::invalid(format!(
                "no indicator {indicator_idx} in a {}-indicator campaign",
                campaign.indicators().len()
            )));
        }
        if budget == 0 {
            return Err(CoreError::invalid("budget must be at least one evaluation"));
        }
        let refinement = RefinementConfig::new(goal, campaign.space().k());
        Ok(SequentialCampaign {
            campaign,
            indicator_idx,
            goal,
            robust: RobustGoal::WeightedMean,
            budget,
            threads: 4,
            refinement,
        })
    }

    /// Switches the robust aggregation (default weighted mean).
    pub fn with_robust(mut self, robust: RobustGoal) -> Self {
        self.robust = robust;
        self
    }

    /// Sets the simulation worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the refinement configuration (`goal`, `k`, and the
    /// coded `domain` are kept in sync with the campaign — a
    /// [`crate::space::DesignSpace`] always codes its factors over
    /// `[-1, 1]` — and cannot be changed here).
    pub fn with_refinement(mut self, mut refinement: RefinementConfig) -> Self {
        refinement.goal = self.goal;
        refinement.k = self.campaign.space().k();
        refinement.domain = (-1.0, 1.0);
        self.refinement = refinement;
        self
    }

    /// The underlying ensemble campaign.
    pub fn campaign(&self) -> &EnsembleCampaign {
        &self.campaign
    }

    /// The hard budget of fresh design-point evaluations.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Runs the refinement to completion.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if the budget cannot afford even
    /// the first screening design; propagates simulation and fitting
    /// errors.
    pub fn run(&self) -> Result<SequentialOutcome> {
        let mut cached =
            CachedEvaluator::new(self.campaign.clone(), self.threads).with_budget(self.budget);
        let weights = self.campaign.ensemble().weights();
        let loop_ = RefinementLoop::new(self.refinement.clone()).map_err(CoreError::from)?;
        let report = {
            let mut objective = ObjectiveEvaluator {
                ev: &mut cached,
                weights,
                indicator_idx: self.indicator_idx,
                goal: self.goal,
                robust: self.robust,
            };
            loop_.run(&mut objective).map_err(|e| match e {
                SequentialError::Eval(c) => c,
                SequentialError::Doe(d) => CoreError::Doe(d),
            })?
        };
        let best_coded = report.best_point.clone();
        let best_physical = self.campaign.space().decode(&best_coded);
        Ok(SequentialOutcome {
            best_objective: report.best_value,
            best_coded,
            best_physical,
            evals_used: cached.fresh_evals(),
            sims_used: cached.sims_used(),
            cache_hits: cached.cache_hits(),
            cache_hit_rate: cached.hit_rate(),
            report,
        })
    }

    /// Verifies a coded design point with *fresh* simulations (no
    /// cache): one batched pass over every scenario, returning the full
    /// ensemble result.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn fresh_verify(&self, coded: &[f64]) -> Result<EnsembleCampaignResult> {
        let design = Design::new(
            self.campaign.space().k(),
            vec![coded.to_vec()],
            "sequential-verify",
        )
        .map_err(CoreError::from)?;
        self.campaign.run_design(&design, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{PolicyFactorSet, PolicyFactors, StandardFactors};
    use crate::indicators::Indicator;
    use crate::scenario::{Scenario, ScenarioEnsemble};

    fn tiny_ensemble(duration_s: f64) -> ScenarioEnsemble {
        ScenarioEnsemble::new(vec![
            (Scenario::stationary_machine(duration_s), 0.7),
            (Scenario::fading_machine(duration_s), 0.3),
        ])
        .unwrap()
    }

    fn tiny_campaign() -> EnsembleCampaign {
        EnsembleCampaign::adaptive(
            PolicyFactors::standard(PolicyFactorSet::Static),
            tiny_ensemble(60.0),
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap()
    }

    #[test]
    fn cache_hits_are_bit_identical_and_thread_invariant() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.5, -0.5],
            vec![0.0, 0.0], // in-batch replicate
        ];
        let mut a = CachedEvaluator::new(tiny_campaign(), 1);
        let mut b = CachedEvaluator::new(tiny_campaign(), 8);
        let ra = a.evaluate(&points).unwrap();
        let rb = b.evaluate(&points).unwrap();
        assert_eq!(ra, rb, "thread count must not change cached responses");
        assert_eq!(a.fresh_evals(), 2);
        assert_eq!(a.cache_hits(), 1);
        // Replay from cache is bit-identical to the fresh batch.
        let replay = a.evaluate(&points).unwrap();
        for (x, y) in ra.iter().zip(replay.iter()) {
            for (rx, ry) in x.per_scenario.iter().zip(y.per_scenario.iter()) {
                for (vx, vy) in rx.iter().zip(ry.iter()) {
                    assert_eq!(vx.to_bits(), vy.to_bits());
                }
            }
        }
        assert_eq!(a.fresh_evals(), 2, "replay costs nothing");
        assert!(a.hit_rate() > 0.5);
        assert_eq!(a.sims_used(), 4);
    }

    #[test]
    fn batch_composition_does_not_change_results() {
        // Same points evaluated one-by-one vs in one batch: identical
        // bits (each scheduler job is an independent simulation).
        let pts = vec![vec![0.2, 0.3], vec![-0.4, 0.1], vec![0.9, -0.9]];
        let mut one = CachedEvaluator::new(tiny_campaign(), 4);
        let batched = one.evaluate(&pts).unwrap();
        let mut split = CachedEvaluator::new(tiny_campaign(), 4);
        for (i, p) in pts.iter().enumerate() {
            let r = split.evaluate(std::slice::from_ref(p)).unwrap();
            assert_eq!(r[0], batched[i], "point {i}");
        }
    }

    #[test]
    fn budget_is_enforced_before_simulating() {
        let mut ev = CachedEvaluator::new(tiny_campaign(), 2).with_budget(1);
        let err = ev.evaluate(&[vec![0.0, 0.0], vec![0.5, 0.5]]).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        // Nothing was spent by the refused batch.
        assert_eq!(ev.fresh_evals(), 0);
        assert_eq!(ev.remaining_budget(), 1);
        // An affordable batch still works, then the budget closes.
        ev.evaluate(&[vec![0.0, 0.0]]).unwrap();
        assert_eq!(ev.remaining_budget(), 0);
        // Cached points stay free forever.
        ev.evaluate(&[vec![0.0, 0.0]]).unwrap();
        assert!(ev.evaluate(&[vec![0.1, 0.1]]).is_err());
    }

    #[test]
    fn sequential_campaign_respects_budget_and_audits() {
        let budget = 18;
        let outcome = SequentialCampaign::new(tiny_campaign(), 0, Goal::Maximize, budget)
            .unwrap()
            .with_threads(4)
            .run()
            .unwrap();
        assert!(outcome.evals_used <= budget);
        assert_eq!(outcome.sims_used, outcome.evals_used * 2);
        assert_eq!(outcome.best_coded.len(), 2);
        assert_eq!(outcome.best_physical.len(), 2);
        assert!(outcome.best_objective.is_finite());
        let lines = outcome.audit_lines();
        assert_eq!(lines.len(), outcome.report.iterations.len());
        assert!(lines[0].starts_with("iter=0 "));
        // The reported best is a *simulated* value: a fresh
        // verification at the best point reproduces it exactly for the
        // weighted-mean objective.
        let verify = SequentialCampaign::new(tiny_campaign(), 0, Goal::Maximize, budget)
            .unwrap()
            .fresh_verify(&outcome.best_coded)
            .unwrap();
        let agg = verify.aggregate.responses[0][0];
        assert_eq!(
            agg.to_bits(),
            outcome.best_objective.to_bits(),
            "cache-replayed best must equal a fresh simulation bit-for-bit"
        );
    }

    #[test]
    fn worst_case_objective_is_supported() {
        let outcome = SequentialCampaign::new(tiny_campaign(), 0, Goal::Maximize, 15)
            .unwrap()
            .with_robust(RobustGoal::WorstCase)
            .with_threads(2)
            .run()
            .unwrap();
        // The worst case equals the min across scenarios at the best
        // point, fresh-verified.
        let verify = SequentialCampaign::new(tiny_campaign(), 0, Goal::Maximize, 15)
            .unwrap()
            .fresh_verify(&outcome.best_coded)
            .unwrap();
        let worst = verify
            .per_scenario
            .iter()
            .map(|sc| sc.responses[0][0])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(worst.to_bits(), outcome.best_objective.to_bits());
    }

    #[test]
    fn composes_with_standard_factors() {
        // Four-factor standard space: the screen is 2^4 + 1 = 17
        // points, so a 22-point budget covers one screen + a short
        // ascent before exhausting.
        let campaign = EnsembleCampaign::standard(
            StandardFactors::default(),
            tiny_ensemble(30.0),
            vec![Indicator::PacketsPerHour],
        )
        .unwrap();
        let outcome = SequentialCampaign::new(campaign, 0, Goal::Maximize, 22)
            .unwrap()
            .with_threads(8)
            .run()
            .unwrap();
        assert!(outcome.evals_used <= 22);
        assert_eq!(outcome.best_coded.len(), 4);
    }

    #[test]
    fn validation() {
        assert!(SequentialCampaign::new(tiny_campaign(), 9, Goal::Maximize, 10).is_err());
        assert!(SequentialCampaign::new(tiny_campaign(), 0, Goal::Maximize, 0).is_err());
        // Budget too small for even one screen (2^2 + 1 = 5 points).
        let err = SequentialCampaign::new(tiny_campaign(), 0, Goal::Maximize, 3)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
