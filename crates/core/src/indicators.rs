//! Node performance indicators — the responses the RSMs model.
//!
//! These are the scalar figures of merit the DATE'13 flow fits response
//! surfaces to. The paper's evaluation centres on delivered application
//! throughput and energy headroom under harvester tuning; each variant
//! below notes which reconstructed paper artifact (the e1–e9 experiment
//! binaries, see `ehsim-bench`) it primarily feeds.

use ehsim_node::{NodeConfig, NodeMetrics};
use std::fmt;

/// A scalar performance indicator extracted from a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Indicator {
    /// Application packets delivered per hour — the paper's headline
    /// service metric (the quantity being maximised in the optimisation
    /// experiments; the objective of Tables E6/E9 and the y-axis of the
    /// Figure E4 trade-off front).
    PacketsPerHour,
    /// Fraction of time the node was powered — the availability view of
    /// the same energy budget, complementing [`Indicator::PacketsPerHour`].
    UptimeFraction,
    /// Brown-out margin: minimum storage voltage minus `v_off` (V);
    /// negative values mean the node browned out. The paper's
    /// feasibility constraint — the floor applied in the constrained
    /// optimisations of Tables E6/E9 and the x-axis of Figure E4.
    BrownoutMarginV,
    /// Fraction of consumed energy spent on the tuning subsystem
    /// (actuator moves plus frequency measurements) — the cost side of
    /// the paper's tunable-harvester argument, quantified in the
    /// Scenario E5 tuning-benefit experiment.
    TuningOverheadFraction,
    /// Mean harvested power (µW) — the supply side of the energy
    /// balance; the response surfaces of Figure E3 show how it moves
    /// with the design factors.
    AvgHarvestPowerUw,
    /// Storage voltage at the end of the run (V) — the raw state used
    /// to close the energy ledger.
    FinalStorageV,
    /// Net stored-energy change over the run (J): positive means the
    /// node ran energy-positive — the sustainability check behind the
    /// long-horizon experiments.
    EnergyBalanceJ,
    /// Number of actuator retunes — how hard the closed-loop tuning
    /// controller worked; paired with
    /// [`Indicator::TuningOverheadFraction`] in Scenario E5.
    RetuneCount,
}

impl Indicator {
    /// All indicators, in canonical order.
    pub fn all() -> Vec<Indicator> {
        vec![
            Indicator::PacketsPerHour,
            Indicator::UptimeFraction,
            Indicator::BrownoutMarginV,
            Indicator::TuningOverheadFraction,
            Indicator::AvgHarvestPowerUw,
            Indicator::FinalStorageV,
            Indicator::EnergyBalanceJ,
            Indicator::RetuneCount,
        ]
    }

    /// Canonical short name (CSV headers, reports).
    pub fn name(&self) -> &'static str {
        match self {
            Indicator::PacketsPerHour => "packets_per_hour",
            Indicator::UptimeFraction => "uptime_fraction",
            Indicator::BrownoutMarginV => "brownout_margin_v",
            Indicator::TuningOverheadFraction => "tuning_overhead",
            Indicator::AvgHarvestPowerUw => "avg_harvest_uw",
            Indicator::FinalStorageV => "final_storage_v",
            Indicator::EnergyBalanceJ => "energy_balance_j",
            Indicator::RetuneCount => "retune_count",
        }
    }

    /// Extracts the indicator value from a run's metrics.
    pub fn extract(&self, metrics: &NodeMetrics, cfg: &NodeConfig) -> f64 {
        match self {
            Indicator::PacketsPerHour => {
                metrics.packets_delivered as f64 * 3600.0 / metrics.duration_s
            }
            Indicator::UptimeFraction => metrics.uptime_fraction,
            Indicator::BrownoutMarginV => metrics.min_v_store - cfg.thresholds.v_off,
            Indicator::TuningOverheadFraction => {
                let tuning = metrics.tuning_energy_j
                    + metrics.measurement_count as f64 * cfg.tuning.measure_energy_j
                        / cfg.regulator.efficiency;
                if metrics.consumed_energy_j > 0.0 {
                    tuning / metrics.consumed_energy_j
                } else {
                    0.0
                }
            }
            Indicator::AvgHarvestPowerUw => metrics.avg_harvest_power_w * 1e6,
            Indicator::FinalStorageV => metrics.final_v_store,
            Indicator::EnergyBalanceJ => {
                cfg.storage.energy_j(metrics.final_v_store) - cfg.storage.energy_j(cfg.v_store0)
            }
            Indicator::RetuneCount => metrics.retune_count as f64,
        }
    }
}

impl fmt::Display for Indicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_node::SystemSimulator;
    use ehsim_vibration::Sine;

    #[test]
    fn extraction_consistency() {
        let cfg = NodeConfig::default_node();
        let f = cfg.harvester.resonant_frequency(cfg.initial_position);
        let src = Sine::new(0.9, f).unwrap();
        let m = SystemSimulator::new(cfg.clone())
            .unwrap()
            .run(&src, 600.0)
            .unwrap();
        let pph = Indicator::PacketsPerHour.extract(&m, &cfg);
        assert!((pph - m.packets_delivered as f64 * 6.0).abs() < 1e-9);
        let margin = Indicator::BrownoutMarginV.extract(&m, &cfg);
        assert!(margin > 0.0, "node should not brown out on resonance");
        let uptime = Indicator::UptimeFraction.extract(&m, &cfg);
        assert!((0.0..=1.0).contains(&uptime));
        let overhead = Indicator::TuningOverheadFraction.extract(&m, &cfg);
        assert!((0.0..=1.0).contains(&overhead), "overhead = {overhead}");
        let harvest = Indicator::AvgHarvestPowerUw.extract(&m, &cfg);
        assert!(harvest > 0.0);
    }

    #[test]
    fn names_are_unique() {
        let all = Indicator::all();
        let mut names: Vec<&str> = all.iter().map(|i| i.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        for i in &all {
            assert!(!i.to_string().is_empty());
        }
    }
}
