//! Fleet-level DoE campaigns: network indicators as RSM responses.
//!
//! The single-node [`crate::experiment::Campaign`] maps a coded design
//! point to one [`ehsim_node::NodeConfig`] and simulates one node; a
//! [`FleetCampaign`] maps a coded point to a whole
//! [`ehsim_net::FleetSpec`] — typically sweeping a shared tuning, or a
//! per-cluster tuning vector, across hundreds or thousands of nodes —
//! and extracts [`FleetIndicator`]s from the resulting
//! [`FleetMetrics`]. The point-to-spec mapping is an arbitrary
//! closure, so design factors can drive anything the spec expresses:
//! node configs (per cluster or fleet-wide), the radio model, the
//! routing policy, the topology itself.
//!
//! Parallelism lives *inside* each fleet run (the fleet simulator's
//! deterministic node-phase scheduler), so design points are evaluated
//! sequentially; with fleets of hundreds of nodes per point, the node
//! phase saturates the machine and a second scheduling layer would buy
//! nothing. Responses are bit-identical for any thread count — the
//! fleet layer's determinism contract carries through unchanged.

use crate::space::DesignSpace;
use crate::{CampaignResult, CoreError, Result};
use ehsim_doe::{fit, Design, FittedModel, ModelSpec};
use ehsim_net::{FleetMetrics, FleetSimulator, FleetSpec};
use std::sync::Arc;
// lint:allow(D2): wall-clock feeds the reporting-only `wall` duration, never result bytes
use std::time::Instant;

/// A scalar fleet-level performance indicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetIndicator {
    /// Packets delivered *to the sink*, per hour, summed over the
    /// fleet — the network-level service metric (origination net of
    /// relay losses).
    DeliveredPerHour,
    /// Delivered / originated packets.
    DeliveryFraction,
    /// Mean relay energy per forwarded packet-hop (µJ).
    HopRelayEnergyUj,
    /// Earliest relay-exhaustion time as a fraction of the run
    /// (1 = no node died relaying).
    FirstDeathFraction,
    /// Population spread (std dev) of end-of-run residual energy
    /// headroom across the fleet (mJ) — the energy-balance imbalance
    /// the per-cluster tuning arm tries to shrink.
    ResidualSpreadMj,
    /// Worst per-node brown-out margin `min_v_store − v_off` (V); the
    /// fleet-wide feasibility floor.
    MinBrownoutMarginV,
    /// Mean per-node uptime fraction.
    MeanUptimeFraction,
    /// Epoch boundaries at which routes were recomputed around
    /// browned-out relays (0 for a static-routing run) — the
    /// route-repair activity of a multi-epoch fleet run.
    RouteRepairs,
    /// Nodes with no route to the sink under the final epoch's routes.
    UnreachableNodes,
}

impl FleetIndicator {
    /// All fleet indicators, in canonical order.
    pub fn all() -> Vec<FleetIndicator> {
        vec![
            FleetIndicator::DeliveredPerHour,
            FleetIndicator::DeliveryFraction,
            FleetIndicator::HopRelayEnergyUj,
            FleetIndicator::FirstDeathFraction,
            FleetIndicator::ResidualSpreadMj,
            FleetIndicator::MinBrownoutMarginV,
            FleetIndicator::MeanUptimeFraction,
            FleetIndicator::RouteRepairs,
            FleetIndicator::UnreachableNodes,
        ]
    }

    /// Canonical short name (CSV headers, reports).
    pub fn name(&self) -> &'static str {
        match self {
            FleetIndicator::DeliveredPerHour => "delivered_per_hour",
            FleetIndicator::DeliveryFraction => "delivery_fraction",
            FleetIndicator::HopRelayEnergyUj => "hop_relay_energy_uj",
            FleetIndicator::FirstDeathFraction => "first_death_fraction",
            FleetIndicator::ResidualSpreadMj => "residual_spread_mj",
            FleetIndicator::MinBrownoutMarginV => "min_brownout_margin_v",
            FleetIndicator::MeanUptimeFraction => "mean_uptime_fraction",
            FleetIndicator::RouteRepairs => "route_repairs",
            FleetIndicator::UnreachableNodes => "unreachable_nodes",
        }
    }

    /// Extracts the indicator value from a fleet run's metrics.
    pub fn extract(&self, m: &FleetMetrics) -> f64 {
        match self {
            FleetIndicator::DeliveredPerHour => m.packets_delivered * 3600.0 / m.duration_s,
            FleetIndicator::DeliveryFraction => m.delivery_fraction,
            FleetIndicator::HopRelayEnergyUj => m.mean_hop_relay_energy_j * 1e6,
            FleetIndicator::FirstDeathFraction => m.first_death_s / m.duration_s,
            FleetIndicator::ResidualSpreadMj => m.residual_spread_j * 1e3,
            FleetIndicator::MinBrownoutMarginV => m.min_brownout_margin_v,
            FleetIndicator::MeanUptimeFraction => m.mean_uptime_fraction,
            FleetIndicator::RouteRepairs => f64::from(m.route_repairs),
            FleetIndicator::UnreachableNodes => f64::from(m.unreachable_nodes),
        }
    }
}

impl std::fmt::Display for FleetIndicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps a coded design point to the fleet it describes.
pub type ConfigureFleet = Arc<dyn Fn(&[f64]) -> FleetSpec + Send + Sync>;

/// A fleet-level simulation campaign: design space + point-to-fleet
/// mapping + fleet indicators.
#[derive(Clone)]
pub struct FleetCampaign {
    space: DesignSpace,
    configure: ConfigureFleet,
    indicators: Vec<FleetIndicator>,
    threads: usize,
}

impl FleetCampaign {
    /// Creates a fleet campaign. `configure` receives **coded** design
    /// points (the space's `decode` is available for physical
    /// factors).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if no indicators are given.
    pub fn new(
        space: DesignSpace,
        configure: ConfigureFleet,
        indicators: Vec<FleetIndicator>,
    ) -> Result<Self> {
        if indicators.is_empty() {
            return Err(CoreError::invalid("at least one fleet indicator required"));
        }
        Ok(FleetCampaign {
            space,
            configure,
            indicators,
            threads: 1,
        })
    }

    /// Sets the node-phase worker-thread count used *inside* each
    /// fleet run (responses are bit-identical for any value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The fleet indicators, in response-column order.
    pub fn indicators(&self) -> &[FleetIndicator] {
        &self.indicators
    }

    /// Builds (and validates) the fleet at a coded point without
    /// running it. Per-node preparation runs on the campaign's
    /// node-phase threads (the result is thread-count-invariant —
    /// the fleet layer's parallel-prep contract).
    ///
    /// # Errors
    ///
    /// Propagates fleet validation errors ([`CoreError::Fleet`]).
    pub fn fleet_at(&self, coded: &[f64]) -> Result<FleetSimulator> {
        Ok(FleetSimulator::prepare(
            (self.configure)(coded),
            self.threads,
        )?)
    }

    /// Runs one fleet at a coded point and returns the indicator
    /// vector.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on factor-count mismatch;
    /// [`CoreError::Fleet`] on fleet validation or simulation
    /// failure (smallest failing node).
    pub fn evaluate_coded(&self, coded: &[f64]) -> Result<Vec<f64>> {
        if coded.len() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "point has {} factors, space has {}",
                coded.len(),
                self.space.k()
            )));
        }
        let outcome = self.fleet_at(coded)?.run(self.threads)?;
        Ok(self
            .indicators
            .iter()
            .map(|ind| ind.extract(&outcome.metrics))
            .collect())
    }

    /// Runs every design point (sequentially — see the module docs for
    /// why the parallelism lives inside each fleet run).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on factor-count mismatch;
    /// propagates the first fleet failure.
    pub fn run_design(&self, design: &Design) -> Result<CampaignResult> {
        if design.k() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "design has {} factors, space has {}",
                design.k(),
                self.space.k()
            )));
        }
        let start = Instant::now(); // lint:allow(D2): fleet wall time is reporting-only, never a response
        let points: Vec<Vec<f64>> = design.points().to_vec();
        let mut responses = Vec::with_capacity(points.len());
        for p in &points {
            responses.push(self.evaluate_coded(p)?);
        }
        let physical: Vec<Vec<f64>> = points.iter().map(|p| self.space.decode(p)).collect();
        let sim_count = points.len();
        Ok(CampaignResult {
            coded: points,
            physical,
            responses,
            sim_count,
            wall: start.elapsed(),
        })
    }

    /// Fits one quadratic RSM per indicator from a campaign result.
    ///
    /// # Errors
    ///
    /// [`CoreError::Doe`] if the design cannot support a quadratic
    /// model (too few distinct points).
    pub fn fit_quadratic(&self, result: &CampaignResult) -> Result<Vec<FittedModel>> {
        let spec = ModelSpec::quadratic(self.space.k())?;
        self.indicators
            .iter()
            .enumerate()
            .map(|(idx, _)| {
                fit(&spec, &result.coded, &result.response_column(idx)).map_err(CoreError::from)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{DesignSpace, Factor};
    use ehsim_doe::design::factorial::full_factorial_2k;
    use ehsim_net::{FleetSpec, Placement, Point};
    use ehsim_node::NodeConfig;

    fn tiny_campaign() -> FleetCampaign {
        let space = DesignSpace::new(vec![
            Factor::new("c_store_f", 0.05, 0.2).unwrap(),
            Factor::new("task_period_s", 2.0, 12.0).unwrap(),
        ])
        .unwrap();
        let sp = space.clone();
        let configure: ConfigureFleet = Arc::new(move |coded: &[f64]| {
            let phys = sp.decode(coded);
            let mut cfg = NodeConfig::default_node();
            cfg.tick_s = 0.5;
            cfg.storage.capacitance = phys[0];
            cfg.task.period_s = phys[1];
            let positions = Placement::UniformRandom {
                n: 8,
                width_m: 50.0,
                height_m: 50.0,
                seed: 3,
            }
            .positions()
            .expect("valid placement");
            FleetSpec::homogeneous(cfg, positions, Point::new(25.0, 25.0), 22.0, 20.0)
        });
        FleetCampaign::new(
            space,
            configure,
            vec![
                FleetIndicator::DeliveredPerHour,
                FleetIndicator::MinBrownoutMarginV,
            ],
        )
        .unwrap()
        .with_threads(2)
    }

    #[test]
    fn fleet_campaign_runs_a_design_and_fits() {
        let campaign = tiny_campaign();
        let design = full_factorial_2k(2).unwrap();
        let result = campaign.run_design(&design).unwrap();
        assert_eq!(result.sim_count, 4);
        assert_eq!(result.responses[0].len(), 2);
        // 2^2 cannot support a quadratic in 2 factors (6 terms) — the
        // fit must error, not panic.
        assert!(campaign.fit_quadratic(&result).is_err());
    }

    #[test]
    fn responses_are_thread_count_invariant() {
        let campaign = tiny_campaign();
        let a = campaign.evaluate_coded(&[0.0, 0.0]).unwrap();
        let b = tiny_campaign()
            .with_threads(8)
            .evaluate_coded(&[0.0, 0.0])
            .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn indicator_names_are_stable() {
        let names: Vec<&str> = FleetIndicator::all().iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), 9);
        assert!(names.contains(&"delivered_per_hour"));
        assert!(names.contains(&"residual_spread_mj"));
        assert!(names.contains(&"route_repairs"));
        assert!(names.contains(&"unreachable_nodes"));
    }
}
