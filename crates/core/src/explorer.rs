//! Instant design-space exploration on fitted surrogates: axis sweeps,
//! 2-D response surfaces, and terminal-friendly contour rendering.

use crate::flow::SurrogateSet;
use crate::{CoreError, Result};
use ehsim_numeric::Matrix;

/// A one-factor sweep of a surrogate prediction.
#[derive(Debug, Clone)]
pub struct Sweep1D {
    /// Physical factor values.
    pub xs: Vec<f64>,
    /// Predicted indicator values.
    pub ys: Vec<f64>,
    /// Name of the swept factor.
    pub factor: String,
    /// Name of the predicted indicator.
    pub indicator: String,
}

/// A two-factor response-surface grid.
#[derive(Debug, Clone)]
pub struct Sweep2D {
    /// Physical values of the first (x) factor.
    pub xs: Vec<f64>,
    /// Physical values of the second (y) factor.
    pub ys: Vec<f64>,
    /// Predictions: `z[(i, j)]` at `(ys[i], xs[j])`.
    pub z: Matrix,
    /// Name of the x factor.
    pub x_factor: String,
    /// Name of the y factor.
    pub y_factor: String,
    /// Name of the predicted indicator.
    pub indicator: String,
}

/// Sweeps one factor across its coded range with the remaining factors
/// held at `base` (coded units).
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] on bad indices, `n < 2`, or a
/// mismatched base point.
pub fn sweep_1d(
    surrogates: &SurrogateSet,
    indicator_idx: usize,
    factor_idx: usize,
    base: &[f64],
    n: usize,
) -> Result<Sweep1D> {
    let k = surrogates.space().k();
    if factor_idx >= k {
        return Err(CoreError::invalid(format!("no factor {factor_idx}")));
    }
    if base.len() != k {
        return Err(CoreError::invalid("base point has wrong dimension"));
    }
    if n < 2 {
        return Err(CoreError::invalid("need at least 2 sweep points"));
    }
    let factor = &surrogates.space().factors()[factor_idx];
    let indicator = surrogates
        .indicators()
        .get(indicator_idx)
        .ok_or_else(|| CoreError::invalid(format!("no indicator {indicator_idx}")))?;
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut point = base.to_vec();
    for i in 0..n {
        let coded = -1.0 + 2.0 * i as f64 / (n as f64 - 1.0);
        point[factor_idx] = coded;
        xs.push(factor.decode(coded));
        ys.push(surrogates.predict(indicator_idx, &point)?);
    }
    Ok(Sweep1D {
        xs,
        ys,
        factor: factor.name().to_string(),
        indicator: indicator.name().to_string(),
    })
}

/// Evaluates a 2-D response-surface grid over two factors with the
/// remaining factors held at `base` (coded units).
///
/// # Errors
///
/// Same conditions as [`sweep_1d`], plus identical factor indices.
pub fn sweep_2d(
    surrogates: &SurrogateSet,
    indicator_idx: usize,
    x_factor: usize,
    y_factor: usize,
    base: &[f64],
    n: usize,
) -> Result<Sweep2D> {
    let k = surrogates.space().k();
    if x_factor >= k || y_factor >= k {
        return Err(CoreError::invalid("factor index out of range"));
    }
    if x_factor == y_factor {
        return Err(CoreError::invalid("x and y factors must differ"));
    }
    if base.len() != k {
        return Err(CoreError::invalid("base point has wrong dimension"));
    }
    if n < 2 {
        return Err(CoreError::invalid("need at least 2 grid points per axis"));
    }
    let fx = &surrogates.space().factors()[x_factor];
    let fy = &surrogates.space().factors()[y_factor];
    let indicator = surrogates
        .indicators()
        .get(indicator_idx)
        .ok_or_else(|| CoreError::invalid(format!("no indicator {indicator_idx}")))?;

    let coded_axis: Vec<f64> = (0..n)
        .map(|i| -1.0 + 2.0 * i as f64 / (n as f64 - 1.0))
        .collect();
    let xs: Vec<f64> = coded_axis.iter().map(|&c| fx.decode(c)).collect();
    let ys: Vec<f64> = coded_axis.iter().map(|&c| fy.decode(c)).collect();
    let mut z = Matrix::zeros(n, n);
    let mut point = base.to_vec();
    for (i, &cy) in coded_axis.iter().enumerate() {
        for (j, &cx) in coded_axis.iter().enumerate() {
            point[x_factor] = cx;
            point[y_factor] = cy;
            z[(i, j)] = surrogates.predict(indicator_idx, &point)?;
        }
    }
    Ok(Sweep2D {
        xs,
        ys,
        z,
        x_factor: fx.name().to_string(),
        y_factor: fy.name().to_string(),
        indicator: indicator.name().to_string(),
    })
}

impl Sweep2D {
    /// Renders the surface as an ASCII density map (rows top-down by
    /// descending y), suitable for terminal output in the examples and
    /// experiment harnesses.
    pub fn ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let n = self.xs.len();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            for j in 0..n {
                lo = lo.min(self.z[(i, j)]);
                hi = hi.max(self.z[(i, j)]);
            }
        }
        let range = (hi - lo).max(1e-300);
        let mut out = String::new();
        out.push_str(&format!(
            "{} over {} (x) vs {} (y); '@' = {:.4e}, ' ' = {:.4e}\n",
            self.indicator, self.x_factor, self.y_factor, hi, lo
        ));
        for i in (0..n).rev() {
            out.push_str(&format!("{:>9.3} |", self.ys[i]));
            for j in 0..n {
                let t = (self.z[(i, j)] - lo) / range;
                let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx] as char);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>9} +{}\n{:>9}  {:<.3} … {:<.3}\n",
            "",
            "-".repeat(n),
            "",
            self.xs[0],
            self.xs[n - 1]
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Campaign, StandardFactors};
    use crate::flow::{DesignChoice, DoeFlow};
    use crate::indicators::Indicator;
    use crate::scenario::Scenario;

    fn surrogates() -> SurrogateSet {
        let campaign = Campaign::standard(
            StandardFactors::default(),
            Scenario::stationary_machine(300.0),
            vec![Indicator::PacketsPerHour],
        )
        .unwrap();
        DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
            .run(&campaign)
            .unwrap()
    }

    #[test]
    fn sweep_1d_shape_and_units() {
        let s = surrogates();
        let base = s.space().center();
        let sw = sweep_1d(&s, 0, 1, &base, 11).unwrap();
        assert_eq!(sw.xs.len(), 11);
        assert_eq!(sw.ys.len(), 11);
        // Physical axis spans the factor's range.
        assert!((sw.xs[0] - 2.0).abs() < 1e-9);
        assert!((sw.xs[10] - 30.0).abs() < 1e-9);
        assert_eq!(sw.factor, "task_period_s");
        assert_eq!(sw.indicator, "packets_per_hour");
    }

    #[test]
    fn sweep_2d_and_ascii() {
        let s = surrogates();
        let base = s.space().center();
        let sw = sweep_2d(&s, 0, 1, 0, &base, 12).unwrap();
        assert_eq!(sw.z.shape(), (12, 12));
        let art = sw.ascii();
        assert!(art.contains("packets_per_hour"));
        assert!(art.lines().count() >= 14);
    }

    #[test]
    fn validation_of_arguments() {
        let s = surrogates();
        let base = s.space().center();
        assert!(sweep_1d(&s, 0, 9, &base, 5).is_err());
        assert!(sweep_1d(&s, 9, 0, &base, 5).is_err());
        assert!(sweep_1d(&s, 0, 0, &base, 1).is_err());
        assert!(sweep_1d(&s, 0, 0, &[0.0], 5).is_err());
        assert!(sweep_2d(&s, 0, 1, 1, &base, 5).is_err());
    }
}
