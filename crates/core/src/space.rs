//! Named design factors with physical ranges and the coded-unit
//! mapping.

use crate::{CoreError, Result};
use std::fmt;

/// One design factor: a name and its physical range.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    name: String,
    low: f64,
    high: f64,
}

impl Factor {
    /// Creates a factor.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if `low >= high` or either bound
    /// is non-finite.
    pub fn new(name: &str, low: f64, high: f64) -> Result<Self> {
        if !(low < high) || !low.is_finite() || !high.is_finite() {
            return Err(CoreError::invalid(format!(
                "factor `{name}` needs finite low < high (got {low}, {high})"
            )));
        }
        Ok(Factor {
            name: name.to_string(),
            low,
            high,
        })
    }

    /// Factor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower physical bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper physical bound.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Maps a coded value (−1 = low, +1 = high) to physical units.
    /// Values outside `[-1, 1]` (e.g. rotatable CCD axial points)
    /// extrapolate linearly but are clamped to stay within 20 % outside
    /// the range, protecting the models from nonphysical inputs.
    pub fn decode(&self, coded: f64) -> f64 {
        let mid = 0.5 * (self.low + self.high);
        let half = 0.5 * (self.high - self.low);
        let physical = mid + coded * half;
        physical.clamp(
            self.low - 0.2 * (self.high - self.low),
            self.high + 0.2 * (self.high - self.low),
        )
    }

    /// Maps a physical value to coded units.
    pub fn encode(&self, physical: f64) -> f64 {
        let mid = 0.5 * (self.low + self.high);
        let half = 0.5 * (self.high - self.low);
        (physical - mid) / half
    }
}

impl fmt::Display for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ∈ [{}, {}]", self.name, self.low, self.high)
    }
}

/// An ordered set of design factors.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    factors: Vec<Factor>,
}

impl DesignSpace {
    /// Creates a design space.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if empty or names repeat.
    pub fn new(factors: Vec<Factor>) -> Result<Self> {
        if factors.is_empty() {
            return Err(CoreError::invalid("design space needs at least one factor"));
        }
        for i in 0..factors.len() {
            for j in (i + 1)..factors.len() {
                if factors[i].name == factors[j].name {
                    return Err(CoreError::invalid(format!(
                        "duplicate factor name `{}`",
                        factors[i].name
                    )));
                }
            }
        }
        Ok(DesignSpace { factors })
    }

    /// Number of factors.
    pub fn k(&self) -> usize {
        self.factors.len()
    }

    /// The factors in order.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Factor lookup by name.
    pub fn factor(&self, name: &str) -> Option<&Factor> {
        self.factors.iter().find(|f| f.name == name)
    }

    /// Index of a factor by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.factors.iter().position(|f| f.name == name)
    }

    /// Decodes a coded point into physical units.
    ///
    /// # Panics
    ///
    /// Panics if `coded.len() != self.k()`.
    pub fn decode(&self, coded: &[f64]) -> Vec<f64> {
        assert_eq!(coded.len(), self.k(), "dimension mismatch");
        self.factors
            .iter()
            .zip(coded.iter())
            .map(|(f, &c)| f.decode(c))
            .collect()
    }

    /// Encodes a physical point into coded units.
    ///
    /// # Panics
    ///
    /// Panics if `physical.len() != self.k()`.
    pub fn encode(&self, physical: &[f64]) -> Vec<f64> {
        assert_eq!(physical.len(), self.k(), "dimension mismatch");
        self.factors
            .iter()
            .zip(physical.iter())
            .map(|(f, &p)| f.encode(p))
            .collect()
    }

    /// The centre of the space in coded units (all zeros).
    pub fn center(&self) -> Vec<f64> {
        vec![0.0; self.k()]
    }
}

impl fmt::Display for DesignSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for factor in &self.factors {
            writeln!(f, "  {factor}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let f = Factor::new("c_store", 0.05, 0.5).unwrap();
        assert!((f.decode(-1.0) - 0.05).abs() < 1e-12);
        assert!((f.decode(1.0) - 0.5).abs() < 1e-12);
        assert!((f.decode(0.0) - 0.275).abs() < 1e-12);
        for p in [0.05, 0.1, 0.3, 0.5] {
            assert!((f.decode(f.encode(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_clamps_extrapolation() {
        let f = Factor::new("x", 0.0, 1.0).unwrap();
        // 20% margin outside the range.
        assert!((f.decode(2.0) - 1.2).abs() < 1e-12);
        assert!((f.decode(-3.0) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn space_lookup() {
        let s = DesignSpace::new(vec![
            Factor::new("a", 0.0, 1.0).unwrap(),
            Factor::new("b", -5.0, 5.0).unwrap(),
        ])
        .unwrap();
        assert_eq!(s.k(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert!(s.factor("c").is_none());
        assert_eq!(s.center(), vec![0.0, 0.0]);
        let phys = s.decode(&[1.0, -1.0]);
        assert_eq!(phys, vec![1.0, -5.0]);
        assert_eq!(s.encode(&phys), vec![1.0, -1.0]);
    }

    #[test]
    fn validation() {
        assert!(Factor::new("x", 1.0, 1.0).is_err());
        assert!(Factor::new("x", f64::NAN, 1.0).is_err());
        assert!(DesignSpace::new(vec![]).is_err());
        assert!(DesignSpace::new(vec![
            Factor::new("a", 0.0, 1.0).unwrap(),
            Factor::new("a", 0.0, 2.0).unwrap(),
        ])
        .is_err());
    }

    #[test]
    fn display_nonempty() {
        let s = DesignSpace::new(vec![Factor::new("a", 0.0, 1.0).unwrap()]).unwrap();
        assert!(!format!("{s}").is_empty());
    }
}
