//! The DoE design flow: design → simulate → fit → validate → explore.

use crate::experiment::{Campaign, CampaignResult};
use crate::indicators::Indicator;
use crate::space::DesignSpace;
use crate::{CoreError, Result};
use ehsim_doe::design::box_behnken::box_behnken;
use ehsim_doe::design::ccd::CentralComposite;
use ehsim_doe::design::doptimal::d_optimal_grid;
use ehsim_doe::design::factorial::full_factorial_3k;
use ehsim_doe::design::lhs::latin_hypercube;
use ehsim_doe::optimize::{optimize_fn, Goal, Optimum};
use ehsim_doe::stepwise::backward_eliminate;
use ehsim_doe::{fit, Design, FittedModel, ModelSpec};
use std::time::{Duration, Instant};

/// Which experimental design plans the simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignChoice {
    /// Face-centred central composite (all runs inside the box).
    FaceCenteredCcd {
        /// Centre-point replicates.
        center_points: usize,
    },
    /// Rotatable central composite (axial points at `α = (2^k)^¼`).
    RotatableCcd {
        /// Centre-point replicates.
        center_points: usize,
    },
    /// Box–Behnken (3 ≤ k ≤ 7).
    BoxBehnken {
        /// Centre-point replicates.
        center_points: usize,
    },
    /// Full three-level factorial (expensive beyond k = 4).
    FullFactorial3,
    /// Seeded Latin hypercube.
    LatinHypercube {
        /// Number of runs.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// D-optimal selection from the 3-level grid for a quadratic model.
    DOptimal {
        /// Number of runs.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl DesignChoice {
    /// Builds the design for `k` factors.
    ///
    /// # Errors
    ///
    /// Propagates the design constructors' validation errors.
    pub fn build(&self, k: usize) -> Result<Design> {
        let d = match self {
            DesignChoice::FaceCenteredCcd { center_points } => CentralComposite::face_centered(k)?
                .with_center_points(*center_points)
                .build()?,
            DesignChoice::RotatableCcd { center_points } => CentralComposite::rotatable(k)?
                .with_center_points(*center_points)
                .build()?,
            DesignChoice::BoxBehnken { center_points } => {
                box_behnken(k)?.with_center_points(*center_points)
            }
            DesignChoice::FullFactorial3 => full_factorial_3k(k)?,
            DesignChoice::LatinHypercube { n, seed } => latin_hypercube(k, *n, *seed)?,
            DesignChoice::DOptimal { n, seed } => {
                d_optimal_grid(&ModelSpec::quadratic(k)?, *n, *seed)?
            }
        };
        Ok(d)
    }
}

/// The DoE-based design flow.
#[derive(Debug, Clone)]
pub struct DoeFlow {
    choice: DesignChoice,
    stepwise_alpha: Option<f64>,
    threads: usize,
}

impl DoeFlow {
    /// Creates a flow with the given design choice, full quadratic
    /// models, and 4 worker threads.
    pub fn new(choice: DesignChoice) -> Self {
        DoeFlow {
            choice,
            stepwise_alpha: None,
            threads: 4,
        }
    }

    /// Enables hierarchy-respecting backward elimination at the given
    /// significance level.
    pub fn with_stepwise(mut self, alpha: f64) -> Self {
        self.stepwise_alpha = Some(alpha);
        self
    }

    /// Sets the simulation worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs the complete flow: build the design, simulate every run,
    /// fit one model per indicator.
    ///
    /// # Errors
    ///
    /// Propagates design, simulation, and fitting errors.
    pub fn run(&self, campaign: &Campaign) -> Result<SurrogateSet> {
        let start = Instant::now();
        let k = campaign.space().k();
        let design = self.choice.build(k)?;
        let result = campaign.run_design(&design, self.threads)?;
        let spec = ModelSpec::quadratic(k)?;
        let mut models = Vec::with_capacity(campaign.indicators().len());
        for (idx, _) in campaign.indicators().iter().enumerate() {
            let y = result.response_column(idx);
            let model = match self.stepwise_alpha {
                None => fit(&spec, &result.coded, &y)?,
                Some(alpha) => backward_eliminate(&spec, &result.coded, &y, alpha)?.model,
            };
            models.push(model);
        }
        Ok(SurrogateSet {
            space: campaign.space().clone(),
            indicators: campaign.indicators().to_vec(),
            models,
            design,
            result,
            build_wall: start.elapsed(),
        })
    }
}

/// The fitted response-surface models for every indicator, plus the
/// campaign data they were built from.
#[derive(Debug, Clone)]
pub struct SurrogateSet {
    space: DesignSpace,
    indicators: Vec<Indicator>,
    models: Vec<FittedModel>,
    design: Design,
    result: CampaignResult,
    build_wall: Duration,
}

/// Validation metrics of one indicator's surrogate against fresh
/// simulations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// Indicator validated.
    pub indicator: Indicator,
    /// Root-mean-square prediction error (physical units).
    pub rmse: f64,
    /// Maximum absolute prediction error.
    pub max_abs_error: f64,
    /// RMSE normalised by the observed response range (%).
    pub rmse_pct_of_range: f64,
    /// Validation R².
    pub r_squared: f64,
}

impl SurrogateSet {
    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The indicators, in model order.
    pub fn indicators(&self) -> &[Indicator] {
        &self.indicators
    }

    /// The experimental design used.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The raw campaign result.
    pub fn campaign_result(&self) -> &CampaignResult {
        &self.result
    }

    /// Wall-clock time of the whole build (simulations + fits).
    pub fn build_wall(&self) -> Duration {
        self.build_wall
    }

    /// The fitted model of one indicator.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn model(&self, idx: usize) -> &FittedModel {
        &self.models[idx]
    }

    /// Index of an indicator within the set.
    pub fn indicator_index(&self, ind: Indicator) -> Option<usize> {
        self.indicators.iter().position(|i| *i == ind)
    }

    /// Predicts an indicator at a coded point — the "practically
    /// instant" exploration primitive.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a bad indicator index or
    /// dimension mismatch.
    pub fn predict(&self, indicator_idx: usize, coded: &[f64]) -> Result<f64> {
        let model = self
            .models
            .get(indicator_idx)
            .ok_or_else(|| CoreError::invalid(format!("no indicator {indicator_idx}")))?;
        if coded.len() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "point has {} coordinates, expected {}",
                coded.len(),
                self.space.k()
            )));
        }
        Ok(model.predict(coded))
    }

    /// Predicts an indicator at a physical point.
    ///
    /// # Errors
    ///
    /// Same as [`SurrogateSet::predict`].
    pub fn predict_physical(&self, indicator_idx: usize, physical: &[f64]) -> Result<f64> {
        if physical.len() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "point has {} coordinates, expected {}",
                physical.len(),
                self.space.k()
            )));
        }
        self.predict(indicator_idx, &self.space.encode(physical))
    }

    /// Validates every surrogate against `n` fresh simulations at
    /// seeded Latin-hypercube points.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn validate(
        &self,
        campaign: &Campaign,
        n: usize,
        seed: u64,
        threads: usize,
    ) -> Result<Vec<ValidationRow>> {
        let lhs = latin_hypercube(self.space.k(), n, seed)?;
        let fresh = campaign.run_design(&lhs, threads)?;
        let mut rows = Vec::with_capacity(self.indicators.len());
        for (idx, ind) in self.indicators.iter().enumerate() {
            let observed = fresh.response_column(idx);
            let predicted: Vec<f64> = fresh
                .coded
                .iter()
                .map(|p| self.models[idx].predict(p))
                .collect();
            let mut sse = 0.0;
            let mut max_err: f64 = 0.0;
            for (p, o) in predicted.iter().zip(observed.iter()) {
                let e = p - o;
                sse += e * e;
                max_err = max_err.max(e.abs());
            }
            let rmse = (sse / n as f64).sqrt();
            let mean = observed.iter().sum::<f64>() / n as f64;
            let tss: f64 = observed.iter().map(|y| (y - mean) * (y - mean)).sum();
            let r2 = if tss > 0.0 { 1.0 - sse / tss } else { 1.0 };
            let lo = observed.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = observed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let range = (hi - lo).max(1e-12);
            rows.push(ValidationRow {
                indicator: *ind,
                rmse,
                max_abs_error: max_err,
                rmse_pct_of_range: 100.0 * rmse / range,
                r_squared: r2,
            });
        }
        Ok(rows)
    }

    /// Optimises one indicator over the coded box on the surrogate.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a bad index.
    pub fn optimize(&self, indicator_idx: usize, goal: Goal, seed: u64) -> Result<Optimum> {
        let model = self
            .models
            .get(indicator_idx)
            .ok_or_else(|| CoreError::invalid(format!("no indicator {indicator_idx}")))?;
        Ok(ehsim_doe::optimize::optimize_model(
            model,
            (-1.0, 1.0),
            goal,
            seed,
        )?)
    }

    /// Constrained optimisation on the surrogates: optimise
    /// `indicator_idx` subject to other indicators staying above given
    /// floors, via an exact-penalty formulation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for bad indices.
    pub fn optimize_constrained(
        &self,
        indicator_idx: usize,
        goal: Goal,
        floors: &[(usize, f64)],
        seed: u64,
    ) -> Result<Optimum> {
        if indicator_idx >= self.models.len() || floors.iter().any(|(i, _)| *i >= self.models.len())
        {
            return Err(CoreError::invalid("indicator index out of range"));
        }
        let sign = match goal {
            Goal::Maximize => 1.0,
            Goal::Minimize => -1.0,
        };
        // Scale the penalty to the objective's observed range so it
        // dominates without destroying the gradient signal.
        let obj_col: Vec<f64> = self
            .result
            .responses
            .iter()
            .map(|r| r[indicator_idx])
            .collect();
        let lo = obj_col.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = obj_col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let penalty_scale = 100.0 * (hi - lo).max(1.0);

        let objective = |x: &[f64]| {
            let mut v = sign * self.models[indicator_idx].predict(x);
            for (ci, floor) in floors {
                let c = self.models[*ci].predict(x);
                if c < *floor {
                    v -= penalty_scale * (floor - c);
                }
            }
            v
        };
        let opt = optimize_fn(
            &objective,
            self.space.k(),
            (-1.0, 1.0),
            Goal::Maximize,
            seed,
            16,
        )?;
        // Report the true (unpenalised) objective value at the winner.
        let value = self.models[indicator_idx].predict(&opt.x);
        Ok(Optimum { x: opt.x, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::StandardFactors;
    use crate::scenario::Scenario;

    fn small_flow_campaign() -> Campaign {
        Campaign::standard(
            StandardFactors::default(),
            Scenario::stationary_machine(300.0),
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap()
    }

    #[test]
    fn design_choices_build() {
        for (choice, expect_runs) in [
            (
                DesignChoice::FaceCenteredCcd { center_points: 3 },
                16 + 8 + 3,
            ),
            (DesignChoice::RotatableCcd { center_points: 1 }, 16 + 8 + 1),
            (DesignChoice::BoxBehnken { center_points: 2 }, 24 + 2),
            (DesignChoice::FullFactorial3, 81),
            (DesignChoice::LatinHypercube { n: 30, seed: 1 }, 30),
        ] {
            let d = choice.build(4).unwrap();
            assert_eq!(d.n_runs(), expect_runs, "{choice:?}");
        }
        let d = DesignChoice::DOptimal { n: 18, seed: 2 }.build(4).unwrap();
        assert_eq!(d.n_runs(), 18);
    }

    #[test]
    fn flow_produces_usable_surrogates() {
        let campaign = small_flow_campaign();
        let flow = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 }).with_threads(4);
        let s = flow.run(&campaign).unwrap();
        assert_eq!(s.indicators().len(), 2);
        assert_eq!(s.campaign_result().sim_count, 16 + 8 + 2);
        // The packets model must be strongly driven by the task period
        // (factor 1): moving from slow to fast sampling raises packets.
        let fast = s.predict(0, &[0.0, -1.0, 0.0, 0.0]).unwrap();
        let slow = s.predict(0, &[0.0, 1.0, 0.0, 0.0]).unwrap();
        assert!(fast > slow, "fast={fast} slow={slow}");
        // Physical-unit prediction agrees with coded prediction.
        let phys = s.space().decode(&[0.0, -1.0, 0.0, 0.0]);
        let via_phys = s.predict_physical(0, &phys).unwrap();
        assert!((via_phys - fast).abs() < 1e-9);
    }

    #[test]
    fn surrogate_optimization_runs() {
        let campaign = small_flow_campaign();
        let s = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
            .run(&campaign)
            .unwrap();
        let best = s.optimize(0, Goal::Maximize, 3).unwrap();
        assert_eq!(best.x.len(), 4);
        // The unconstrained packet maximum is at least as good as the
        // centre.
        let center = s.predict(0, &s.space().center()).unwrap();
        assert!(best.value >= center - 1e-9);

        // Constrained: keep the brown-out margin above 0.2 V.
        let con = s
            .optimize_constrained(0, Goal::Maximize, &[(1, 0.2)], 3)
            .unwrap();
        let margin = s.predict(1, &con.x).unwrap();
        assert!(margin >= 0.15, "margin = {margin}");
    }

    #[test]
    fn bad_indices_rejected() {
        let campaign = small_flow_campaign();
        let s = DoeFlow::new(DesignChoice::LatinHypercube { n: 20, seed: 5 })
            .run(&campaign)
            .unwrap();
        assert!(s.predict(9, &s.space().center()).is_err());
        assert!(s.predict(0, &[0.0]).is_err());
        assert!(s.optimize(9, Goal::Maximize, 0).is_err());
        assert!(s
            .optimize_constrained(0, Goal::Maximize, &[(9, 0.0)], 0)
            .is_err());
    }
}
