//! The DoE design flow: design → simulate → fit → validate → explore —
//! against one scenario or robustly across a whole ensemble.

use crate::experiment::{Campaign, CampaignResult, EnsembleCampaign, EnsembleCampaignResult};
use crate::indicators::Indicator;
use crate::space::DesignSpace;
use crate::{CoreError, Result};
use ehsim_doe::design::box_behnken::box_behnken;
use ehsim_doe::design::ccd::CentralComposite;
use ehsim_doe::design::doptimal::d_optimal_grid;
use ehsim_doe::design::factorial::full_factorial_3k;
use ehsim_doe::design::lhs::latin_hypercube;
use ehsim_doe::optimize::{
    optimize_fn, optimize_model, optimize_robust, robust_objective, Goal, Optimum, RobustGoal,
};
use ehsim_doe::stepwise::backward_eliminate;
use ehsim_doe::{fit, Design, FittedModel, ModelSpec};
// lint:allow(D2): wall-clock feeds reporting-only Duration stats, never surrogate inputs
use std::time::{Duration, Instant};

/// Which experimental design plans the simulation campaign.
///
/// The paper's flow hinges on spending only a *moderate number* of
/// simulations to fit a quadratic RSM; which plan buys the most model
/// accuracy per run is exactly what the Table E8 design-ablation
/// experiment measures. Central composite designs are the paper-style
/// default; the alternatives are included for that comparison.
///
/// # Example
///
/// ```
/// use ehsim_core::flow::DesignChoice;
///
/// // A face-centred CCD for 4 factors: 2^4 cube runs, 2·4 axial runs,
/// // plus the centre replicates.
/// let choice = DesignChoice::FaceCenteredCcd { center_points: 3 };
/// let design = choice.build(4).unwrap();
/// assert_eq!(design.n_runs(), 16 + 8 + 3);
///
/// // A 30-run seeded Latin hypercube over the same factors.
/// let lhs = DesignChoice::LatinHypercube { n: 30, seed: 7 }.build(4).unwrap();
/// assert_eq!(lhs.n_runs(), 30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum DesignChoice {
    /// Face-centred central composite (all runs inside the box).
    FaceCenteredCcd {
        /// Centre-point replicates.
        center_points: usize,
    },
    /// Rotatable central composite (axial points at `α = (2^k)^¼`).
    RotatableCcd {
        /// Centre-point replicates.
        center_points: usize,
    },
    /// Box–Behnken (3 ≤ k ≤ 7).
    BoxBehnken {
        /// Centre-point replicates.
        center_points: usize,
    },
    /// Full three-level factorial (expensive beyond k = 4).
    FullFactorial3,
    /// Seeded Latin hypercube.
    LatinHypercube {
        /// Number of runs.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// D-optimal selection from the 3-level grid for a quadratic model.
    DOptimal {
        /// Number of runs.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl DesignChoice {
    /// Builds the design for `k` factors.
    ///
    /// # Errors
    ///
    /// Propagates the design constructors' validation errors.
    pub fn build(&self, k: usize) -> Result<Design> {
        let d = match self {
            DesignChoice::FaceCenteredCcd { center_points } => CentralComposite::face_centered(k)?
                .with_center_points(*center_points)
                .build()?,
            DesignChoice::RotatableCcd { center_points } => CentralComposite::rotatable(k)?
                .with_center_points(*center_points)
                .build()?,
            DesignChoice::BoxBehnken { center_points } => {
                box_behnken(k)?.with_center_points(*center_points)
            }
            DesignChoice::FullFactorial3 => full_factorial_3k(k)?,
            DesignChoice::LatinHypercube { n, seed } => latin_hypercube(k, *n, *seed)?,
            DesignChoice::DOptimal { n, seed } => {
                d_optimal_grid(&ModelSpec::quadratic(k)?, *n, *seed)?
            }
        };
        Ok(d)
    }
}

/// The DoE-based design flow.
#[derive(Debug, Clone)]
pub struct DoeFlow {
    choice: DesignChoice,
    stepwise_alpha: Option<f64>,
    threads: usize,
}

impl DoeFlow {
    /// Creates a flow with the given design choice, full quadratic
    /// models, and 4 worker threads.
    pub fn new(choice: DesignChoice) -> Self {
        DoeFlow {
            choice,
            stepwise_alpha: None,
            threads: 4,
        }
    }

    /// Enables hierarchy-respecting backward elimination at the given
    /// significance level.
    pub fn with_stepwise(mut self, alpha: f64) -> Self {
        self.stepwise_alpha = Some(alpha);
        self
    }

    /// Sets the simulation worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs the complete flow: build the design, simulate every run,
    /// fit one model per indicator.
    ///
    /// # Errors
    ///
    /// Propagates design, simulation, and fitting errors.
    pub fn run(&self, campaign: &Campaign) -> Result<SurrogateSet> {
        let start = Instant::now(); // lint:allow(D2): flow wall time is reporting-only, never an RSM input
        let k = campaign.space().k();
        let design = self.choice.build(k)?;
        let result = campaign.run_design(&design, self.threads)?;
        let spec = ModelSpec::quadratic(k)?;
        let mut models = Vec::with_capacity(campaign.indicators().len());
        for (idx, _) in campaign.indicators().iter().enumerate() {
            let y = result.response_column(idx);
            models.push(self.fit_column(&spec, &result.coded, &y)?);
        }
        Ok(SurrogateSet {
            space: campaign.space().clone(),
            indicators: campaign.indicators().to_vec(),
            models,
            design,
            result,
            build_wall: start.elapsed(),
        })
    }

    /// Runs the flow across a scenario ensemble: one batched simulation
    /// campaign (every design point × every scenario), then one fitted
    /// quadratic model per indicator *per scenario*, plus models of the
    /// weighted-aggregate responses.
    ///
    /// # Errors
    ///
    /// Propagates design, simulation, and fitting errors.
    pub fn run_ensemble(&self, campaign: &EnsembleCampaign) -> Result<EnsembleSurrogateSet> {
        let start = Instant::now(); // lint:allow(D2): flow wall time is reporting-only, never an RSM input
        let k = campaign.space().k();
        let design = self.choice.build(k)?;
        let result = campaign.run_design(&design, self.threads)?;
        let spec = ModelSpec::quadratic(k)?;
        let n_ind = campaign.indicators().len();
        let mut scenario_models = Vec::with_capacity(result.per_scenario.len());
        for sc in &result.per_scenario {
            let mut models = Vec::with_capacity(n_ind);
            for idx in 0..n_ind {
                let y = sc.response_column(idx);
                models.push(self.fit_column(&spec, &sc.coded, &y)?);
            }
            scenario_models.push(models);
        }
        let mut aggregate_models = Vec::with_capacity(n_ind);
        for idx in 0..n_ind {
            let y = result.aggregate.response_column(idx);
            aggregate_models.push(self.fit_column(&spec, &result.aggregate.coded, &y)?);
        }
        Ok(EnsembleSurrogateSet {
            space: campaign.space().clone(),
            indicators: campaign.indicators().to_vec(),
            scenario_labels: result.scenario_labels.clone(),
            weights: result.weights.clone(),
            scenario_models,
            aggregate_models,
            design,
            result,
            build_wall: start.elapsed(),
        })
    }

    /// Fits one response column, with or without stepwise elimination.
    fn fit_column(&self, spec: &ModelSpec, coded: &[Vec<f64>], y: &[f64]) -> Result<FittedModel> {
        Ok(match self.stepwise_alpha {
            None => fit(spec, coded, y)?,
            Some(alpha) => backward_eliminate(spec, coded, y, alpha)?.model,
        })
    }
}

/// The fitted response-surface models for every indicator, plus the
/// campaign data they were built from.
#[derive(Debug, Clone)]
pub struct SurrogateSet {
    space: DesignSpace,
    indicators: Vec<Indicator>,
    models: Vec<FittedModel>,
    design: Design,
    result: CampaignResult,
    build_wall: Duration,
}

/// Validation metrics of one indicator's surrogate against fresh
/// simulations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// Indicator validated.
    pub indicator: Indicator,
    /// Root-mean-square prediction error (physical units).
    pub rmse: f64,
    /// Maximum absolute prediction error.
    pub max_abs_error: f64,
    /// RMSE normalised by the observed response range (%).
    pub rmse_pct_of_range: f64,
    /// Validation R².
    pub r_squared: f64,
}

impl SurrogateSet {
    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The indicators, in model order.
    pub fn indicators(&self) -> &[Indicator] {
        &self.indicators
    }

    /// The experimental design used.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The raw campaign result.
    pub fn campaign_result(&self) -> &CampaignResult {
        &self.result
    }

    /// Wall-clock time of the whole build (simulations + fits).
    pub fn build_wall(&self) -> Duration {
        self.build_wall
    }

    /// The fitted model of one indicator.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn model(&self, idx: usize) -> &FittedModel {
        &self.models[idx]
    }

    /// Index of an indicator within the set.
    pub fn indicator_index(&self, ind: Indicator) -> Option<usize> {
        self.indicators.iter().position(|i| *i == ind)
    }

    /// Predicts an indicator at a coded point — the "practically
    /// instant" exploration primitive.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a bad indicator index or
    /// dimension mismatch.
    pub fn predict(&self, indicator_idx: usize, coded: &[f64]) -> Result<f64> {
        let model = self
            .models
            .get(indicator_idx)
            .ok_or_else(|| CoreError::invalid(format!("no indicator {indicator_idx}")))?;
        if coded.len() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "point has {} coordinates, expected {}",
                coded.len(),
                self.space.k()
            )));
        }
        Ok(model.predict(coded))
    }

    /// Predicts an indicator at a physical point.
    ///
    /// # Errors
    ///
    /// Same as [`SurrogateSet::predict`].
    pub fn predict_physical(&self, indicator_idx: usize, physical: &[f64]) -> Result<f64> {
        if physical.len() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "point has {} coordinates, expected {}",
                physical.len(),
                self.space.k()
            )));
        }
        self.predict(indicator_idx, &self.space.encode(physical))
    }

    /// Validates every surrogate against `n` fresh simulations at
    /// seeded Latin-hypercube points.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn validate(
        &self,
        campaign: &Campaign,
        n: usize,
        seed: u64,
        threads: usize,
    ) -> Result<Vec<ValidationRow>> {
        let lhs = latin_hypercube(self.space.k(), n, seed)?;
        let fresh = campaign.run_design(&lhs, threads)?;
        let mut rows = Vec::with_capacity(self.indicators.len());
        for (idx, ind) in self.indicators.iter().enumerate() {
            let observed = fresh.response_column(idx);
            let predicted: Vec<f64> = fresh
                .coded
                .iter()
                .map(|p| self.models[idx].predict(p))
                .collect();
            let mut sse = 0.0;
            let mut max_err: f64 = 0.0;
            for (p, o) in predicted.iter().zip(observed.iter()) {
                let e = p - o;
                sse += e * e;
                max_err = max_err.max(e.abs());
            }
            let rmse = (sse / n as f64).sqrt();
            let mean = observed.iter().sum::<f64>() / n as f64;
            let tss: f64 = observed.iter().map(|y| (y - mean) * (y - mean)).sum();
            let r2 = if tss > 0.0 { 1.0 - sse / tss } else { 1.0 };
            let lo = observed.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = observed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let range = (hi - lo).max(1e-12);
            rows.push(ValidationRow {
                indicator: *ind,
                rmse,
                max_abs_error: max_err,
                rmse_pct_of_range: 100.0 * rmse / range,
                r_squared: r2,
            });
        }
        Ok(rows)
    }

    /// Optimises one indicator over the coded box on the surrogate.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a bad index.
    pub fn optimize(&self, indicator_idx: usize, goal: Goal, seed: u64) -> Result<Optimum> {
        let model = self
            .models
            .get(indicator_idx)
            .ok_or_else(|| CoreError::invalid(format!("no indicator {indicator_idx}")))?;
        Ok(ehsim_doe::optimize::optimize_model(
            model,
            (-1.0, 1.0),
            goal,
            seed,
        )?)
    }

    /// Constrained optimisation on the surrogates: optimise
    /// `indicator_idx` subject to other indicators staying above given
    /// floors, via an exact-penalty formulation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for bad indices.
    pub fn optimize_constrained(
        &self,
        indicator_idx: usize,
        goal: Goal,
        floors: &[(usize, f64)],
        seed: u64,
    ) -> Result<Optimum> {
        if indicator_idx >= self.models.len() || floors.iter().any(|(i, _)| *i >= self.models.len())
        {
            return Err(CoreError::invalid("indicator index out of range"));
        }
        let sign = match goal {
            Goal::Maximize => 1.0,
            Goal::Minimize => -1.0,
        };
        // Scale the penalty to the objective's observed range so it
        // dominates without destroying the gradient signal.
        let obj_col: Vec<f64> = self
            .result
            .responses
            .iter()
            .map(|r| r[indicator_idx])
            .collect();
        let lo = obj_col.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = obj_col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let penalty_scale = 100.0 * (hi - lo).max(1.0);

        let objective = |x: &[f64]| {
            let mut v = sign * self.models[indicator_idx].predict(x);
            for (ci, floor) in floors {
                let c = self.models[*ci].predict(x);
                if c < *floor {
                    v -= penalty_scale * (floor - c);
                }
            }
            v
        };
        let opt = optimize_fn(
            &objective,
            self.space.k(),
            (-1.0, 1.0),
            Goal::Maximize,
            seed,
            16,
        )?;
        // Report the true (unpenalised) objective value at the winner.
        let value = self.models[indicator_idx].predict(&opt.x);
        Ok(Optimum { x: opt.x, value })
    }
}

/// Per-scenario and aggregate response surfaces fitted from one
/// ensemble campaign — the substrate for robust cross-scenario
/// optimisation.
///
/// Model layout: `scenario_models[scenario][indicator]`, all sharing
/// one design and one [`EnsembleCampaignResult`]. The aggregate models
/// are fitted on the weighted-mean responses; note that because model
/// fitting is linear in the response vector, the aggregate fit equals
/// the weighted mean of the per-scenario fits when no stepwise
/// elimination is applied.
#[derive(Debug, Clone)]
pub struct EnsembleSurrogateSet {
    space: DesignSpace,
    indicators: Vec<Indicator>,
    scenario_labels: Vec<String>,
    weights: Vec<f64>,
    scenario_models: Vec<Vec<FittedModel>>,
    aggregate_models: Vec<FittedModel>,
    design: Design,
    result: EnsembleCampaignResult,
    build_wall: Duration,
}

impl EnsembleSurrogateSet {
    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The indicators, in model order.
    pub fn indicators(&self) -> &[Indicator] {
        &self.indicators
    }

    /// Scenario labels, in ensemble order.
    pub fn scenario_labels(&self) -> &[String] {
        &self.scenario_labels
    }

    /// Normalised scenario weights, in ensemble order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of scenarios.
    pub fn n_scenarios(&self) -> usize {
        self.scenario_models.len()
    }

    /// The experimental design used (shared by every scenario).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The raw batched campaign result.
    pub fn campaign_result(&self) -> &EnsembleCampaignResult {
        &self.result
    }

    /// Wall-clock time of the whole build (simulations + fits).
    pub fn build_wall(&self) -> Duration {
        self.build_wall
    }

    /// One scenario's fitted model for one indicator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for out-of-range indices.
    pub fn model(&self, scenario_idx: usize, indicator_idx: usize) -> Result<&FittedModel> {
        self.scenario_models
            .get(scenario_idx)
            .and_then(|ms| ms.get(indicator_idx))
            .ok_or_else(|| {
                CoreError::invalid(format!(
                    "no model for scenario {scenario_idx}, indicator {indicator_idx}"
                ))
            })
    }

    /// The weighted-aggregate fitted model for one indicator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for an out-of-range index.
    pub fn aggregate_model(&self, indicator_idx: usize) -> Result<&FittedModel> {
        self.aggregate_models
            .get(indicator_idx)
            .ok_or_else(|| CoreError::invalid(format!("no indicator {indicator_idx}")))
    }

    /// Index of an indicator within the set.
    pub fn indicator_index(&self, ind: Indicator) -> Option<usize> {
        self.indicators.iter().position(|i| *i == ind)
    }

    /// Predicts one indicator under one scenario at a coded point.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for bad indices or a dimension
    /// mismatch.
    pub fn predict_scenario(
        &self,
        scenario_idx: usize,
        indicator_idx: usize,
        coded: &[f64],
    ) -> Result<f64> {
        self.check_point(coded)?;
        Ok(self.model(scenario_idx, indicator_idx)?.predict(coded))
    }

    /// Predicts the robust aggregate of one indicator at a coded point:
    /// the weighted mean or the worst case across scenarios.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a bad indicator index or
    /// dimension mismatch.
    pub fn predict_robust(
        &self,
        indicator_idx: usize,
        robust: RobustGoal,
        goal: Goal,
        coded: &[f64],
    ) -> Result<f64> {
        self.check_point(coded)?;
        let models = self.models_for(indicator_idx)?;
        Ok(robust_objective(&models, robust, goal, coded)?)
    }

    /// Optimises one indicator robustly across the ensemble on the
    /// per-scenario surfaces — weighted-mean for expected performance,
    /// worst-case for a min-max guarantee.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for a bad indicator index.
    pub fn optimize_robust(
        &self,
        indicator_idx: usize,
        goal: Goal,
        robust: RobustGoal,
        seed: u64,
    ) -> Result<Optimum> {
        let models = self.models_for(indicator_idx)?;
        Ok(optimize_robust(&models, (-1.0, 1.0), goal, robust, seed)?)
    }

    /// Constrained robust optimisation: optimise the robust aggregate
    /// of `indicator_idx` subject to *every* scenario's predicted value
    /// of each `(indicator, floor)` pair staying at or above its floor,
    /// via an exact-penalty formulation (the ensemble counterpart of
    /// [`SurrogateSet::optimize_constrained`]).
    ///
    /// This is the natural shape of the energy-neutral-operation
    /// objectives of the adaptive energy-management literature:
    /// maximise delivered throughput subject to the node never browning
    /// out in *any* environment of the deployment envelope — a
    /// guarantee the weighted mean alone cannot express, because a
    /// margin violated in one scenario cannot be bought back by slack
    /// in another.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for bad indicator indices.
    pub fn optimize_robust_constrained(
        &self,
        indicator_idx: usize,
        goal: Goal,
        robust: RobustGoal,
        floors: &[(usize, f64)],
        seed: u64,
    ) -> Result<Optimum> {
        if indicator_idx >= self.indicators.len()
            || floors.iter().any(|(i, _)| *i >= self.indicators.len())
        {
            return Err(CoreError::invalid("indicator index out of range"));
        }
        let models = self.models_for(indicator_idx)?;
        // Scale the penalty to the objective's observed range across
        // every scenario so violations dominate the objective without
        // flattening its gradient.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for sc in &self.result.per_scenario {
            for r in &sc.responses {
                lo = lo.min(r[indicator_idx]);
                hi = hi.max(r[indicator_idx]);
            }
        }
        let penalty_scale = 100.0 * (hi - lo).max(1.0);
        let objective = |x: &[f64]| {
            let mut v =
                robust_objective(&models, robust, goal, x).expect("dimension checked at entry");
            // In the Minimize case optimize_fn still maximises the
            // signed objective internally; express the penalty on the
            // same maximisation axis.
            if goal == Goal::Minimize {
                v = -v;
            }
            for (ci, floor) in floors {
                for ms in &self.scenario_models {
                    let c = ms[*ci].predict(x);
                    if c < *floor {
                        v -= penalty_scale * (floor - c);
                    }
                }
            }
            v
        };
        let opt = optimize_fn(
            &objective,
            self.space.k(),
            (-1.0, 1.0),
            Goal::Maximize,
            seed,
            16,
        )?;
        // Report the true (unpenalised) robust objective at the winner.
        let value = robust_objective(&models, robust, goal, &opt.x)?;
        Ok(Optimum { x: opt.x, value })
    }

    /// Optimises one indicator against a *single* scenario's surface —
    /// the non-robust baseline the robust optimum is compared to.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] for bad indices.
    pub fn optimize_scenario(
        &self,
        scenario_idx: usize,
        indicator_idx: usize,
        goal: Goal,
        seed: u64,
    ) -> Result<Optimum> {
        let model = self.model(scenario_idx, indicator_idx)?;
        Ok(optimize_model(model, (-1.0, 1.0), goal, seed)?)
    }

    fn check_point(&self, coded: &[f64]) -> Result<()> {
        if coded.len() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "point has {} coordinates, expected {}",
                coded.len(),
                self.space.k()
            )));
        }
        Ok(())
    }

    /// The `(model, weight)` pairs of one indicator across scenarios.
    fn models_for(&self, indicator_idx: usize) -> Result<Vec<(&FittedModel, f64)>> {
        if indicator_idx >= self.indicators.len() {
            return Err(CoreError::invalid(format!("no indicator {indicator_idx}")));
        }
        Ok(self
            .scenario_models
            .iter()
            .zip(self.weights.iter())
            .map(|(ms, w)| (&ms[indicator_idx], *w))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::StandardFactors;
    use crate::scenario::Scenario;

    fn small_flow_campaign() -> Campaign {
        Campaign::standard(
            StandardFactors::default(),
            Scenario::stationary_machine(300.0),
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap()
    }

    #[test]
    fn design_choices_build() {
        for (choice, expect_runs) in [
            (
                DesignChoice::FaceCenteredCcd { center_points: 3 },
                16 + 8 + 3,
            ),
            (DesignChoice::RotatableCcd { center_points: 1 }, 16 + 8 + 1),
            (DesignChoice::BoxBehnken { center_points: 2 }, 24 + 2),
            (DesignChoice::FullFactorial3, 81),
            (DesignChoice::LatinHypercube { n: 30, seed: 1 }, 30),
        ] {
            let d = choice.build(4).unwrap();
            assert_eq!(d.n_runs(), expect_runs, "{choice:?}");
        }
        let d = DesignChoice::DOptimal { n: 18, seed: 2 }.build(4).unwrap();
        assert_eq!(d.n_runs(), 18);
    }

    #[test]
    fn flow_produces_usable_surrogates() {
        let campaign = small_flow_campaign();
        let flow = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 }).with_threads(4);
        let s = flow.run(&campaign).unwrap();
        assert_eq!(s.indicators().len(), 2);
        assert_eq!(s.campaign_result().sim_count, 16 + 8 + 2);
        // The packets model must be strongly driven by the task period
        // (factor 1): moving from slow to fast sampling raises packets.
        let fast = s.predict(0, &[0.0, -1.0, 0.0, 0.0]).unwrap();
        let slow = s.predict(0, &[0.0, 1.0, 0.0, 0.0]).unwrap();
        assert!(fast > slow, "fast={fast} slow={slow}");
        // Physical-unit prediction agrees with coded prediction.
        let phys = s.space().decode(&[0.0, -1.0, 0.0, 0.0]);
        let via_phys = s.predict_physical(0, &phys).unwrap();
        assert!((via_phys - fast).abs() < 1e-9);
    }

    #[test]
    fn surrogate_optimization_runs() {
        let campaign = small_flow_campaign();
        let s = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
            .run(&campaign)
            .unwrap();
        let best = s.optimize(0, Goal::Maximize, 3).unwrap();
        assert_eq!(best.x.len(), 4);
        // The unconstrained packet maximum is at least as good as the
        // centre.
        let center = s.predict(0, &s.space().center()).unwrap();
        assert!(best.value >= center - 1e-9);

        // Constrained: keep the brown-out margin above 0.2 V.
        let con = s
            .optimize_constrained(0, Goal::Maximize, &[(1, 0.2)], 3)
            .unwrap();
        let margin = s.predict(1, &con.x).unwrap();
        assert!(margin >= 0.15, "margin = {margin}");
    }

    #[test]
    fn bad_indices_rejected() {
        let campaign = small_flow_campaign();
        let s = DoeFlow::new(DesignChoice::LatinHypercube { n: 20, seed: 5 })
            .run(&campaign)
            .unwrap();
        assert!(s.predict(9, &s.space().center()).is_err());
        assert!(s.predict(0, &[0.0]).is_err());
        assert!(s.optimize(9, Goal::Maximize, 0).is_err());
        assert!(s
            .optimize_constrained(0, Goal::Maximize, &[(9, 0.0)], 0)
            .is_err());
    }

    fn small_ensemble_campaign() -> EnsembleCampaign {
        let ensemble = crate::scenario::ScenarioEnsemble::new(vec![
            (Scenario::stationary_machine(200.0), 0.6),
            (Scenario::drifting_machine(200.0), 0.4),
        ])
        .unwrap();
        EnsembleCampaign::standard(
            StandardFactors::default(),
            ensemble,
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap()
    }

    #[test]
    fn ensemble_flow_fits_per_scenario_and_aggregate_models() {
        let campaign = small_ensemble_campaign();
        let flow = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 }).with_threads(8);
        let s = flow.run_ensemble(&campaign).unwrap();
        assert_eq!(s.n_scenarios(), 2);
        assert_eq!(s.indicators().len(), 2);
        assert_eq!(s.scenario_labels().len(), 2);
        assert_eq!(s.campaign_result().aggregate.sim_count, 2 * (16 + 8 + 2));
        assert_eq!(s.indicator_index(Indicator::BrownoutMarginV), Some(1));
        let x = s.space().center();
        // Aggregate prediction equals the weighted mean of per-scenario
        // predictions (fitting is linear in the responses).
        let agg = s.aggregate_model(0).unwrap().predict(&x);
        let mean = s.weights()[0] * s.predict_scenario(0, 0, &x).unwrap()
            + s.weights()[1] * s.predict_scenario(1, 0, &x).unwrap();
        assert!((agg - mean).abs() < 1e-9, "{agg} vs {mean}");
        // predict_robust(WeightedMean) agrees with the same mean.
        let robust = s
            .predict_robust(0, RobustGoal::WeightedMean, Goal::Maximize, &x)
            .unwrap();
        assert!((robust - mean).abs() < 1e-9);
        // Worst case is never above the weighted mean.
        let worst = s
            .predict_robust(0, RobustGoal::WorstCase, Goal::Maximize, &x)
            .unwrap();
        assert!(worst <= robust + 1e-12);
    }

    #[test]
    fn ensemble_robust_optimum_dominates_on_worst_case() {
        let campaign = small_ensemble_campaign();
        let s = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
            .with_threads(8)
            .run_ensemble(&campaign)
            .unwrap();
        let robust = s
            .optimize_robust(0, Goal::Maximize, RobustGoal::WorstCase, 42)
            .unwrap();
        for sc in 0..s.n_scenarios() {
            let single = s.optimize_scenario(sc, 0, Goal::Maximize, 42).unwrap();
            let single_wc = s
                .predict_robust(0, RobustGoal::WorstCase, Goal::Maximize, &single.x)
                .unwrap();
            assert!(
                robust.value >= single_wc - 1e-9,
                "scenario {sc}: robust {} < single worst-case {}",
                robust.value,
                single_wc
            );
        }
    }

    #[test]
    fn ensemble_constrained_optimum_respects_per_scenario_floors() {
        let campaign = small_ensemble_campaign();
        let s = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
            .with_threads(8)
            .run_ensemble(&campaign)
            .unwrap();
        // Unconstrained vs margin-floored weighted-mean optimum.
        let free = s
            .optimize_robust(0, Goal::Maximize, RobustGoal::WeightedMean, 7)
            .unwrap();
        let floor = 0.3;
        let con = s
            .optimize_robust_constrained(
                0,
                Goal::Maximize,
                RobustGoal::WeightedMean,
                &[(1, floor)],
                7,
            )
            .unwrap();
        // Every scenario's predicted margin must satisfy the floor
        // (small tolerance for the exact-penalty formulation).
        for sc in 0..s.n_scenarios() {
            let margin = s.predict_scenario(sc, 1, &con.x).unwrap();
            assert!(margin >= floor - 0.05, "scenario {sc}: margin {margin}");
        }
        // The constraint can only cost objective value.
        assert!(con.value <= free.value + 1e-9);
        // Index validation.
        assert!(s
            .optimize_robust_constrained(9, Goal::Maximize, RobustGoal::WeightedMean, &[], 0)
            .is_err());
        assert!(s
            .optimize_robust_constrained(
                0,
                Goal::Maximize,
                RobustGoal::WeightedMean,
                &[(9, 0.0)],
                0
            )
            .is_err());
    }

    #[test]
    fn ensemble_bad_indices_rejected() {
        let campaign = small_ensemble_campaign();
        let s = DoeFlow::new(DesignChoice::LatinHypercube { n: 20, seed: 5 })
            .run_ensemble(&campaign)
            .unwrap();
        assert!(s.model(9, 0).is_err());
        assert!(s.model(0, 9).is_err());
        assert!(s.aggregate_model(9).is_err());
        assert!(s.predict_scenario(0, 0, &[0.0]).is_err());
        assert!(s
            .predict_robust(
                9,
                RobustGoal::WeightedMean,
                Goal::Maximize,
                &s.space().center()
            )
            .is_err());
        assert!(s
            .optimize_robust(9, Goal::Maximize, RobustGoal::WorstCase, 0)
            .is_err());
        assert!(s.optimize_scenario(9, 0, Goal::Maximize, 0).is_err());
    }
}
