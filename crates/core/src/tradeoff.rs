//! Multi-objective trade-off exploration: Pareto fronts extracted from
//! dense surrogate sampling — an analysis that would cost thousands of
//! simulator runs done directly, and takes milliseconds on the RSMs.

use crate::flow::SurrogateSet;
use crate::{CoreError, Result};
use ehsim_doe::design::lhs::latin_hypercube;
use ehsim_doe::optimize::Goal;

/// One point on a Pareto front.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Design point in coded units.
    pub coded: Vec<f64>,
    /// Design point in physical units.
    pub physical: Vec<f64>,
    /// Objective values in request order.
    pub objectives: Vec<f64>,
}

/// Extracts the Pareto-efficient set over the given `(indicator, goal)`
/// objectives by evaluating the surrogates on `n_samples` seeded
/// Latin-hypercube points.
///
/// Returned points are sorted by the first objective.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] on empty objectives, bad indices, or
/// `n_samples == 0`.
pub fn pareto_front(
    surrogates: &SurrogateSet,
    objectives: &[(usize, Goal)],
    n_samples: usize,
    seed: u64,
) -> Result<Vec<ParetoPoint>> {
    if objectives.is_empty() {
        return Err(CoreError::invalid("need at least one objective"));
    }
    if n_samples == 0 {
        return Err(CoreError::invalid("need at least one sample"));
    }
    for (idx, _) in objectives {
        if *idx >= surrogates.indicators().len() {
            return Err(CoreError::invalid(format!("no indicator {idx}")));
        }
    }
    let k = surrogates.space().k();
    let samples = latin_hypercube(k, n_samples, seed)?;

    // Evaluate all objectives, orienting so bigger is always better.
    let mut evaluated: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(n_samples);
    for p in samples.points() {
        let scores: Vec<f64> = objectives
            .iter()
            .map(|(idx, goal)| {
                let v = surrogates.model(*idx).predict(p);
                match goal {
                    Goal::Maximize => v,
                    Goal::Minimize => -v,
                }
            })
            .collect();
        evaluated.push((p.clone(), scores));
    }

    // Non-dominated filtering (O(n²), fine for a few thousand samples).
    let mut front: Vec<ParetoPoint> = Vec::new();
    'outer: for (i, (p, s)) in evaluated.iter().enumerate() {
        for (j, (_, other)) in evaluated.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates = other.iter().zip(s.iter()).all(|(o, mine)| o >= mine)
                && other.iter().zip(s.iter()).any(|(o, mine)| o > mine);
            if dominates {
                continue 'outer;
            }
        }
        let objectives_raw: Vec<f64> = objectives
            .iter()
            .map(|(idx, _)| surrogates.model(*idx).predict(p))
            .collect();
        front.push(ParetoPoint {
            coded: p.clone(),
            physical: surrogates.space().decode(p),
            objectives: objectives_raw,
        });
    }
    front.sort_by(|a, b| {
        a.objectives[0]
            .partial_cmp(&b.objectives[0])
            .expect("finite objectives")
    });
    Ok(front)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Campaign, StandardFactors};
    use crate::flow::{DesignChoice, DoeFlow};
    use crate::indicators::Indicator;
    use crate::scenario::Scenario;

    fn surrogates() -> SurrogateSet {
        let campaign = Campaign::standard(
            StandardFactors::default(),
            Scenario::stationary_machine(300.0),
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap();
        DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 2 })
            .run(&campaign)
            .unwrap()
    }

    #[test]
    fn front_is_mutually_nondominated() {
        let s = surrogates();
        let front = pareto_front(&s, &[(0, Goal::Maximize), (1, Goal::Maximize)], 500, 42).unwrap();
        assert!(!front.is_empty());
        assert!(front.len() < 500, "front of {} points", front.len());
        for a in &front {
            for b in &front {
                if a == b {
                    continue;
                }
                let dominates = b.objectives[0] >= a.objectives[0]
                    && b.objectives[1] >= a.objectives[1]
                    && (b.objectives[0] > a.objectives[0] || b.objectives[1] > a.objectives[1]);
                assert!(!dominates, "{b:?} dominates {a:?}");
            }
        }
        // Sorted by first objective.
        for w in front.windows(2) {
            assert!(w[0].objectives[0] <= w[1].objectives[0]);
        }
    }

    #[test]
    fn conflicting_objectives_give_a_curve() {
        // Packets/hour and brown-out margin genuinely conflict (faster
        // sampling drains the storage), so the front should contain
        // more than a single point.
        let s = surrogates();
        let front = pareto_front(&s, &[(0, Goal::Maximize), (1, Goal::Maximize)], 800, 7).unwrap();
        assert!(front.len() >= 3, "front collapsed: {}", front.len());
        // The extremes differ in both objectives.
        let first = &front[0];
        let last = &front[front.len() - 1];
        assert!(last.objectives[0] > first.objectives[0]);
        assert!(last.objectives[1] < first.objectives[1]);
    }

    #[test]
    fn validation() {
        let s = surrogates();
        assert!(pareto_front(&s, &[], 100, 0).is_err());
        assert!(pareto_front(&s, &[(0, Goal::Maximize)], 0, 0).is_err());
        assert!(pareto_front(&s, &[(7, Goal::Maximize)], 10, 0).is_err());
    }
}
