//! Classical simulation-driven optimisers — the expensive approaches
//! the DATE'13 paper argues the DoE flow replaces.
//!
//! Each optimiser maximises a black-box objective over the coded box
//! `[-1, 1]^k`, paying one (potentially very costly) objective
//! evaluation per probe, and reports how many evaluations it spent.

use crate::{CoreError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Outcome of a black-box search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Best point found (coded units).
    pub best: Vec<f64>,
    /// Objective value at the best point.
    pub best_value: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
    /// Optimiser label for reports.
    pub method: &'static str,
}

fn check_k(k: usize) -> Result<()> {
    if k == 0 {
        return Err(CoreError::invalid("need at least one factor"));
    }
    Ok(())
}

/// Exhaustive grid search with `levels` points per axis.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] if `k == 0`, `levels < 2`, or the
/// grid would exceed 10⁷ evaluations.
pub fn grid_search(
    f: &mut dyn FnMut(&[f64]) -> f64,
    k: usize,
    levels: usize,
) -> Result<SearchOutcome> {
    check_k(k)?;
    if levels < 2 {
        return Err(CoreError::invalid("need at least 2 levels per axis"));
    }
    let total = (levels as f64).powi(k as i32);
    if total > 1e7 {
        return Err(CoreError::invalid(format!(
            "grid of {total:.0} points is unreasonable"
        )));
    }
    let mut idx = vec![0usize; k];
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut evaluations = 0;
    loop {
        let x: Vec<f64> = idx
            .iter()
            .map(|&i| -1.0 + 2.0 * i as f64 / (levels as f64 - 1.0))
            .collect();
        let v = f(&x);
        evaluations += 1;
        if best.as_ref().map_or(true, |(_, b)| v > *b) {
            best = Some((x, v));
        }
        // Odometer.
        let mut j = 0;
        loop {
            idx[j] += 1;
            if idx[j] < levels {
                break;
            }
            idx[j] = 0;
            j += 1;
            if j == k {
                let (bx, bv) = best.expect("at least one evaluation");
                return Ok(SearchOutcome {
                    best: bx,
                    best_value: bv,
                    evaluations,
                    method: "grid",
                });
            }
        }
    }
}

/// Nelder–Mead simplex search (maximisation), restarted from the box
/// centre, with reflection/expansion/contraction/shrink and box
/// clamping.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] if `k == 0` or `max_evals` is 0.
pub fn nelder_mead(
    f: &mut dyn FnMut(&[f64]) -> f64,
    k: usize,
    max_evals: usize,
) -> Result<SearchOutcome> {
    check_k(k)?;
    if max_evals == 0 {
        return Err(CoreError::invalid("need a positive evaluation budget"));
    }
    let clamp = |x: &mut Vec<f64>| {
        for v in x.iter_mut() {
            *v = v.clamp(-1.0, 1.0);
        }
    };
    let mut evaluations = 0;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    // Initial simplex: centre plus one vertex offset per axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(k + 1);
    let center = vec![0.0; k];
    let v0 = eval(&center, &mut evaluations);
    simplex.push((center, v0));
    for j in 0..k {
        let mut x = vec![0.0; k];
        x[j] = 0.6;
        let v = eval(&x, &mut evaluations);
        simplex.push((x, v));
    }

    while evaluations < max_evals {
        // Sort descending by value (maximisation).
        simplex.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite objective"));
        let worst = simplex[k].clone();
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; k];
        for (x, _) in simplex.iter().take(k) {
            for (c, xi) in centroid.iter_mut().zip(x.iter()) {
                *c += xi / k as f64;
            }
        }
        // Reflection.
        let mut xr: Vec<f64> = centroid
            .iter()
            .zip(worst.0.iter())
            .map(|(c, w)| c + (c - w))
            .collect();
        clamp(&mut xr);
        let vr = eval(&xr, &mut evaluations);
        if vr > simplex[0].1 {
            // Expansion.
            let mut xe: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(c, w)| c + 2.0 * (c - w))
                .collect();
            clamp(&mut xe);
            let ve = eval(&xe, &mut evaluations);
            simplex[k] = if ve > vr { (xe, ve) } else { (xr, vr) };
        } else if vr > simplex[k - 1].1 {
            simplex[k] = (xr, vr);
        } else {
            // Contraction.
            let mut xc: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(c, w)| c + 0.5 * (w - c))
                .collect();
            clamp(&mut xc);
            let vc = eval(&xc, &mut evaluations);
            if vc > worst.1 {
                simplex[k] = (xc, vc);
            } else {
                // Shrink towards the best.
                let best = simplex[0].0.clone();
                for item in simplex.iter_mut().skip(1) {
                    let mut x: Vec<f64> = best
                        .iter()
                        .zip(item.0.iter())
                        .map(|(b, xi)| b + 0.5 * (xi - b))
                        .collect();
                    clamp(&mut x);
                    let v = eval(&x, &mut evaluations);
                    *item = (x, v);
                    if evaluations >= max_evals {
                        break;
                    }
                }
            }
        }
        // Convergence: simplex collapsed.
        let spread = simplex
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max)
            - simplex
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::INFINITY, f64::min);
        if spread.abs() < 1e-12 {
            break;
        }
    }
    simplex.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite objective"));
    Ok(SearchOutcome {
        best: simplex[0].0.clone(),
        best_value: simplex[0].1,
        evaluations,
        method: "nelder-mead",
    })
}

/// Simulated annealing with geometric cooling.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] if `k == 0` or `max_evals == 0`.
pub fn simulated_annealing(
    f: &mut dyn FnMut(&[f64]) -> f64,
    k: usize,
    max_evals: usize,
    seed: u64,
) -> Result<SearchOutcome> {
    check_k(k)?;
    if max_evals == 0 {
        return Err(CoreError::invalid("need a positive evaluation budget"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = vec![0.0; k];
    let mut fx = f(&x);
    let mut evaluations = 1;
    let mut best = (x.clone(), fx);
    let mut temperature = 1.0f64;
    let cooling = (1e-3f64).powf(1.0 / max_evals as f64);
    let mut step = 0.5;

    while evaluations < max_evals {
        let mut cand = x.clone();
        for v in cand.iter_mut() {
            *v = (*v + step * (rng.random::<f64>() * 2.0 - 1.0)).clamp(-1.0, 1.0);
        }
        let fc = f(&cand);
        evaluations += 1;
        let accept = fc > fx || {
            let u: f64 = rng.random();
            u < ((fc - fx) / temperature.max(1e-12)).exp()
        };
        if accept {
            x = cand;
            fx = fc;
            if fx > best.1 {
                best = (x.clone(), fx);
            }
        }
        temperature *= cooling;
        step = (step * 0.999).max(0.02);
    }
    Ok(SearchOutcome {
        best: best.0,
        best_value: best.1,
        evaluations,
        method: "simulated-annealing",
    })
}

/// A small generational genetic algorithm with tournament selection,
/// blend crossover, and Gaussian-ish mutation.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] if `k == 0`, the population is < 4,
/// or `generations == 0`.
pub fn genetic(
    f: &mut dyn FnMut(&[f64]) -> f64,
    k: usize,
    population: usize,
    generations: usize,
    seed: u64,
) -> Result<SearchOutcome> {
    check_k(k)?;
    if population < 4 {
        return Err(CoreError::invalid("population must be at least 4"));
    }
    if generations == 0 {
        return Err(CoreError::invalid("need at least one generation"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluations = 0;
    let mut evaluate = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    let mut pop: Vec<(Vec<f64>, f64)> = (0..population)
        .map(|_| {
            let x: Vec<f64> = (0..k).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
            let v = evaluate(&x, &mut evaluations);
            (x, v)
        })
        .collect();

    for _gen in 0..generations {
        pop.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite objective"));
        let elite = pop[0].clone();
        let mut next = vec![elite];
        while next.len() < population {
            // Tournament selection of two parents.
            let pick = |rng: &mut StdRng| -> usize {
                let a = rng.random_range(0..population);
                let b = rng.random_range(0..population);
                if pop[a].1 > pop[b].1 {
                    a
                } else {
                    b
                }
            };
            let pa = &pop[pick(&mut rng)].0;
            let pb = &pop[pick(&mut rng)].0;
            // Blend crossover + mutation.
            let mut child: Vec<f64> = pa
                .iter()
                .zip(pb.iter())
                .map(|(a, b)| {
                    let t: f64 = rng.random();
                    a + t * (b - a)
                })
                .collect();
            for v in child.iter_mut() {
                if rng.random::<f64>() < 0.2 {
                    *v = (*v + 0.3 * (rng.random::<f64>() * 2.0 - 1.0)).clamp(-1.0, 1.0);
                }
            }
            let value = evaluate(&child, &mut evaluations);
            next.push((child, value));
        }
        pop = next;
    }
    pop.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite objective"));
    Ok(SearchOutcome {
        best: pop[0].0.clone(),
        best_value: pop[0].1,
        evaluations,
        method: "genetic",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smooth test objective with the maximum at (0.4, -0.2, ...).
    fn peak(x: &[f64]) -> f64 {
        let mut v = 10.0;
        for (i, xi) in x.iter().enumerate() {
            let target = if i % 2 == 0 { 0.4 } else { -0.2 };
            v -= (xi - target) * (xi - target);
        }
        v
    }

    #[test]
    fn grid_search_finds_region() {
        let mut f = |x: &[f64]| peak(x);
        let out = grid_search(&mut f, 2, 11).unwrap();
        assert_eq!(out.evaluations, 121);
        assert!((out.best[0] - 0.4).abs() <= 0.2);
        assert!((out.best[1] + 0.2).abs() <= 0.2);
    }

    #[test]
    fn nelder_mead_converges() {
        let mut f = |x: &[f64]| peak(x);
        let out = nelder_mead(&mut f, 3, 300).unwrap();
        assert!(out.evaluations <= 300);
        assert!(out.best_value > 9.99, "value = {}", out.best_value);
    }

    #[test]
    fn annealing_improves_over_start() {
        let mut f = |x: &[f64]| peak(x);
        let start_value = peak(&[0.0, 0.0]);
        let out = simulated_annealing(&mut f, 2, 400, 11).unwrap();
        assert!(out.best_value >= start_value);
        assert!(out.best_value > 9.9, "value = {}", out.best_value);
        assert_eq!(out.evaluations, 400);
    }

    #[test]
    fn genetic_improves_over_random() {
        let mut f = |x: &[f64]| peak(x);
        let out = genetic(&mut f, 2, 20, 15, 3).unwrap();
        assert!(out.best_value > 9.8, "value = {}", out.best_value);
        assert!(out.evaluations >= 20 * 15);
    }

    #[test]
    fn determinism_of_stochastic_methods() {
        let mut f1 = |x: &[f64]| peak(x);
        let mut f2 = |x: &[f64]| peak(x);
        let a = simulated_annealing(&mut f1, 2, 200, 5).unwrap();
        let b = simulated_annealing(&mut f2, 2, 200, 5).unwrap();
        assert_eq!(a, b);
        let mut f3 = |x: &[f64]| peak(x);
        let mut f4 = |x: &[f64]| peak(x);
        let g1 = genetic(&mut f3, 2, 12, 6, 9).unwrap();
        let g2 = genetic(&mut f4, 2, 12, 6, 9).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn validation() {
        let mut f = |_: &[f64]| 0.0;
        assert!(grid_search(&mut f, 0, 5).is_err());
        assert!(grid_search(&mut f, 2, 1).is_err());
        assert!(grid_search(&mut f, 10, 100).is_err());
        assert!(nelder_mead(&mut f, 2, 0).is_err());
        assert!(simulated_annealing(&mut f, 0, 10, 0).is_err());
        assert!(genetic(&mut f, 2, 2, 5, 0).is_err());
    }
}
