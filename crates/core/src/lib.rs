//! The DATE'13 contribution: a DoE-based design flow for energy
//! management in sensor nodes powered by tunable energy harvesters.
//!
//! The toolkit wires together every substrate of the workspace:
//!
//! 1. A [`space::DesignSpace`] names the design factors (storage size,
//!    task period, retune threshold, radio power, …) with their physical
//!    ranges, mapped to/from coded `[-1, 1]` units.
//! 2. A [`experiment::Campaign`] runs the system-level node simulator at
//!    each design point of a chosen experimental design — in parallel —
//!    and collects the performance indicators.
//! 3. [`flow::DoeFlow`] fits one quadratic response-surface model per
//!    indicator, validates it against fresh simulations, and hands back
//!    a [`flow::SurrogateSet`].
//! 4. From there, exploration is *practically instant*: grid sweeps and
//!    contours ([`explorer`]), Pareto trade-off fronts ([`tradeoff`]),
//!    and constrained optimisation on the surface.
//! 5. For honest comparison, [`baselines`] implements the classical
//!    simulation-driven optimisers the paper argues against (grid
//!    search, Nelder–Mead, simulated annealing, genetic search), which
//!    pay one full simulation per objective evaluation.
//! 6. Because the paper's premise is a *tunable* harvester in a
//!    *changing* environment, a [`scenario::ScenarioEnsemble`] names
//!    several weighted vibration environments at once;
//!    [`experiment::EnsembleCampaign`] simulates a design across all of
//!    them in one batched pass, and
//!    [`flow::EnsembleSurrogateSet::optimize_robust`] returns tunings
//!    that are good across the ensemble (weighted-mean or worst-case),
//!    not just at one operating point.
//! 7. Where the budget matters more than a single global fit,
//!    [`sequential::SequentialCampaign`] spends it *adaptively*: the
//!    classical screen → steepest-ascent → augment-and-shrink RSM loop,
//!    run against a memoizing [`sequential::CachedEvaluator`] under a
//!    hard cap on fresh simulations, with a per-iteration audit trail.
//!
//! # Quickstart
//!
//! ```no_run
//! use ehsim_core::flow::{DoeFlow, DesignChoice};
//! use ehsim_core::experiment::{Campaign, StandardFactors};
//! use ehsim_core::indicators::Indicator;
//! use ehsim_core::scenario::Scenario;
//!
//! # fn main() -> Result<(), ehsim_core::CoreError> {
//! let campaign = Campaign::standard(
//!     StandardFactors::default(),
//!     Scenario::drifting_machine(3600.0),
//!     vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
//! )?;
//! let flow = DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 });
//! let surrogates = flow.run(&campaign)?;
//! // Instant what-if: predicted packets/hour at a design point.
//! let x = surrogates.space().center();
//! let packets = surrogates.predict(0, &x)?;
//! println!("predicted packets/hour at centre: {packets:.1}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod experiment;
pub mod explorer;
pub mod fleet;
pub mod flow;
pub mod indicators;
pub mod report;
pub mod scenario;
pub mod sensitivity;
pub mod sequential;
pub mod space;
pub mod tradeoff;

pub use experiment::{
    Campaign, CampaignResult, EnsembleCampaign, EnsembleCampaignResult, StandardFactors,
};
pub use fleet::{FleetCampaign, FleetIndicator};
pub use flow::{DesignChoice, DoeFlow, EnsembleSurrogateSet, SurrogateSet};
pub use indicators::Indicator;
pub use scenario::{Scenario, ScenarioEnsemble};
pub use sequential::{CachedEvaluator, SequentialCampaign, SequentialOutcome};
pub use space::{DesignSpace, Factor};

use std::error::Error;
use std::fmt;

/// Errors produced by the design-flow toolkit.
#[derive(Debug)]
pub enum CoreError {
    /// An argument violated its precondition.
    InvalidArgument {
        /// Description of the violated precondition.
        message: String,
    },
    /// The underlying node simulator failed.
    Simulation(ehsim_node::NodeError),
    /// The fleet/network layer failed.
    Fleet(ehsim_net::NetError),
    /// The DoE machinery failed.
    Doe(ehsim_doe::DoeError),
    /// Writing a report file failed.
    Io(std::io::Error),
}

impl CoreError {
    pub(crate) fn invalid(message: impl Into<String>) -> Self {
        CoreError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            CoreError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CoreError::Fleet(e) => write!(f, "fleet failure: {e}"),
            CoreError::Doe(e) => write!(f, "doe failure: {e}"),
            CoreError::Io(e) => write!(f, "io failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Simulation(e) => Some(e),
            CoreError::Fleet(e) => Some(e),
            CoreError::Doe(e) => Some(e),
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ehsim_node::NodeError> for CoreError {
    fn from(e: ehsim_node::NodeError) -> Self {
        CoreError::Simulation(e)
    }
}

impl From<ehsim_net::NetError> for CoreError {
    fn from(e: ehsim_net::NetError) -> Self {
        CoreError::Fleet(e)
    }
}

impl From<ehsim_doe::DoeError> for CoreError {
    fn from(e: ehsim_doe::DoeError) -> Self {
        CoreError::Doe(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<CoreError> = vec![
            CoreError::invalid("x"),
            CoreError::Simulation(ehsim_node::NodeError::Model("m".into())),
            CoreError::Doe(ehsim_doe::DoeError::RankDeficient),
            CoreError::Io(std::io::Error::new(std::io::ErrorKind::Other, "io")),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
