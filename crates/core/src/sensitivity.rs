//! Factor sensitivity analysis on fitted surrogates: which design
//! parameters actually move each performance indicator?
//!
//! Two complementary views are provided:
//!
//! * **Standardised effects** ([`effects_ranking`]) — each model term's
//!   t-statistic, the classic "Pareto of effects" used to screen
//!   factors after a DoE campaign;
//! * **Main-effect ranges** ([`main_effect_ranges`]) — the predicted
//!   swing of the indicator when one factor traverses its range with
//!   the others held at centre, in physical units a designer can read
//!   directly.

use crate::flow::SurrogateSet;
use crate::{CoreError, Result};

/// One ranked effect.
#[derive(Debug, Clone, PartialEq)]
pub struct Effect {
    /// Display name of the model term (e.g. `x0·x1`), with factor
    /// indices resolved to factor names where possible.
    pub term: String,
    /// Estimated coefficient (coded units).
    pub coefficient: f64,
    /// |t| statistic of the coefficient.
    pub t_abs: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Ranks the non-intercept terms of one indicator's model by |t|.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] on a bad indicator index, or if the
/// model is saturated (no residual degrees of freedom).
pub fn effects_ranking(surrogates: &SurrogateSet, indicator_idx: usize) -> Result<Vec<Effect>> {
    if indicator_idx >= surrogates.indicators().len() {
        return Err(CoreError::invalid(format!("no indicator {indicator_idx}")));
    }
    let model = surrogates.model(indicator_idx);
    let t_stats = model.t_stats();
    let p_values = model.p_values()?;
    let names: Vec<String> = surrogates
        .space()
        .factors()
        .iter()
        .map(|f| f.name().to_string())
        .collect();

    let mut effects = Vec::new();
    for (j, term) in model.spec().terms().iter().enumerate() {
        if term.is_intercept() {
            continue;
        }
        // Render the term with factor names.
        let mut parts = Vec::new();
        for (i, &p) in term.powers().iter().enumerate() {
            match p {
                0 => {}
                1 => parts.push(names[i].clone()),
                p => parts.push(format!("{}^{p}", names[i])),
            }
        }
        effects.push(Effect {
            term: parts.join("·"),
            coefficient: model.coefficients()[j],
            t_abs: t_stats[j].abs(),
            p_value: p_values[j],
        });
    }
    effects.sort_by(|a, b| b.t_abs.partial_cmp(&a.t_abs).expect("finite t"));
    Ok(effects)
}

/// Predicted indicator swing per factor: `(factor name, min, max)` of
/// the prediction as that factor traverses `[-1, 1]` with all others at
/// the centre.
///
/// # Errors
///
/// [`CoreError::InvalidArgument`] on a bad indicator index.
pub fn main_effect_ranges(
    surrogates: &SurrogateSet,
    indicator_idx: usize,
    n_steps: usize,
) -> Result<Vec<(String, f64, f64)>> {
    if indicator_idx >= surrogates.indicators().len() {
        return Err(CoreError::invalid(format!("no indicator {indicator_idx}")));
    }
    if n_steps < 2 {
        return Err(CoreError::invalid("need at least 2 steps"));
    }
    let k = surrogates.space().k();
    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut x = vec![0.0; k];
        for s in 0..n_steps {
            x[j] = -1.0 + 2.0 * s as f64 / (n_steps as f64 - 1.0);
            let v = surrogates.predict(indicator_idx, &x)?;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        out.push((surrogates.space().factors()[j].name().to_string(), lo, hi));
    }
    // Largest swing first.
    out.sort_by(|a, b| {
        (b.2 - b.1)
            .partial_cmp(&(a.2 - a.1))
            .expect("finite swings")
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Campaign, StandardFactors};
    use crate::flow::{DesignChoice, DoeFlow};
    use crate::indicators::Indicator;
    use crate::scenario::Scenario;

    fn surrogates() -> SurrogateSet {
        let campaign = Campaign::standard(
            StandardFactors::default(),
            Scenario::stationary_machine(600.0),
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .expect("campaign");
        DoeFlow::new(DesignChoice::FaceCenteredCcd { center_points: 3 })
            .with_threads(8)
            .run(&campaign)
            .expect("flow")
    }

    #[test]
    fn storage_dominates_the_margin() {
        let s = surrogates();
        let ranking = effects_ranking(&s, 1).expect("ranking");
        assert!(!ranking.is_empty());
        // Sorted descending by |t|.
        for w in ranking.windows(2) {
            assert!(w[0].t_abs >= w[1].t_abs);
        }
        // Storage capacitance is the top main effect on the brown-out
        // margin (it IS the energy reserve).
        let top_main = ranking
            .iter()
            .find(|e| !e.term.contains('·') && !e.term.contains('^'))
            .expect("some main effect");
        assert_eq!(top_main.term, "c_store_f", "ranking: {ranking:?}");
        assert!(top_main.p_value < 0.01);
    }

    #[test]
    fn main_effect_ranges_ordered_and_named() {
        let s = surrogates();
        let ranges = main_effect_ranges(&s, 0, 9).expect("ranges");
        assert_eq!(ranges.len(), 4);
        for w in ranges.windows(2) {
            assert!((w[0].2 - w[0].1) >= (w[1].2 - w[1].1));
        }
        // Every factor appears exactly once.
        let mut names: Vec<&str> = ranges.iter().map(|r| r.0.as_str()).collect();
        names.sort_unstable();
        assert_eq!(
            names,
            vec![
                "c_store_f",
                "retune_threshold_hz",
                "task_period_s",
                "tx_power_dbm"
            ]
        );
    }

    #[test]
    fn validation() {
        let s = surrogates();
        assert!(effects_ranking(&s, 9).is_err());
        assert!(main_effect_ranges(&s, 9, 5).is_err());
        assert!(main_effect_ranges(&s, 0, 1).is_err());
    }
}
