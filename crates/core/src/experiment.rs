//! Experiment campaigns: map design points to node configurations, run
//! the system simulator at each, and collect the indicator responses —
//! against one scenario ([`Campaign`]) or a whole weighted ensemble of
//! them in a single batched pass ([`EnsembleCampaign`]).

use crate::indicators::Indicator;
use crate::scenario::{Scenario, ScenarioEnsemble};
use crate::space::{DesignSpace, Factor};
use crate::{CoreError, Result};
use ehsim_doe::Design;
use ehsim_node::energy_policy::{EnergyAware, Threshold};
use ehsim_node::{
    BatchSimulator, DutyCyclePolicy, NodeConfig, PolicyKind, PreparedSimulator, SystemSimulator,
};
use std::sync::Arc;
// lint:allow(D2): wall-clock feeds reporting-only Duration stats, never response values
use std::time::{Duration, Instant};

/// The paper-style four-factor design problem over the default node:
/// storage capacitance, task period, retune threshold, and radio TX
/// power.
#[derive(Debug, Clone)]
pub struct StandardFactors {
    /// Base node configuration; each design point modifies a copy.
    pub base: NodeConfig,
    /// Storage capacitance range (F).
    pub c_store: (f64, f64),
    /// Task period range (s).
    pub task_period: (f64, f64),
    /// Retune threshold range (Hz).
    pub retune_threshold: (f64, f64),
    /// Radio TX power range (dBm).
    pub tx_power: (f64, f64),
}

impl Default for StandardFactors {
    fn default() -> Self {
        let mut base = NodeConfig::default_node();
        // Campaign runs cover hours of simulated time; a coarser tick
        // keeps one run in the tens of milliseconds.
        base.tick_s = 0.25;
        StandardFactors {
            base,
            c_store: (0.05, 0.5),
            task_period: (2.0, 30.0),
            retune_threshold: (0.25, 4.0),
            tx_power: (-10.0, 4.0),
        }
    }
}

impl StandardFactors {
    /// The corresponding [`DesignSpace`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if any range is inverted.
    pub fn space(&self) -> Result<DesignSpace> {
        DesignSpace::new(vec![
            Factor::new("c_store_f", self.c_store.0, self.c_store.1)?,
            Factor::new("task_period_s", self.task_period.0, self.task_period.1)?,
            Factor::new(
                "retune_threshold_hz",
                self.retune_threshold.0,
                self.retune_threshold.1,
            )?,
            Factor::new("tx_power_dbm", self.tx_power.0, self.tx_power.1)?,
        ])
    }

    /// Builds the node configuration for a physical design point
    /// `[c_store, task_period, retune_threshold, tx_power]`.
    pub fn config_for(&self, physical: &[f64]) -> NodeConfig {
        let mut cfg = self.base.clone();
        cfg.storage.capacitance = physical[0];
        cfg.task.period_s = physical[1];
        cfg.tuning.retune_threshold_hz = physical[2];
        cfg.radio.tx_power_dbm = physical[3];
        cfg
    }
}

/// Which adaptive energy-policy family a [`PolicyFactors`] space spans,
/// with the physical ranges of the family's parameters.
///
/// Each variant contributes a fixed set of design factors; the band of
/// a [`Threshold`] policy is parameterised as `(v_low, band_width)`
/// rather than `(v_low, v_high)` so every point of the rectangular
/// design box decodes to a valid hysteresis band.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyFactorSet {
    /// No runtime adaptation: the static baseline. Contributes no
    /// factors, so the space reduces to the tuning factors alone —
    /// which is exactly what makes static-vs-adaptive comparisons
    /// apples-to-apples (same flow, same design family, same budget
    /// per factor).
    Static,
    /// Hysteresis throttling bands ([`Threshold`]): contributes
    /// `policy_v_low_v`, `policy_band_v`, `policy_throttle`.
    Threshold {
        /// Throttle-entry voltage range (V).
        v_low: (f64, f64),
        /// Hysteresis band width range (V); `v_high = v_low + band`.
        band: (f64, f64),
        /// Throttled period-multiplier range (≥ 1).
        throttle_scale: (f64, f64),
    },
    /// Harvest-tracking pacing ([`EnergyAware`]): contributes
    /// `policy_ema_alpha`, `policy_margin`, `policy_max_scale`.
    EnergyAware {
        /// EMA smoothing-constant range, within `(0, 1]`.
        ema_alpha: (f64, f64),
        /// Spend-fraction range, within `(0, 1]`.
        margin: (f64, f64),
        /// Upper period-multiplier clamp range (≥ 1).
        max_scale: (f64, f64),
    },
}

impl PolicyFactorSet {
    /// Paper-style default ranges for the threshold family: bands just
    /// above the default 2.4 V brown-out threshold, throttling 2–30×.
    pub fn default_threshold() -> Self {
        PolicyFactorSet::Threshold {
            v_low: (2.5, 3.2),
            band: (0.1, 0.8),
            throttle_scale: (2.0, 30.0),
        }
    }

    /// Default ranges for the energy-aware family: minutes-scale
    /// smoothing, 30–100 % spend fraction, generous stretch headroom.
    pub fn default_energy_aware() -> Self {
        PolicyFactorSet::EnergyAware {
            ema_alpha: (0.005, 0.2),
            margin: (0.3, 1.0),
            max_scale: (5.0, 100.0),
        }
    }

    /// Short label for reports and CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyFactorSet::Static => "static",
            PolicyFactorSet::Threshold { .. } => "threshold",
            PolicyFactorSet::EnergyAware { .. } => "energy-aware",
        }
    }

    /// The factors this family contributes, in decode order.
    fn factors(&self) -> Result<Vec<Factor>> {
        Ok(match self {
            PolicyFactorSet::Static => vec![],
            PolicyFactorSet::Threshold {
                v_low,
                band,
                throttle_scale,
            } => vec![
                Factor::new("policy_v_low_v", v_low.0, v_low.1)?,
                Factor::new("policy_band_v", band.0, band.1)?,
                Factor::new("policy_throttle", throttle_scale.0, throttle_scale.1)?,
            ],
            PolicyFactorSet::EnergyAware {
                ema_alpha,
                margin,
                max_scale,
            } => vec![
                Factor::new("policy_ema_alpha", ema_alpha.0, ema_alpha.1)?,
                Factor::new("policy_margin", margin.0, margin.1)?,
                Factor::new("policy_max_scale", max_scale.0, max_scale.1)?,
            ],
        })
    }

    /// Builds the policy for this family's slice of a physical design
    /// point. Values are clamped into the policy's valid domain so the
    /// mild out-of-box extrapolation some designs use (rotatable CCD
    /// axial points) still decodes to a simulable configuration.
    fn policy_for(&self, p: &[f64]) -> PolicyKind {
        match self {
            PolicyFactorSet::Static => PolicyKind::Static,
            PolicyFactorSet::Threshold { .. } => PolicyKind::Threshold(Threshold {
                v_low: p[0].max(1e-3),
                v_high: p[0].max(1e-3) + p[1].max(1e-3),
                throttle_scale: p[2].max(1.0),
                skip_while_throttled: false,
            }),
            PolicyFactorSet::EnergyAware { .. } => PolicyKind::EnergyAware(EnergyAware {
                ema_alpha: p[0].clamp(1e-4, 1.0),
                margin: p[1].clamp(1e-3, 1.0),
                min_scale: 0.1,
                max_scale: p[2].max(1.0),
            }),
        }
    }

    /// Number of factors the family contributes.
    fn k(&self) -> usize {
        match self {
            PolicyFactorSet::Static => 0,
            _ => 3,
        }
    }
}

/// A design problem over *(static tuning × adaptive policy)*: storage
/// capacitance and task period as the tuning factors, plus the
/// parameters of one adaptive-policy family as runtime factors.
///
/// This is the closing of the loop the adaptive-policy literature asks
/// for: the paper's DoE/RSM machinery optimises the *policy parameters*
/// exactly as it optimises the static tuning — one response surface
/// over the joint space. The base node runs a [`DutyCyclePolicy::Fixed`]
/// schedule so the [`PolicyKind`] layer is the only runtime adaptation
/// being measured.
#[derive(Debug, Clone)]
pub struct PolicyFactors {
    /// Base node configuration; each design point modifies a copy.
    pub base: NodeConfig,
    /// Storage capacitance range (F).
    pub c_store: (f64, f64),
    /// Nominal task period range (s).
    pub task_period: (f64, f64),
    /// The adaptive-policy family and its parameter ranges.
    pub set: PolicyFactorSet,
}

impl PolicyFactors {
    /// The standard policy design problem over the default node for the
    /// given family: campaign-friendly tick, fixed duty-cycle schedule,
    /// and the same tuning ranges as [`StandardFactors`].
    pub fn standard(set: PolicyFactorSet) -> Self {
        let mut base = NodeConfig::default_node();
        base.tick_s = 0.25;
        base.policy = DutyCyclePolicy::Fixed;
        PolicyFactors {
            base,
            c_store: (0.05, 0.5),
            task_period: (2.0, 30.0),
            set,
        }
    }

    /// The corresponding [`DesignSpace`]: the two tuning factors
    /// followed by the family's policy factors.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if any range is inverted.
    pub fn space(&self) -> Result<DesignSpace> {
        let mut factors = vec![
            Factor::new("c_store_f", self.c_store.0, self.c_store.1)?,
            Factor::new("task_period_s", self.task_period.0, self.task_period.1)?,
        ];
        factors.extend(self.set.factors()?);
        DesignSpace::new(factors)
    }

    /// Builds the node configuration for a physical design point
    /// `[c_store, task_period, policy factors...]`.
    pub fn config_for(&self, physical: &[f64]) -> NodeConfig {
        let mut cfg = self.base.clone();
        cfg.storage.capacitance = physical[0];
        cfg.task.period_s = physical[1];
        cfg.energy_policy = self.set.policy_for(&physical[2..]);
        cfg
    }

    /// Number of factors (tuning + policy).
    pub fn k(&self) -> usize {
        2 + self.set.k()
    }
}

/// Maps a physical design point to a node configuration.
pub type Configure = Arc<dyn Fn(&[f64]) -> NodeConfig + Send + Sync>;

/// Runs one system simulation: decode the coded point, build the node
/// configuration, simulate it against `scenario`, extract indicators.
fn simulate_point(
    space: &DesignSpace,
    configure: &Configure,
    indicators: &[Indicator],
    scenario: &Scenario,
    coded: &[f64],
) -> Result<Vec<f64>> {
    let physical = space.decode(coded);
    let cfg = (configure)(&physical);
    let sim = SystemSimulator::new(cfg.clone())?;
    let metrics = sim.run(scenario.source().as_ref(), scenario.duration_s())?;
    Ok(indicators
        .iter()
        .map(|ind| ind.extract(&metrics, &cfg))
        .collect())
}

/// A simulation campaign: design space + configuration mapping +
/// scenario + indicators.
#[derive(Clone)]
pub struct Campaign {
    space: DesignSpace,
    configure: Configure,
    scenario: Scenario,
    indicators: Vec<Indicator>,
}

/// Results of running a design through the simulator.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Coded design points, one per run.
    pub coded: Vec<Vec<f64>>,
    /// Physical design points, one per run.
    pub physical: Vec<Vec<f64>>,
    /// Responses: `responses[run][indicator]`.
    pub responses: Vec<Vec<f64>>,
    /// Number of simulator invocations.
    pub sim_count: usize,
    /// Wall-clock time of the campaign.
    pub wall: Duration,
}

impl CampaignResult {
    /// One indicator's response vector across all runs.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn response_column(&self, idx: usize) -> Vec<f64> {
        self.responses.iter().map(|r| r[idx]).collect()
    }
}

impl Campaign {
    /// Creates a campaign from explicit parts.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if no indicators are given.
    pub fn new(
        space: DesignSpace,
        configure: Configure,
        scenario: Scenario,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        if indicators.is_empty() {
            return Err(CoreError::invalid("need at least one indicator"));
        }
        Ok(Campaign {
            space,
            configure,
            scenario,
            indicators,
        })
    }

    /// Creates the standard four-factor campaign.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn standard(
        factors: StandardFactors,
        scenario: Scenario,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        let space = factors.space()?;
        let configure: Configure = Arc::new(move |phys| factors.config_for(phys));
        Campaign::new(space, configure, scenario, indicators)
    }

    /// Creates a campaign over a *(tuning × policy)* space.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn adaptive(
        factors: PolicyFactors,
        scenario: Scenario,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        let space = factors.space()?;
        let configure: Configure = Arc::new(move |phys| factors.config_for(phys));
        Campaign::new(space, configure, scenario, indicators)
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The indicators, in response-column order.
    pub fn indicators(&self) -> &[Indicator] {
        &self.indicators
    }

    /// Runs one simulation at a coded point and returns the indicator
    /// vector.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (e.g. an invalid generated
    /// configuration).
    pub fn evaluate_coded(&self, coded: &[f64]) -> Result<Vec<f64>> {
        simulate_point(
            &self.space,
            &self.configure,
            &self.indicators,
            &self.scenario,
            coded,
        )
    }

    /// Runs every design point, using up to `threads` worker threads.
    ///
    /// Homogeneous designs — every point prepares successfully and
    /// shares one tick program — are dispatched to the SoA batch
    /// kernel ([`BatchSimulator`]), which is bit-identical to the
    /// per-sim path lane for lane; heterogeneous designs fall back to
    /// one [`SystemSimulator`] per point. Either way the responses,
    /// their order, and the error semantics are the same for any
    /// thread count.
    ///
    /// # Example
    ///
    /// ```
    /// use ehsim_core::experiment::{Campaign, StandardFactors};
    /// use ehsim_core::indicators::Indicator;
    /// use ehsim_core::scenario::Scenario;
    /// use ehsim_doe::design::factorial::full_factorial_2k;
    ///
    /// # fn main() -> Result<(), ehsim_core::CoreError> {
    /// let campaign = Campaign::standard(
    ///     StandardFactors::default(),
    ///     Scenario::stationary_machine(60.0),
    ///     vec![Indicator::PacketsPerHour],
    /// )?;
    /// let design = full_factorial_2k(4).map_err(ehsim_core::CoreError::from)?;
    /// let result = campaign.run_design(&design, 4)?;
    /// assert_eq!(result.sim_count, 16);
    /// assert_eq!(result.response_column(0).len(), 16);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on factor-count mismatch;
    /// propagates the first simulation error encountered.
    pub fn run_design(&self, design: &Design, threads: usize) -> Result<CampaignResult> {
        if design.k() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "design has {} factors, space has {}",
                design.k(),
                self.space.k()
            )));
        }
        let start = Instant::now(); // lint:allow(D2): campaign wall time is reporting-only, never a response
        let points: Vec<Vec<f64>> = design.points().to_vec();
        let n = points.len();
        let responses = match run_design_batched(
            &self.space,
            &self.configure,
            &self.indicators,
            &[&self.scenario],
            &points,
            threads,
        ) {
            Some(batched) => batched?,
            None => run_jobs(n, threads, |j| self.evaluate_coded(&points[j]))?,
        };
        let physical: Vec<Vec<f64>> = points.iter().map(|p| self.space.decode(p)).collect();
        Ok(CampaignResult {
            coded: points,
            physical,
            responses,
            sim_count: n,
            wall: start.elapsed(),
        })
    }
}

/// Runs `n_jobs` independent simulation jobs across up to `threads`
/// scoped worker threads, preserving job order.
///
/// Scheduling is a deterministic self-scheduling queue: workers claim
/// the next job index from a shared atomic counter, so a worker that
/// drew short jobs immediately picks up more work and a heterogeneous
/// job mix (e.g. an ensemble whose scenarios differ in duration) no
/// longer runs at the pace of the slowest static chunk. Each result is
/// written to the slot indexed by its job, so the output vector — and
/// therefore every downstream RSM fit and CSV artefact — is
/// bit-identical for any thread count, including the sequential path.
///
/// Error semantics: the error of the smallest failing job index is
/// returned, independent of thread count. (Claims are issued in index
/// order, so every job below the first failing index has been claimed
/// before the failure is observed and completes; remaining unclaimed
/// jobs are abandoned once a failure is flagged.)
fn run_jobs<T: Send>(
    n_jobs: usize,
    threads: usize,
    job: impl Fn(usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = threads.clamp(1, n_jobs.max(1));
    if threads == 1 {
        // Sequential reference path: strict job order, first error wins.
        let mut out = Vec::with_capacity(n_jobs);
        for j in 0..n_jobs {
            out.push(job(j)?);
        }
        return Ok(out);
    }

    // One slot per job; a worker is the only writer of the slots it
    // claimed, so every lock is uncontended and the output ordering is
    // fixed by construction.
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= n_jobs {
                    break;
                }
                let r = job(j);
                if r.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *slots[j].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    let mut out = Vec::with_capacity(n_jobs);
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Slots are claimed as a contiguous prefix, so an unclaimed
            // slot can only sit behind a failing one.
            None => unreachable!("unclaimed job slot implies an earlier error"),
        }
    }
    Ok(out)
}

/// Upper bound on the lane width of one batched-dispatch chunk. Wide
/// enough to keep the lock-step PPU rounds full of independent chains,
/// small enough that a chunk's SoA state stays cache-resident and the
/// chunk count still load-balances across the worker queue.
const MAX_BATCH_WIDTH: usize = 64;

/// Attempts to run the flattened `(design point × scenario)` job list
/// through the SoA batch kernel ([`BatchSimulator`]) instead of one
/// [`SystemSimulator`] per job.
///
/// Dispatch rules — the group must be *homogeneous* (one tick program):
///
/// * every point's configuration must prepare successfully and share
///   the same `tick_s` (compared bitwise); a custom [`Configure`] that
///   varies the tick per point falls back to the per-sim path, as does
///   any preparation failure (the fallback then reproduces the exact
///   per-sim error at the right job index);
/// * with a multi-scenario ensemble, the point count must reach the
///   thread count — below that, per-sim scheduling over the flattened
///   jobs exposes more parallelism than point-chunked batches would.
///
/// Returns `None` to request the per-sim fallback. On the batched path
/// the responses are **bit-identical** to the per-sim path (the kernel's
/// lane-for-lane bit-exactness contract), job order is preserved, and a
/// mid-run failure surfaces the error of the smallest failing job
/// index: chunks are contiguous point ranges run through the same
/// deterministic queue, and within a chunk lanes are scanned in
/// point-major, scenario-minor order — exactly the flattened job order.
fn run_design_batched(
    space: &DesignSpace,
    configure: &Configure,
    indicators: &[Indicator],
    scenarios: &[&Scenario],
    points: &[Vec<f64>],
    threads: usize,
) -> Option<Result<Vec<Vec<f64>>>> {
    let n_points = points.len();
    let n_scen = scenarios.len();
    if n_points == 0 || n_scen == 0 {
        return Some(Ok(Vec::new()));
    }
    if n_scen > 1 && n_points < threads {
        return None;
    }
    let cfgs: Vec<NodeConfig> = points
        .iter()
        .map(|p| (configure)(&space.decode(p)))
        .collect();
    let prepared: Vec<PreparedSimulator> = match cfgs
        .iter()
        .map(|cfg| PreparedSimulator::new(cfg.clone()))
        .collect()
    {
        Ok(v) => v,
        Err(_) => return None,
    };
    let tick0 = prepared[0].config().tick_s.to_bits();
    if prepared
        .iter()
        .any(|p| p.config().tick_s.to_bits() != tick0)
    {
        return None;
    }

    // Contiguous point chunks, one batch per chunk; chunk order is
    // point order, so the queue's smallest-failing-job contract
    // composes across chunks.
    let width = n_points
        .div_ceil(threads.clamp(1, n_points))
        .clamp(1, MAX_BATCH_WIDTH);
    let n_chunks = n_points.div_ceil(width);
    let per_chunk = run_jobs(n_chunks, threads, |ci| {
        let lo = ci * width;
        let hi = (lo + width).min(n_points);
        let batch = BatchSimulator::new(prepared[lo..hi].to_vec())?;
        let per_scenario: Vec<Vec<ehsim_node::Result<_>>> = scenarios
            .iter()
            .map(|sc| batch.run_lanes(sc.source().as_ref(), sc.duration_s()))
            .collect::<ehsim_node::Result<_>>()?;
        let mut cells: Vec<Vec<f64>> = Vec::with_capacity((hi - lo) * n_scen);
        for lane in 0..(hi - lo) {
            for lanes in &per_scenario {
                match &lanes[lane] {
                    Ok(metrics) => cells.push(
                        indicators
                            .iter()
                            .map(|ind| ind.extract(metrics, &cfgs[lo + lane]))
                            .collect(),
                    ),
                    Err(e) => return Err(e.clone().into()),
                }
            }
        }
        Ok(cells)
    });
    Some(per_chunk.map(|chunks| chunks.into_iter().flatten().collect()))
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Campaign({} factors, {:?}, {} indicators)",
            self.space.k(),
            self.scenario,
            self.indicators.len()
        )
    }
}

/// A campaign over a whole [`ScenarioEnsemble`]: every design point is
/// simulated against every scenario, in one batched multi-threaded
/// pass, yielding per-scenario responses plus the weighted aggregate.
///
/// This is the data source for robust cross-scenario optimisation: one
/// response surface per indicator *per scenario*, all built from a
/// single simulation budget of `design.n_runs() × ensemble.len()`.
#[derive(Clone)]
pub struct EnsembleCampaign {
    space: DesignSpace,
    configure: Configure,
    ensemble: ScenarioEnsemble,
    indicators: Vec<Indicator>,
}

/// Results of running one design across a scenario ensemble.
#[derive(Debug, Clone)]
pub struct EnsembleCampaignResult {
    /// Scenario labels, in ensemble order.
    pub scenario_labels: Vec<String>,
    /// Normalised scenario weights, in ensemble order.
    pub weights: Vec<f64>,
    /// One full [`CampaignResult`] per scenario (identical `coded` /
    /// `physical` tables; responses differ).
    pub per_scenario: Vec<CampaignResult>,
    /// The weighted aggregate: `responses[run][i]` is the
    /// weight-normalised mean of the per-scenario responses. Its
    /// `sim_count` is the *total* number of simulator invocations.
    pub aggregate: CampaignResult,
}

impl EnsembleCampaignResult {
    /// One scenario's response vector for one indicator.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn scenario_response_column(&self, scenario_idx: usize, indicator_idx: usize) -> Vec<f64> {
        self.per_scenario[scenario_idx].response_column(indicator_idx)
    }
}

impl EnsembleCampaign {
    /// Creates an ensemble campaign from explicit parts.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if no indicators are given.
    pub fn new(
        space: DesignSpace,
        configure: Configure,
        ensemble: ScenarioEnsemble,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        if indicators.is_empty() {
            return Err(CoreError::invalid("need at least one indicator"));
        }
        Ok(EnsembleCampaign {
            space,
            configure,
            ensemble,
            indicators,
        })
    }

    /// Creates the standard four-factor campaign over an ensemble.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn standard(
        factors: StandardFactors,
        ensemble: ScenarioEnsemble,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        let space = factors.space()?;
        let configure: Configure = Arc::new(move |phys| factors.config_for(phys));
        EnsembleCampaign::new(space, configure, ensemble, indicators)
    }

    /// Creates an ensemble campaign over a *(tuning × policy)* space —
    /// the substrate for optimising adaptive-policy parameters robustly
    /// across a whole deployment envelope.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn adaptive(
        factors: PolicyFactors,
        ensemble: ScenarioEnsemble,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        let space = factors.space()?;
        let configure: Configure = Arc::new(move |phys| factors.config_for(phys));
        EnsembleCampaign::new(space, configure, ensemble, indicators)
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The scenario ensemble.
    pub fn ensemble(&self) -> &ScenarioEnsemble {
        &self.ensemble
    }

    /// The indicators, in response-column order.
    pub fn indicators(&self) -> &[Indicator] {
        &self.indicators
    }

    /// A single-scenario [`Campaign`] view sharing this campaign's
    /// space, configuration mapping, and indicators — e.g. to verify a
    /// candidate design against one environment.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if `scenario_idx` is out of
    /// range.
    pub fn campaign_for(&self, scenario_idx: usize) -> Result<Campaign> {
        if scenario_idx >= self.ensemble.len() {
            return Err(CoreError::invalid(format!(
                "no scenario {scenario_idx} in a {}-scenario ensemble",
                self.ensemble.len()
            )));
        }
        Campaign::new(
            self.space.clone(),
            self.configure.clone(),
            self.ensemble.scenario(scenario_idx).clone(),
            self.indicators.clone(),
        )
    }

    /// Runs one coded point against every scenario. Returns the
    /// per-scenario indicator vectors (ensemble order) and the
    /// weighted aggregate.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn evaluate_coded(&self, coded: &[f64]) -> Result<(Vec<Vec<f64>>, Vec<f64>)> {
        let mut per_scenario = Vec::with_capacity(self.ensemble.len());
        for (scenario, _) in self.ensemble.entries() {
            per_scenario.push(simulate_point(
                &self.space,
                &self.configure,
                &self.indicators,
                scenario,
                coded,
            )?);
        }
        let weights = self.ensemble.weights();
        let aggregate = (0..self.indicators.len())
            .map(|i| {
                per_scenario
                    .iter()
                    .zip(weights.iter())
                    .map(|(y, w)| w * y[i])
                    .sum()
            })
            .collect();
        Ok((per_scenario, aggregate))
    }

    /// Runs every `(design point, scenario)` pair in one batched pass
    /// using up to `threads` worker threads. The flattened job list is
    /// drained through a self-scheduling queue, so a four-point design
    /// over a five-scenario ensemble keeps 8 threads busy with 20 jobs
    /// rather than running five sequential 4-job campaigns — and
    /// scenarios of very different cost (a 20-minute stationary hum
    /// next to an hour-long drift) cannot strand a worker on one static
    /// chunk while the others idle. Responses are written to
    /// job-indexed slots, so results are bit-identical for any thread
    /// count.
    ///
    /// When the design is homogeneous (one tick program) and at least
    /// as many points as threads, the flattened jobs are dispatched to
    /// the SoA batch kernel ([`BatchSimulator`]) in contiguous point
    /// chunks — bit-identical to the per-sim path lane for lane;
    /// otherwise every job runs its own [`SystemSimulator`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on factor-count mismatch;
    /// propagates the first simulation error encountered.
    pub fn run_design(&self, design: &Design, threads: usize) -> Result<EnsembleCampaignResult> {
        if design.k() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "design has {} factors, space has {}",
                design.k(),
                self.space.k()
            )));
        }
        let start = Instant::now(); // lint:allow(D2): campaign wall time is reporting-only, never a response
        let points: Vec<Vec<f64>> = design.points().to_vec();
        let n_points = points.len();
        let n_scen = self.ensemble.len();
        let n_jobs = n_points * n_scen;
        // Job j simulates point j / n_scen against scenario j % n_scen.
        let scenarios: Vec<&Scenario> = (0..n_scen).map(|s| self.ensemble.scenario(s)).collect();
        let responses = match run_design_batched(
            &self.space,
            &self.configure,
            &self.indicators,
            &scenarios,
            &points,
            threads,
        ) {
            Some(batched) => batched?,
            None => run_jobs(n_jobs, threads, |j| {
                simulate_point(
                    &self.space,
                    &self.configure,
                    &self.indicators,
                    self.ensemble.scenario(j % n_scen),
                    &points[j / n_scen],
                )
            })?,
        };
        let wall = start.elapsed();
        let physical: Vec<Vec<f64>> = points.iter().map(|p| self.space.decode(p)).collect();
        let weights = self.ensemble.weights();

        // Un-flatten into per-scenario result tables.
        let per_scenario: Vec<CampaignResult> = (0..n_scen)
            .map(|s| CampaignResult {
                coded: points.clone(),
                physical: physical.clone(),
                responses: (0..n_points)
                    .map(|p| responses[p * n_scen + s].clone())
                    .collect(),
                sim_count: n_points,
                wall,
            })
            .collect();
        let aggregate_rows: Vec<Vec<f64>> = (0..n_points)
            .map(|p| {
                (0..self.indicators.len())
                    .map(|i| {
                        (0..n_scen)
                            .map(|s| weights[s] * responses[p * n_scen + s][i])
                            .sum()
                    })
                    .collect()
            })
            .collect();
        Ok(EnsembleCampaignResult {
            scenario_labels: self
                .ensemble
                .labels()
                .iter()
                .map(|l| l.to_string())
                .collect(),
            weights,
            per_scenario,
            aggregate: CampaignResult {
                coded: points,
                physical,
                responses: aggregate_rows,
                sim_count: n_jobs,
                wall,
            },
        })
    }
}

impl std::fmt::Debug for EnsembleCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EnsembleCampaign({} factors, {} scenarios, {} indicators)",
            self.space.k(),
            self.ensemble.len(),
            self.indicators.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_doe::design::factorial::full_factorial_2k;

    fn tiny_campaign() -> Campaign {
        Campaign::standard(
            StandardFactors::default(),
            Scenario::stationary_machine(300.0),
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap()
    }

    #[test]
    fn standard_space_has_four_factors() {
        let f = StandardFactors::default();
        let s = f.space().unwrap();
        assert_eq!(s.k(), 4);
        let cfg = f.config_for(&[0.1, 5.0, 1.0, -3.0]);
        assert!((cfg.storage.capacitance - 0.1).abs() < 1e-12);
        assert!((cfg.task.period_s - 5.0).abs() < 1e-12);
        assert!((cfg.tuning.retune_threshold_hz - 1.0).abs() < 1e-12);
        assert!((cfg.radio.tx_power_dbm + 3.0).abs() < 1e-12);
    }

    #[test]
    fn policy_factor_spaces_decode_to_valid_configs() {
        // Threshold family: 5 factors, band decodes to v_high > v_low.
        let f = PolicyFactors::standard(PolicyFactorSet::default_threshold());
        assert_eq!(f.k(), 5);
        let s = f.space().unwrap();
        assert_eq!(s.k(), 5);
        assert_eq!(s.index_of("policy_v_low_v"), Some(2));
        let cfg = f.config_for(&[0.1, 5.0, 2.8, 0.3, 10.0]);
        assert!((cfg.storage.capacitance - 0.1).abs() < 1e-12);
        assert!((cfg.task.period_s - 5.0).abs() < 1e-12);
        match cfg.energy_policy {
            PolicyKind::Threshold(t) => {
                assert!((t.v_low - 2.8).abs() < 1e-12);
                assert!((t.v_high - 3.1).abs() < 1e-12);
                assert!((t.throttle_scale - 10.0).abs() < 1e-12);
            }
            other => panic!("wrong family: {other:?}"),
        }
        cfg.validate().unwrap();

        // Energy-aware family, including clamping of extrapolated
        // points back into the valid parameter domain.
        let f = PolicyFactors::standard(PolicyFactorSet::default_energy_aware());
        assert_eq!(f.space().unwrap().k(), 5);
        let cfg = f.config_for(&[0.1, 5.0, 0.05, 1.07, 50.0]);
        match cfg.energy_policy {
            PolicyKind::EnergyAware(p) => {
                assert_eq!(p.margin, 1.0, "margin must clamp to its domain");
                assert!((p.ema_alpha - 0.05).abs() < 1e-12);
            }
            other => panic!("wrong family: {other:?}"),
        }
        cfg.validate().unwrap();

        // Static family: tuning factors only, identity policy.
        let f = PolicyFactors::standard(PolicyFactorSet::Static);
        assert_eq!(f.k(), 2);
        assert_eq!(f.space().unwrap().k(), 2);
        let cfg = f.config_for(&[0.2, 10.0]);
        assert_eq!(cfg.energy_policy, PolicyKind::Static);
        assert_eq!(cfg.policy, DutyCyclePolicy::Fixed);
        assert_eq!(PolicyFactorSet::Static.label(), "static");
        assert_eq!(PolicyFactorSet::default_threshold().label(), "threshold");
        assert_eq!(
            PolicyFactorSet::default_energy_aware().label(),
            "energy-aware"
        );
    }

    #[test]
    fn adaptive_campaign_runs_a_design() {
        let c = Campaign::adaptive(
            PolicyFactors::standard(PolicyFactorSet::default_threshold()),
            Scenario::stationary_machine(120.0),
            vec![Indicator::PacketsPerHour],
        )
        .unwrap();
        let d = full_factorial_2k(5).unwrap();
        let r = c.run_design(&d, 4).unwrap();
        assert_eq!(r.sim_count, 32);
        assert!(r.response_column(0).iter().all(|y| y.is_finite()));

        let ec = EnsembleCampaign::adaptive(
            PolicyFactors::standard(PolicyFactorSet::default_energy_aware()),
            ScenarioEnsemble::uniform(vec![
                Scenario::stationary_machine(120.0),
                Scenario::fading_machine(120.0),
            ])
            .unwrap(),
            vec![Indicator::PacketsPerHour],
        )
        .unwrap();
        let (per, agg) = ec.evaluate_coded(&[0.0; 5]).unwrap();
        assert_eq!(per.len(), 2);
        assert_eq!(agg.len(), 1);
    }

    #[test]
    fn evaluate_coded_returns_indicator_vector() {
        let c = tiny_campaign();
        let y = c.evaluate_coded(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(y.len(), 2);
        assert!(y[0] > 0.0, "packets/hour = {}", y[0]);
    }

    #[test]
    fn run_design_parallel_matches_serial() {
        let c = tiny_campaign();
        let d = full_factorial_2k(4).unwrap();
        let serial = c.run_design(&d, 1).unwrap();
        let parallel = c.run_design(&d, 4).unwrap();
        assert_eq!(serial.responses, parallel.responses);
        assert_eq!(serial.sim_count, 16);
        assert_eq!(parallel.coded.len(), 16);
        assert_eq!(parallel.physical.len(), 16);
        let col = parallel.response_column(0);
        assert_eq!(col.len(), 16);
    }

    #[test]
    fn design_dimension_mismatch_rejected() {
        let c = tiny_campaign();
        let d = full_factorial_2k(3).unwrap();
        assert!(c.run_design(&d, 2).is_err());
    }

    #[test]
    fn no_indicators_rejected() {
        let f = StandardFactors::default();
        let r = Campaign::standard(f, Scenario::stationary_machine(60.0), vec![]);
        assert!(r.is_err());
    }

    fn tiny_ensemble_campaign() -> EnsembleCampaign {
        let ensemble = ScenarioEnsemble::new(vec![
            (Scenario::stationary_machine(120.0), 0.7),
            (Scenario::drifting_machine(120.0), 0.3),
        ])
        .unwrap();
        EnsembleCampaign::standard(
            StandardFactors::default(),
            ensemble,
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap()
    }

    #[test]
    fn ensemble_run_design_matches_per_scenario_campaigns() {
        let ec = tiny_ensemble_campaign();
        let d = full_factorial_2k(4).unwrap();
        let batched = ec.run_design(&d, 4).unwrap();
        assert_eq!(batched.per_scenario.len(), 2);
        assert_eq!(batched.aggregate.sim_count, 32);
        assert_eq!(batched.scenario_labels[0], "stationary-64Hz");
        // Each scenario slice equals what a single-scenario campaign
        // produces for the same design.
        for s in 0..2 {
            let single = ec.campaign_for(s).unwrap().run_design(&d, 4).unwrap();
            assert_eq!(single.responses, batched.per_scenario[s].responses);
        }
        // The aggregate is the hand-computed weighted mean.
        for p in 0..d.n_runs() {
            for i in 0..2 {
                let want = 0.7 * batched.per_scenario[0].responses[p][i]
                    + 0.3 * batched.per_scenario[1].responses[p][i];
                let got = batched.aggregate.responses[p][i];
                assert!(
                    (got - want).abs() < 1e-12,
                    "run {p} ind {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn ensemble_run_design_is_thread_count_invariant() {
        let ec = tiny_ensemble_campaign();
        let d = full_factorial_2k(4).unwrap();
        let serial = ec.run_design(&d, 1).unwrap();
        let parallel = ec.run_design(&d, 8).unwrap();
        for s in 0..2 {
            assert_eq!(
                serial.per_scenario[s].responses,
                parallel.per_scenario[s].responses
            );
        }
        assert_eq!(serial.aggregate.responses, parallel.aggregate.responses);
    }

    #[test]
    fn ensemble_evaluate_coded_aggregates() {
        let ec = tiny_ensemble_campaign();
        let (per, agg) = ec.evaluate_coded(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(per.len(), 2);
        assert_eq!(agg.len(), 2);
        for i in 0..2 {
            let want = 0.7 * per[0][i] + 0.3 * per[1][i];
            assert!((agg[i] - want).abs() < 1e-12);
        }
        let col = ec
            .run_design(&full_factorial_2k(4).unwrap(), 4)
            .unwrap()
            .scenario_response_column(1, 0);
        assert_eq!(col.len(), 16);
    }

    #[test]
    fn ensemble_validation_and_debug() {
        let ec = tiny_ensemble_campaign();
        assert!(ec.campaign_for(5).is_err());
        assert!(ec.run_design(&full_factorial_2k(3).unwrap(), 2).is_err());
        assert!(!format!("{ec:?}").is_empty());
        let ensemble = ScenarioEnsemble::uniform(vec![Scenario::stationary_machine(60.0)]).unwrap();
        assert!(EnsembleCampaign::standard(StandardFactors::default(), ensemble, vec![]).is_err());
    }
}
