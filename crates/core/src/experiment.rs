//! Experiment campaigns: map design points to node configurations, run
//! the system simulator at each, and collect the indicator responses.

use crate::indicators::Indicator;
use crate::scenario::Scenario;
use crate::space::{DesignSpace, Factor};
use crate::{CoreError, Result};
use ehsim_doe::Design;
use ehsim_node::{NodeConfig, SystemSimulator};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The paper-style four-factor design problem over the default node:
/// storage capacitance, task period, retune threshold, and radio TX
/// power.
#[derive(Debug, Clone)]
pub struct StandardFactors {
    /// Base node configuration; each design point modifies a copy.
    pub base: NodeConfig,
    /// Storage capacitance range (F).
    pub c_store: (f64, f64),
    /// Task period range (s).
    pub task_period: (f64, f64),
    /// Retune threshold range (Hz).
    pub retune_threshold: (f64, f64),
    /// Radio TX power range (dBm).
    pub tx_power: (f64, f64),
}

impl Default for StandardFactors {
    fn default() -> Self {
        let mut base = NodeConfig::default_node();
        // Campaign runs cover hours of simulated time; a coarser tick
        // keeps one run in the tens of milliseconds.
        base.tick_s = 0.25;
        StandardFactors {
            base,
            c_store: (0.05, 0.5),
            task_period: (2.0, 30.0),
            retune_threshold: (0.25, 4.0),
            tx_power: (-10.0, 4.0),
        }
    }
}

impl StandardFactors {
    /// The corresponding [`DesignSpace`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if any range is inverted.
    pub fn space(&self) -> Result<DesignSpace> {
        DesignSpace::new(vec![
            Factor::new("c_store_f", self.c_store.0, self.c_store.1)?,
            Factor::new("task_period_s", self.task_period.0, self.task_period.1)?,
            Factor::new(
                "retune_threshold_hz",
                self.retune_threshold.0,
                self.retune_threshold.1,
            )?,
            Factor::new("tx_power_dbm", self.tx_power.0, self.tx_power.1)?,
        ])
    }

    /// Builds the node configuration for a physical design point
    /// `[c_store, task_period, retune_threshold, tx_power]`.
    pub fn config_for(&self, physical: &[f64]) -> NodeConfig {
        let mut cfg = self.base.clone();
        cfg.storage.capacitance = physical[0];
        cfg.task.period_s = physical[1];
        cfg.tuning.retune_threshold_hz = physical[2];
        cfg.radio.tx_power_dbm = physical[3];
        cfg
    }
}

/// Maps a physical design point to a node configuration.
pub type Configure = Arc<dyn Fn(&[f64]) -> NodeConfig + Send + Sync>;

/// A simulation campaign: design space + configuration mapping +
/// scenario + indicators.
#[derive(Clone)]
pub struct Campaign {
    space: DesignSpace,
    configure: Configure,
    scenario: Scenario,
    indicators: Vec<Indicator>,
}

/// Results of running a design through the simulator.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Coded design points, one per run.
    pub coded: Vec<Vec<f64>>,
    /// Physical design points, one per run.
    pub physical: Vec<Vec<f64>>,
    /// Responses: `responses[run][indicator]`.
    pub responses: Vec<Vec<f64>>,
    /// Number of simulator invocations.
    pub sim_count: usize,
    /// Wall-clock time of the campaign.
    pub wall: Duration,
}

impl CampaignResult {
    /// One indicator's response vector across all runs.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn response_column(&self, idx: usize) -> Vec<f64> {
        self.responses.iter().map(|r| r[idx]).collect()
    }
}

impl Campaign {
    /// Creates a campaign from explicit parts.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if no indicators are given.
    pub fn new(
        space: DesignSpace,
        configure: Configure,
        scenario: Scenario,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        if indicators.is_empty() {
            return Err(CoreError::invalid("need at least one indicator"));
        }
        Ok(Campaign {
            space,
            configure,
            scenario,
            indicators,
        })
    }

    /// Creates the standard four-factor campaign.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn standard(
        factors: StandardFactors,
        scenario: Scenario,
        indicators: Vec<Indicator>,
    ) -> Result<Self> {
        let space = factors.space()?;
        let configure: Configure = Arc::new(move |phys| factors.config_for(phys));
        Campaign::new(space, configure, scenario, indicators)
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The indicators, in response-column order.
    pub fn indicators(&self) -> &[Indicator] {
        &self.indicators
    }

    /// Runs one simulation at a coded point and returns the indicator
    /// vector.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (e.g. an invalid generated
    /// configuration).
    pub fn evaluate_coded(&self, coded: &[f64]) -> Result<Vec<f64>> {
        let physical = self.space.decode(coded);
        let cfg = (self.configure)(&physical);
        let sim = SystemSimulator::new(cfg.clone())?;
        let metrics = sim.run(self.scenario.source().as_ref(), self.scenario.duration_s())?;
        Ok(self
            .indicators
            .iter()
            .map(|ind| ind.extract(&metrics, &cfg))
            .collect())
    }

    /// Runs every design point, using up to `threads` worker threads.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on factor-count mismatch;
    /// propagates the first simulation error encountered.
    pub fn run_design(&self, design: &Design, threads: usize) -> Result<CampaignResult> {
        if design.k() != self.space.k() {
            return Err(CoreError::invalid(format!(
                "design has {} factors, space has {}",
                design.k(),
                self.space.k()
            )));
        }
        let start = Instant::now();
        let points: Vec<Vec<f64>> = design.points().to_vec();
        let n = points.len();
        let threads = threads.clamp(1, n.max(1));

        let mut responses: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut first_error: Option<CoreError> = None;
        std::thread::scope(|scope| {
            let chunks: Vec<(usize, &[Vec<f64>])> = {
                let chunk_size = n.div_ceil(threads);
                points
                    .chunks(chunk_size)
                    .enumerate()
                    .map(|(ci, c)| (ci * chunk_size, c))
                    .collect()
            };
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(offset, chunk)| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(chunk.len());
                        for p in chunk {
                            out.push(self.evaluate_coded(p));
                        }
                        (offset, out)
                    })
                })
                .collect();
            for h in handles {
                let (offset, results) = h.join().expect("campaign worker panicked");
                for (i, r) in results.into_iter().enumerate() {
                    match r {
                        Ok(v) => responses[offset + i] = Some(v),
                        Err(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                        }
                    }
                }
            }
        });
        if let Some(e) = first_error {
            return Err(e);
        }
        let responses: Vec<Vec<f64>> = responses
            .into_iter()
            .map(|r| r.expect("no error implies every run succeeded"))
            .collect();
        let physical: Vec<Vec<f64>> = points.iter().map(|p| self.space.decode(p)).collect();
        Ok(CampaignResult {
            coded: points,
            physical,
            responses,
            sim_count: n,
            wall: start.elapsed(),
        })
    }
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Campaign({} factors, {:?}, {} indicators)",
            self.space.k(),
            self.scenario,
            self.indicators.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_doe::design::factorial::full_factorial_2k;

    fn tiny_campaign() -> Campaign {
        Campaign::standard(
            StandardFactors::default(),
            Scenario::stationary_machine(300.0),
            vec![Indicator::PacketsPerHour, Indicator::BrownoutMarginV],
        )
        .unwrap()
    }

    #[test]
    fn standard_space_has_four_factors() {
        let f = StandardFactors::default();
        let s = f.space().unwrap();
        assert_eq!(s.k(), 4);
        let cfg = f.config_for(&[0.1, 5.0, 1.0, -3.0]);
        assert!((cfg.storage.capacitance - 0.1).abs() < 1e-12);
        assert!((cfg.task.period_s - 5.0).abs() < 1e-12);
        assert!((cfg.tuning.retune_threshold_hz - 1.0).abs() < 1e-12);
        assert!((cfg.radio.tx_power_dbm + 3.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_coded_returns_indicator_vector() {
        let c = tiny_campaign();
        let y = c.evaluate_coded(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(y.len(), 2);
        assert!(y[0] > 0.0, "packets/hour = {}", y[0]);
    }

    #[test]
    fn run_design_parallel_matches_serial() {
        let c = tiny_campaign();
        let d = full_factorial_2k(4).unwrap();
        let serial = c.run_design(&d, 1).unwrap();
        let parallel = c.run_design(&d, 4).unwrap();
        assert_eq!(serial.responses, parallel.responses);
        assert_eq!(serial.sim_count, 16);
        assert_eq!(parallel.coded.len(), 16);
        assert_eq!(parallel.physical.len(), 16);
        let col = parallel.response_column(0);
        assert_eq!(col.len(), 16);
    }

    #[test]
    fn design_dimension_mismatch_rejected() {
        let c = tiny_campaign();
        let d = full_factorial_2k(3).unwrap();
        assert!(c.run_design(&d, 2).is_err());
    }

    #[test]
    fn no_indicators_rejected() {
        let f = StandardFactors::default();
        let r = Campaign::standard(f, Scenario::stationary_machine(60.0), vec![]);
        assert!(r.is_err());
    }
}
