//! Campaign-level batched-dispatch equivalence tests.
//!
//! `Campaign::run_design` / `EnsembleCampaign::run_design` dispatch
//! homogeneous designs to the SoA batch kernel. These tests pin the
//! dispatch contract: responses are bit-identical to the per-point
//! `evaluate_coded` oracle for every thread count, heterogeneous
//! designs fall back to the per-sim path with identical results, and a
//! mid-run failure surfaces the per-sim error.

use ehsim_core::experiment::{
    Campaign, Configure, EnsembleCampaign, PolicyFactorSet, PolicyFactors, StandardFactors,
};
use ehsim_core::indicators::Indicator;
use ehsim_core::scenario::{Scenario, ScenarioEnsemble};
use ehsim_core::space::{DesignSpace, Factor};
use ehsim_doe::design::factorial::full_factorial_2k;
use ehsim_node::NodeConfig;
use ehsim_vibration::{Envelope, Sine, VibrationSource};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn indicators() -> Vec<Indicator> {
    vec![
        Indicator::PacketsPerHour,
        Indicator::UptimeFraction,
        Indicator::FinalStorageV,
        Indicator::EnergyBalanceJ,
    ]
}

fn assert_rows_bitwise_eq(got: &[Vec<f64>], want: &[Vec<f64>], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: row count");
    for (r, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{what}: row {r} width");
        for (c, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: row {r} col {c}: {a} != {b}"
            );
        }
    }
}

#[test]
fn standard_campaign_matches_per_point_oracle_for_every_thread_count() {
    let campaign = Campaign::standard(
        StandardFactors::default(),
        Scenario::stationary_machine(600.0),
        indicators(),
    )
    .unwrap();
    let design = full_factorial_2k(4).unwrap();
    let oracle: Vec<Vec<f64>> = design
        .points()
        .iter()
        .map(|p| campaign.evaluate_coded(p).unwrap())
        .collect();
    for threads in THREAD_COUNTS {
        let result = campaign.run_design(&design, threads).unwrap();
        assert_eq!(result.sim_count, 16);
        assert_rows_bitwise_eq(
            &result.responses,
            &oracle,
            &format!("standard campaign, {threads} threads"),
        );
    }
}

#[test]
fn adaptive_policy_campaign_matches_per_point_oracle() {
    let campaign = Campaign::adaptive(
        PolicyFactors::standard(PolicyFactorSet::default_energy_aware()),
        Scenario::drifting_machine(600.0),
        indicators(),
    )
    .unwrap();
    let design = full_factorial_2k(5).unwrap();
    let oracle: Vec<Vec<f64>> = design
        .points()
        .iter()
        .map(|p| campaign.evaluate_coded(p).unwrap())
        .collect();
    for threads in THREAD_COUNTS {
        let result = campaign.run_design(&design, threads).unwrap();
        assert_rows_bitwise_eq(
            &result.responses,
            &oracle,
            &format!("adaptive campaign, {threads} threads"),
        );
    }
}

#[test]
fn ensemble_campaign_matches_oracle_and_is_thread_count_invariant() {
    let ensemble = ScenarioEnsemble::uniform(vec![
        Scenario::stationary_machine(600.0),
        Scenario::drifting_machine(900.0),
    ])
    .unwrap();
    let campaign =
        EnsembleCampaign::standard(StandardFactors::default(), ensemble, indicators()).unwrap();
    let design = full_factorial_2k(4).unwrap();

    let mut oracle_per_scenario = vec![Vec::new(); 2];
    let mut oracle_aggregate = Vec::new();
    for p in design.points() {
        let (per_scenario, aggregate) = campaign.evaluate_coded(p).unwrap();
        for (s, row) in per_scenario.into_iter().enumerate() {
            oracle_per_scenario[s].push(row);
        }
        oracle_aggregate.push(aggregate);
    }

    // 16 points over 8 threads takes the batched path; 32 threads over
    // a 2-scenario ensemble exceeds the point count and falls back to
    // per-sim scheduling — both must match the oracle bit for bit.
    for threads in [1, 2, 8, 32] {
        let result = campaign.run_design(&design, threads).unwrap();
        assert_eq!(result.aggregate.sim_count, 32);
        for s in 0..2 {
            assert_rows_bitwise_eq(
                &result.per_scenario[s].responses,
                &oracle_per_scenario[s],
                &format!("ensemble scenario {s}, {threads} threads"),
            );
        }
        assert_rows_bitwise_eq(
            &result.aggregate.responses,
            &oracle_aggregate,
            &format!("ensemble aggregate, {threads} threads"),
        );
    }
}

#[test]
fn heterogeneous_tick_design_falls_back_and_still_matches_oracle() {
    // A configure that varies tick_s across the design box: no shared
    // tick program, so dispatch must take the per-sim fallback.
    let configure: Configure = Arc::new(|phys: &[f64]| {
        let mut cfg = NodeConfig::default_node();
        cfg.storage.capacitance = phys[0];
        cfg.task.period_s = phys[1];
        cfg.tick_s = if phys[0] > 0.2 { 0.25 } else { 0.2 };
        cfg
    });
    let space = DesignSpace::new(vec![
        Factor::new("c_store_f", 0.05, 0.5).unwrap(),
        Factor::new("task_period_s", 2.0, 30.0).unwrap(),
    ])
    .unwrap();
    let campaign = Campaign::new(
        space,
        configure,
        Scenario::stationary_machine(600.0),
        indicators(),
    )
    .unwrap();
    let design = full_factorial_2k(2).unwrap();
    let oracle: Vec<Vec<f64>> = design
        .points()
        .iter()
        .map(|p| campaign.evaluate_coded(p).unwrap())
        .collect();
    for threads in THREAD_COUNTS {
        let result = campaign.run_design(&design, threads).unwrap();
        assert_rows_bitwise_eq(
            &result.responses,
            &oracle,
            &format!("heterogeneous-tick campaign, {threads} threads"),
        );
    }
}

/// A source whose envelope goes non-finite after `t_poison`, killing
/// the Thevenin stage mid-run.
#[derive(Debug)]
struct PoisonAfter {
    inner: Sine,
    t_poison: f64,
}

impl VibrationSource for PoisonAfter {
    fn acceleration(&self, t: f64) -> f64 {
        self.inner.acceleration(t)
    }

    fn envelope(&self, t: f64) -> Envelope {
        let mut env = self.inner.envelope(t);
        if t >= self.t_poison {
            env.freq_hz = f64::INFINITY;
        }
        env
    }
}

#[test]
fn mid_run_failure_surfaces_the_per_sim_error() {
    let scenario = Scenario::new(
        Arc::new(PoisonAfter {
            inner: Sine::new(0.9, 64.0).unwrap(),
            t_poison: 120.0,
        }),
        600.0,
        "poisoned",
    )
    .unwrap();
    let campaign = Campaign::standard(StandardFactors::default(), scenario, indicators()).unwrap();
    let design = full_factorial_2k(4).unwrap();
    // The shared source poisons every point at the same tick, so the
    // smallest failing job is point 0; the campaign error must be that
    // point's per-sim error, for any thread count.
    let want = campaign
        .evaluate_coded(&design.points()[0])
        .unwrap_err()
        .to_string();
    for threads in THREAD_COUNTS {
        let got = campaign
            .run_design(&design, threads)
            .unwrap_err()
            .to_string();
        assert_eq!(got, want, "{threads} threads");
    }
}
