//! The check engine: walk the tree, lex, scan, resolve suppressions
//! and the baseline, and render the verdict.

use crate::baseline::Baseline;
use crate::lexer;
use crate::rules::{self, RuleId};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a finding was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingStatus {
    /// Not suppressed and not covered by the baseline: fails the check.
    New,
    /// Covered by the committed baseline allowance for its (file, rule).
    Baselined,
    /// Suppressed by an inline `// lint:allow(rule): reason` annotation.
    Suppressed,
}

/// One resolved finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What fired (e.g. "`HashMap`").
    pub what: String,
    /// Resolution.
    pub status: FindingStatus,
}

/// An inline suppression annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule it allows.
    pub rule: RuleId,
    /// 1-based line of the comment.
    pub line: usize,
    /// The mandatory justification.
    pub reason: String,
}

/// A problem with the scan itself (unlexable file, malformed
/// annotation, unused annotation): always fails the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanProblem {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for file-level problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

/// The full outcome of one `check` run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every finding, resolved, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Scan problems (malformed/unused annotations, lex failures).
    pub problems: Vec<ScanProblem>,
    /// Baseline entries whose debt has shrunk (or vanished): the check
    /// still passes, but the baseline should be ratcheted down.
    pub stale_baseline: Vec<String>,
    /// Number of files scanned (rules applied).
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree passes: no new findings and no scan problems.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty() && self.findings.iter().all(|f| f.status != FindingStatus::New)
    }

    /// Counts by status: (new, baselined, suppressed).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match f.status {
                FindingStatus::New => c.0 += 1,
                FindingStatus::Baselined => c.1 += 1,
                FindingStatus::Suppressed => c.2 += 1,
            }
        }
        c
    }

    /// The `(file, rule, count)` triples of every *unsuppressed*
    /// finding — the shape `--update-baseline` writes out.
    pub fn unsuppressed_counts(&self) -> Vec<(String, RuleId, usize)> {
        let mut counts: BTreeMap<(String, RuleId), usize> = BTreeMap::new();
        for f in &self.findings {
            if f.status != FindingStatus::Suppressed {
                *counts.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
            }
        }
        counts.into_iter().map(|((f, r), c)| (f, r, c)).collect()
    }

    /// Renders the human-readable verdict (what the CLI prints).
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        for p in &self.problems {
            let _ = writeln!(out, "{}:{}: scan problem: {}", p.file, p.line, p.message);
        }
        for f in &self.findings {
            let (tag, show) = match f.status {
                FindingStatus::New => ("NEW", true),
                FindingStatus::Baselined => ("baselined", verbose),
                FindingStatus::Suppressed => ("allowed", verbose),
            };
            if show {
                let _ = writeln!(
                    out,
                    "{}:{}:{} {} [{}] {} — {}",
                    f.file,
                    f.line,
                    f.col,
                    f.rule,
                    tag,
                    f.what,
                    f.rule.summary()
                );
            }
        }
        for s in &self.stale_baseline {
            let _ = writeln!(out, "stale baseline: {s}");
        }
        let (new, baselined, suppressed) = self.counts();
        let _ = writeln!(
            out,
            "ehsim-analyze: {} files scanned, {} findings ({} new, {} baselined, {} allowed), \
             {} scan problems",
            self.files_scanned,
            self.findings.len(),
            new,
            baselined,
            suppressed,
            self.problems.len()
        );
        if self.is_clean() {
            let _ = writeln!(out, "determinism contract: CLEAN");
        } else {
            let _ = writeln!(
                out,
                "determinism contract: VIOLATED — fix the sites above, or (only with a \
                 written justification) add `// lint:allow(<rule>): <reason>`"
            );
        }
        out
    }
}

/// Parses every `lint:allow(<rule>): <reason>` annotation in a comment
/// token's text. Malformed annotations are reported as problems.
fn parse_suppressions(
    comment: &str,
    line: usize,
    file: &str,
    problems: &mut Vec<ScanProblem>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    let mut rest = comment;
    const MARKER: &str = "lint:allow(";
    while let Some(at) = rest.find(MARKER) {
        let after = &rest[at + MARKER.len()..];
        let Some(close) = after.find(')') else {
            problems.push(ScanProblem {
                file: file.to_string(),
                line,
                message: "malformed lint:allow annotation: missing `)`".into(),
            });
            return out;
        };
        let rule_str = after[..close].trim();
        let tail = &after[close + 1..];
        let (annotation_ok, reason) = match tail.strip_prefix(':') {
            Some(r) => {
                // The reason runs to the next annotation or end of comment.
                let end = r.find(MARKER).unwrap_or(r.len());
                (true, r[..end].trim().to_string())
            }
            None => (false, String::new()),
        };
        match RuleId::parse(rule_str) {
            Some(rule) if annotation_ok && !reason.is_empty() => {
                out.push(Suppression { rule, line, reason });
            }
            Some(_) => {
                problems.push(ScanProblem {
                    file: file.to_string(),
                    line,
                    message: format!(
                        "lint:allow({rule_str}) needs a non-empty reason: \
                         `// lint:allow({rule_str}): <why this is sound>`"
                    ),
                });
            }
            None => {
                problems.push(ScanProblem {
                    file: file.to_string(),
                    line,
                    message: format!("lint:allow names unknown rule `{rule_str}`"),
                });
            }
        }
        rest = tail;
    }
    out
}

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Collects every scannable `.rs` file under `root`, sorted by
/// relative path (determinism: the report order never depends on
/// filesystem iteration order).
fn collect_sources(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((path, rel));
            }
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

/// Checks the tree rooted at `root` against `baseline`.
///
/// # Errors
///
/// Only on I/O failure walking or reading the tree; everything found
/// *in* the sources is reported through the [`Report`].
pub fn check_tree(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    let mut report = Report::default();
    let mut per_file_rule: BTreeMap<(String, RuleId), Vec<usize>> = BTreeMap::new();
    for (path, rel) in collect_sources(root)? {
        let class = rules::classify(&rel);
        if !class.any_rule_applies() {
            continue;
        }
        report.files_scanned += 1;
        let src = fs::read_to_string(&path)?;
        let tokens = match lexer::lex(&src) {
            Ok(t) => t,
            Err(e) => {
                report.problems.push(ScanProblem {
                    file: rel.clone(),
                    line: e.line,
                    message: format!("cannot lex: {e}"),
                });
                continue;
            }
        };
        let in_test = rules::test_spans(&tokens);
        let raw = rules::scan(&tokens, &in_test, &class);
        // Gather suppressions from comments. Doc comments are exempt:
        // they *describe* annotations (`///` text, doc examples), they
        // never *are* one — a suppression must sit in a plain comment
        // at the site it covers.
        let is_doc = |text: &str| {
            text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
        };
        let mut suppressions: Vec<(Suppression, bool)> = Vec::new();
        for t in &tokens {
            if matches!(
                t.kind,
                crate::lexer::TokenKind::LineComment | crate::lexer::TokenKind::BlockComment
            ) && !is_doc(&t.text)
            {
                for s in parse_suppressions(&t.text, t.line, &rel, &mut report.problems) {
                    suppressions.push((s, false));
                }
            }
        }
        // Resolve each finding: suppressed if a matching annotation
        // sits on its line or the line directly above.
        for f in raw {
            let mut status = FindingStatus::New;
            // A same-line annotation wins over one on the line above, so
            // adjacent annotated sites each consume their own annotation.
            let matched = suppressions
                .iter()
                .position(|(s, _)| s.rule == f.rule && s.line == f.line)
                .or_else(|| {
                    suppressions
                        .iter()
                        .position(|(s, _)| s.rule == f.rule && s.line + 1 == f.line)
                });
            if let Some(i) = matched {
                suppressions[i].1 = true;
                status = FindingStatus::Suppressed;
            }
            let idx = report.findings.len();
            report.findings.push(Finding {
                rule: f.rule,
                file: rel.clone(),
                line: f.line,
                col: f.col,
                what: f.what,
                status,
            });
            if status == FindingStatus::New {
                per_file_rule
                    .entry((rel.clone(), f.rule))
                    .or_default()
                    .push(idx);
            }
        }
        for (s, used) in &suppressions {
            if !used {
                report.problems.push(ScanProblem {
                    file: rel.clone(),
                    line: s.line,
                    message: format!(
                        "unused lint:allow({}) — the finding it covered is gone; \
                         delete the annotation",
                        s.rule
                    ),
                });
            }
        }
    }
    // Apply the baseline: within each (file, rule) group, the first
    // `allowed` findings are grandfathered; any beyond that are new.
    for ((file, rule), idxs) in &per_file_rule {
        let allowed = baseline.allowed(file, *rule);
        for (k, &idx) in idxs.iter().enumerate() {
            if k < allowed {
                report.findings[idx].status = FindingStatus::Baselined;
            }
        }
        if idxs.len() < allowed {
            report.stale_baseline.push(format!(
                "{file} / {rule}: {} findings remain of {allowed} baselined — ratchet the \
                 baseline down (--update-baseline)",
                idxs.len()
            ));
        }
    }
    for (file, rule, allowed) in baseline.entries() {
        if !per_file_rule.contains_key(&(file.to_string(), rule)) {
            report.stale_baseline.push(format!(
                "{file} / {rule}: 0 findings remain of {allowed} baselined — ratchet the \
                 baseline down (--update-baseline)"
            ));
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}
