//! A hand-rolled Rust lexer, sufficient for rule scanning.
//!
//! The analyzer must never mistake the *mention* of a pattern (in a
//! comment, a doc example, a string literal) for a *use* of it, so the
//! lexer's whole job is classification: identifiers, lifetimes,
//! literals (string / raw string / byte string / char / numeric, with
//! the float-vs-integer distinction the D5 rule needs), comments
//! (retained — suppression annotations live there), and punctuation.
//! It handles the constructs that defeat regex-based scanners: nested
//! block comments, raw strings with arbitrary `#` fences, lifetimes vs
//! char literals, and raw identifiers.
//!
//! No external dependencies: the container is offline, so `syn` is not
//! an option, and full parsing is not needed — every determinism rule
//! is expressible over this token stream.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `as`, `fn`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`), fenced off from char literals.
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    IntLit,
    /// A float literal (`1.0`, `2e-3`, `1f64`).
    FloatLit,
    /// A string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br##"…"##`,
    /// `c"…"`.
    StrLit,
    /// A char or byte literal: `'a'`, `'\n'`, `b'x'`.
    CharLit,
    /// A `//` line comment (text retained for `lint:allow` parsing).
    LineComment,
    /// A `/* … */` block comment, nesting handled.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One token: kind, text, and the 1-based position where it starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token's source text (including delimiters for literals and
    /// comment markers for comments).
    pub text: String,
    /// 1-based source line of the first character.
    pub line: usize,
    /// 1-based column (in characters) of the first character.
    pub col: usize,
}

/// A lexing failure (unterminated literal or comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the offending construct starts.
    pub line: usize,
    /// 1-based column where the offending construct starts.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn text_since(&self, start: usize) -> String {
        self.chars[start..self.pos].iter().collect()
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream.
///
/// # Errors
///
/// [`LexError`] on an unterminated string, char, raw string, or block
/// comment — real Rust sources never trigger this, but the analyzer
/// also scans fixture trees, and a file it cannot classify must fail
/// loudly rather than silently skip rules.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let kind = if c == '/' && cur.peek_at(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            lex_block_comment(&mut cur)?
        } else if c == '\'' {
            lex_quote(&mut cur)?
        } else if is_ident_start(c) {
            lex_ident_or_prefixed_literal(&mut cur)?
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur)?;
            TokenKind::StrLit
        } else {
            cur.bump();
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            text: cur.text_since(start),
            line,
            col,
        });
    }
    Ok(out)
}

fn lex_line_comment(cur: &mut Cursor) -> TokenKind {
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::LineComment
}

fn lex_block_comment(cur: &mut Cursor) -> Result<TokenKind, LexError> {
    let (line, col) = (cur.line, cur.col);
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => {
                return Err(LexError {
                    line,
                    col,
                    message: "unterminated block comment".into(),
                });
            }
        }
    }
    Ok(TokenKind::BlockComment)
}

/// `'` starts either a lifetime (`'a`, `'static`) or a char literal
/// (`'a'`, `'\n'`, `'\u{1F600}'`). The discriminator: an escape is
/// always a char literal; an identifier-like run is a lifetime unless
/// a single such character is immediately closed by `'`.
fn lex_quote(cur: &mut Cursor) -> Result<TokenKind, LexError> {
    let (line, col) = (cur.line, cur.col);
    cur.bump(); // opening '
    match cur.peek() {
        Some('\\') => {
            lex_char_escape_tail(cur, line, col)?;
            Ok(TokenKind::CharLit)
        }
        Some(c) if is_ident_start(c) && cur.peek_at(1) != Some('\'') => {
            // Lifetime: consume the identifier run.
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                cur.bump();
            }
            Ok(TokenKind::Lifetime)
        }
        Some(_) => {
            cur.bump(); // the character itself
            if cur.peek() == Some('\'') {
                cur.bump();
                Ok(TokenKind::CharLit)
            } else {
                Err(LexError {
                    line,
                    col,
                    message: "unterminated char literal".into(),
                })
            }
        }
        None => Err(LexError {
            line,
            col,
            message: "dangling quote at end of input".into(),
        }),
    }
}

/// Consumes an escape sequence plus the closing `'` of a char literal
/// (the cursor sits on the backslash).
fn lex_char_escape_tail(cur: &mut Cursor, line: usize, col: usize) -> Result<(), LexError> {
    cur.bump(); // backslash
    match cur.bump() {
        Some('u') => {
            // \u{…}: consume through the closing brace.
            while let Some(c) = cur.peek() {
                let done = c == '}';
                cur.bump();
                if done {
                    break;
                }
            }
        }
        Some('x') => {
            cur.bump();
            cur.bump();
        }
        Some(_) => {}
        None => {
            return Err(LexError {
                line,
                col,
                message: "unterminated escape in char literal".into(),
            });
        }
    }
    if cur.peek() == Some('\'') {
        cur.bump();
        Ok(())
    } else {
        Err(LexError {
            line,
            col,
            message: "unterminated char literal".into(),
        })
    }
}

/// An identifier — unless it is one of the literal prefixes (`r`, `b`,
/// `br`, `c`, `cr`) directly fused to a string/char opener, or a raw
/// identifier (`r#type`).
fn lex_ident_or_prefixed_literal(cur: &mut Cursor) -> Result<TokenKind, LexError> {
    let start = cur.pos;
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        cur.bump();
    }
    let ident: String = cur.chars[start..cur.pos].iter().collect();
    match (ident.as_str(), cur.peek()) {
        ("r" | "br" | "cr", Some('#' | '"')) => {
            // Raw identifier r#foo: exactly `r` + `#` + ident-start.
            if ident == "r" && cur.peek() == Some('#') && cur.peek_at(1).is_some_and(is_ident_start)
            {
                cur.bump(); // '#'
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    cur.bump();
                }
                return Ok(TokenKind::Ident);
            }
            lex_raw_string(cur)?;
            Ok(TokenKind::StrLit)
        }
        ("b" | "c", Some('"')) => {
            lex_string(cur)?;
            Ok(TokenKind::StrLit)
        }
        ("b", Some('\'')) => {
            let (line, col) = (cur.line, cur.col);
            cur.bump(); // opening '
            if cur.peek() == Some('\\') {
                lex_char_escape_tail(cur, line, col)?;
            } else {
                cur.bump();
                if cur.peek() == Some('\'') {
                    cur.bump();
                } else {
                    return Err(LexError {
                        line,
                        col,
                        message: "unterminated byte literal".into(),
                    });
                }
            }
            Ok(TokenKind::CharLit)
        }
        _ => Ok(TokenKind::Ident),
    }
}

/// Raw string tail: the cursor sits on the first `#` or `"` after the
/// `r`/`br`/`cr` prefix. Consumes `#…#"…"#…#` with a matching fence.
fn lex_raw_string(cur: &mut Cursor) -> Result<(), LexError> {
    let (line, col) = (cur.line, cur.col);
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some('"') {
        return Err(LexError {
            line,
            col,
            message: "malformed raw string fence".into(),
        });
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('"') => {
                // Need `hashes` consecutive '#' to close.
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    return Ok(());
                }
            }
            Some(_) => {}
            None => {
                return Err(LexError {
                    line,
                    col,
                    message: "unterminated raw string".into(),
                });
            }
        }
    }
}

/// Ordinary (possibly byte/C) string: cursor on the opening `"`.
fn lex_string(cur: &mut Cursor) -> Result<(), LexError> {
    let (line, col) = (cur.line, cur.col);
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump(); // whatever is escaped, including `"` and `\`
            }
            Some('"') => return Ok(()),
            Some(_) => {}
            None => {
                return Err(LexError {
                    line,
                    col,
                    message: "unterminated string literal".into(),
                });
            }
        }
    }
}

/// Numeric literal. The kind matters to D5: a float is a literal with
/// a fractional part, a (decimal) exponent, or an `f32`/`f64` suffix.
fn lex_number(cur: &mut Cursor) -> TokenKind {
    let radix_prefix = cur.peek() == Some('0')
        && matches!(cur.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefix {
        cur.bump();
        cur.bump();
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                cur.bump();
            } else {
                break;
            }
        }
        return TokenKind::IntLit;
    }
    let mut is_float = false;
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '_' {
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part — but not `1..2` (range) and not `1.method()`.
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        cur.bump();
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == '_' {
                cur.bump();
            } else {
                break;
            }
        }
    } else if cur.peek() == Some('.')
        && !cur
            .peek_at(1)
            .is_some_and(|c| c == '.' || is_ident_start(c))
    {
        // Trailing-dot float `1.`
        is_float = true;
        cur.bump();
    }
    // Exponent.
    if matches!(cur.peek(), Some('e' | 'E')) {
        let mut k = 1usize;
        if matches!(cur.peek_at(1), Some('+' | '-')) {
            k = 2;
        }
        if cur.peek_at(k).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            for _ in 0..=k {
                cur.bump();
            }
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == '_' {
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (u32, i64, f64, usize, …) — fused into the literal.
    if cur.peek().is_some_and(is_ident_start) {
        let suffix_start = cur.pos;
        while let Some(c) = cur.peek() {
            if !is_ident_continue(c) {
                break;
            }
            cur.bump();
        }
        let suffix: String = cur.chars[suffix_start..cur.pos].iter().collect();
        if suffix.starts_with('f') {
            is_float = true;
        }
    }
    if is_float {
        TokenKind::FloatLit
    } else {
        TokenKind::IntLit
    }
}
