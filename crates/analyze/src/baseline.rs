//! The committed findings baseline: grandfathered debt, metered.
//!
//! The baseline maps `(file, rule)` to the number of findings that are
//! *allowed to exist* — the debt present when the rule was introduced.
//! The check fails as soon as a file accumulates **more** findings of a
//! rule than its baseline grants, so new violations cannot hide behind
//! old ones, while the existing debt stays visible (and its shrinkage
//! is reported, so the baseline can be ratcheted down).
//!
//! The format is a restricted TOML subset — `[[allow]]` tables with
//! `file`, `rule`, and `count` keys — parsed by hand (no external
//! dependencies anywhere in this crate).

use crate::rules::RuleId;
use std::collections::BTreeMap;

/// Parsed baseline: allowed finding counts keyed by `(file, rule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    allowed: BTreeMap<(String, RuleId), usize>,
}

/// A baseline-file syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in the baseline file.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// An empty baseline (every finding is new).
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// The allowed count for `(file, rule)` (0 if absent).
    pub fn allowed(&self, file: &str, rule: RuleId) -> usize {
        self.allowed
            .get(&(file.to_string(), rule))
            .copied()
            .unwrap_or(0)
    }

    /// Number of `[[allow]]` entries.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// Whether the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }

    /// Iterates entries in sorted order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, RuleId, usize)> {
        self.allowed.iter().map(|((f, r), &c)| (f.as_str(), *r, c))
    }

    /// Builds a baseline from `(file, rule, count)` triples (used by
    /// `--update-baseline` and by tests).
    pub fn from_counts(counts: impl IntoIterator<Item = (String, RuleId, usize)>) -> Self {
        let mut allowed = BTreeMap::new();
        for (file, rule, count) in counts {
            if count > 0 {
                allowed.insert((file, rule), count);
            }
        }
        Baseline { allowed }
    }

    /// Parses the baseline file format.
    ///
    /// # Errors
    ///
    /// [`BaselineError`] on anything outside the restricted subset:
    /// unknown keys, unknown rules, duplicate entries, values of the
    /// wrong shape.
    pub fn parse(text: &str) -> Result<Self, BaselineError> {
        let mut allowed: BTreeMap<(String, RuleId), usize> = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<RuleId>, Option<usize>, usize)> = None;
        let err = |line: usize, message: &str| BaselineError {
            line,
            message: message.to_string(),
        };
        let flush = |entry: Option<(Option<String>, Option<RuleId>, Option<usize>, usize)>,
                     allowed: &mut BTreeMap<(String, RuleId), usize>|
         -> Result<(), BaselineError> {
            if let Some((file, rule, count, at)) = entry {
                let file = file.ok_or_else(|| err(at, "entry missing `file`"))?;
                let rule = rule.ok_or_else(|| err(at, "entry missing `rule`"))?;
                let count = count.ok_or_else(|| err(at, "entry missing `count`"))?;
                if allowed.insert((file.clone(), rule), count).is_some() {
                    return Err(err(at, &format!("duplicate entry for {file} / {rule}")));
                }
            }
            Ok(())
        };
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                flush(current.take(), &mut allowed)?;
                current = Some((None, None, None, lineno));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, &format!("unrecognised line: {line}")));
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(entry) = current.as_mut() else {
                return Err(err(lineno, "key outside an [[allow]] entry"));
            };
            match key {
                "file" => {
                    let v = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err(lineno, "`file` must be a quoted string"))?;
                    entry.0 = Some(v.to_string());
                }
                "rule" => {
                    let v = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err(lineno, "`rule` must be a quoted string"))?;
                    entry.1 = Some(
                        RuleId::parse(v)
                            .ok_or_else(|| err(lineno, &format!("unknown rule `{v}`")))?,
                    );
                }
                "count" => {
                    entry.2 = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| err(lineno, "`count` must be a non-negative integer"))?,
                    );
                }
                other => return Err(err(lineno, &format!("unknown key `{other}`"))),
            }
        }
        flush(current.take(), &mut allowed)?;
        Ok(Baseline { allowed })
    }

    /// Renders the baseline back to its file format (sorted, stable).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ehsim-analyze baseline: grandfathered determinism-lint findings,\n\
             # metered per (file, rule). The check fails when a file exceeds its\n\
             # allowance, so new violations cannot hide behind old debt.\n\
             #\n\
             # Regenerate (after burning debt down, never to admit new debt):\n\
             #     cargo run -p ehsim-analyze -- check --update-baseline\n",
        );
        for ((file, rule), count) in &self.allowed {
            out.push_str(&format!(
                "\n[[allow]]\nfile = \"{file}\"\nrule = \"{rule}\"\ncount = {count}\n"
            ));
        }
        out
    }
}
