//! CLI for the workspace determinism lint.
//!
//! ```text
//! cargo run -p ehsim-analyze -- check [--root DIR] [--baseline FILE]
//!                                     [--no-baseline] [--update-baseline]
//!                                     [--verbose]
//! ```

#![forbid(unsafe_code)]

use ehsim_analyze::baseline::Baseline;
use ehsim_analyze::engine;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: ehsim-analyze check [--root DIR] [--baseline FILE] \
                     [--no-baseline] [--update-baseline] [--verbose]";

struct Options {
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
    verbose: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline_path: None,
        no_baseline: false,
        update_baseline: false,
        verbose: false,
    };
    if args.first().map(String::as_str) != Some("check") {
        return Err(format!("expected the `check` subcommand\n{USAGE}"));
    }
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or(format!("--root needs a value\n{USAGE}"))?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or(format!("--baseline needs a value\n{USAGE}"))?;
                opts.baseline_path = Some(PathBuf::from(v));
            }
            "--no-baseline" => opts.no_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "--verbose" | "-v" => opts.verbose = true,
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`, falling back
/// to two levels above this crate's manifest.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            break;
        }
    }
    let fallback = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.canonicalize().ok()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => find_workspace_root().ok_or("cannot locate the workspace root; pass --root")?,
    };
    if !root.is_dir() {
        return Err(format!("root `{}` is not a directory", root.display()));
    }
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("crates/analyze/baseline.toml"));
    let baseline = if opts.no_baseline {
        Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text).map_err(|e| e.to_string())?,
            Err(_) => {
                eprintln!(
                    "note: no baseline at {} — every finding counts as new",
                    baseline_path.display()
                );
                Baseline::empty()
            }
        }
    };
    let report = engine::check_tree(&root, &baseline).map_err(|e| e.to_string())?;
    if opts.update_baseline {
        let updated = Baseline::from_counts(report.unsuppressed_counts());
        std::fs::write(&baseline_path, updated.render())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} ({} entries)",
            baseline_path.display(),
            updated.len()
        );
        // A freshly written baseline covers everything by construction,
        // but scan problems (malformed/unused annotations) still fail.
        return Ok(report.problems.is_empty());
    }
    print!("{}", report.render(opts.verbose));
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ehsim-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
