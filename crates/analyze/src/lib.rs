#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `ehsim-analyze` — the workspace determinism lint.
//!
//! Every headline result in this workspace rests on a determinism
//! contract: CSVs byte-identical across invocations and thread counts,
//! fleet runs bit-equal to sequential oracles, cache replays
//! bit-identical to fresh simulations. Until now that contract was
//! enforced only *after the fact*, by differential tests. This crate
//! enforces it *at the source*: a hand-rolled Rust lexer
//! ([`lexer`] — no `syn`, the build is offline) feeds a rule engine
//! ([`rules`]) that walks every non-vendored workspace source file and
//! flags the patterns that silently break bit-reproducibility:
//!
//! | rule | clause |
//! |------|--------|
//! | D1 | `HashMap`/`HashSet` in result-affecting library code |
//! | D2 | `Instant`/`SystemTime` outside bench/reporting code |
//! | D3 | entropy/environment reads in library code |
//! | D4 | `unwrap`/`expect`/`panic!` in non-test library code |
//! | D5 | float→int `as` casts in solver/kernel hot paths |
//! | D6 | crate root missing `#![forbid(unsafe_code)]` |
//!
//! Suppression is explicit and auditable: an inline
//! `// lint:allow(D2): <reason>` annotation (the reason is mandatory,
//! and an annotation that stops matching anything fails the check),
//! plus a committed [`baseline`] (`crates/analyze/baseline.toml`) that
//! meters grandfathered debt per `(file, rule)` — the check fails on
//! any *new* violation while existing debt stays visible.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p ehsim-analyze -- check
//! ```

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use baseline::{Baseline, BaselineError};
pub use engine::{check_tree, Finding, FindingStatus, Report, ScanProblem};
pub use rules::RuleId;
