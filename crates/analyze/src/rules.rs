//! The determinism rule set and its application to one token stream.
//!
//! Each rule is a named, documented clause of the workspace's
//! bit-reproducibility contract (see `docs/ARCHITECTURE.md`, "Static
//! analysis & the determinism contract"). Rules fire on *code* tokens
//! only — comments, strings, and doc examples never trigger them — and
//! test code (`tests/`, `benches/`, `examples/`, `src/bin/`,
//! `#[cfg(test)]` items) is exempt from everything except what it
//! opts into.

use crate::lexer::{Token, TokenKind};

/// A determinism rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in result-affecting library code.
    D1,
    /// `std::time::Instant` / `SystemTime` outside bench/reporting code.
    D2,
    /// Entropy or environment reads in library code.
    D3,
    /// `unwrap`/`expect`/`panic!` in non-test library code.
    D4,
    /// Float→int `as` casts in solver/kernel hot paths.
    D5,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    D6,
}

impl RuleId {
    /// All rules, in order.
    pub const ALL: [RuleId; 6] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
    ];

    /// The rule's short code (`"D1"`…).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
        }
    }

    /// Parses a short code.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "D4" => Some(RuleId::D4),
            "D5" => Some(RuleId::D5),
            "D6" => Some(RuleId::D6),
            _ => None,
        }
    }

    /// One-line statement of the contract clause the rule enforces.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "HashMap/HashSet in result-affecting library code: iteration order is \
                 seeded per-instance and varies across runs — use BTreeMap/BTreeSet \
                 or drain through a sorted Vec"
            }
            RuleId::D2 => {
                "wall-clock read (Instant/SystemTime) outside bench/reporting code: \
                 wall-clock values must never reach result bytes"
            }
            RuleId::D3 => {
                "entropy/environment read (from_entropy/thread_rng/env::var) in \
                 library code: all randomness must flow from an explicit seed"
            }
            RuleId::D4 => {
                "unwrap/expect/panic! in non-test library code: fallible paths must \
                 surface typed errors, not abort"
            }
            RuleId::D5 => {
                "float->int `as` cast in a solver/kernel hot path: truncation hides \
                 rounding intent — justify the rounding mode explicitly"
            }
            RuleId::D6 => "crate root missing #![forbid(unsafe_code)]",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// How a file participates in the scan, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Under a `tests/`, `benches/`, or `examples/` component.
    pub test: bool,
    /// Part of the `crates/bench` reporting crate.
    pub bench_crate: bool,
    /// A binary target (`src/bin/…` or `main.rs`).
    pub bin: bool,
    /// A crate root (`src/lib.rs`).
    pub crate_root: bool,
    /// Inside one of the solver/kernel hot-path crates (D5 scope).
    pub kernel: bool,
}

/// Solver/kernel hot paths: the crates whose numeric loops produce the
/// bits every differential test pins.
const KERNEL_PATHS: [&str; 4] = [
    "crates/numeric/src",
    "crates/circuit/src",
    "crates/power/src",
    "crates/node/src",
];

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let test = rel_path
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    let bin = rel_path.split('/').any(|c| c == "bin") || rel_path.ends_with("main.rs");
    FileClass {
        test,
        bench_crate: rel_path.starts_with("crates/bench/"),
        bin,
        crate_root: rel_path.ends_with("src/lib.rs"),
        kernel: KERNEL_PATHS.iter().any(|k| rel_path.starts_with(k)),
    }
}

impl FileClass {
    /// Whether `rule` applies to this file at all (test spans within
    /// the file are a further, token-level exemption).
    pub fn rule_applies(&self, rule: RuleId) -> bool {
        match rule {
            RuleId::D1 | RuleId::D2 | RuleId::D3 | RuleId::D4 => {
                !self.test && !self.bench_crate && !self.bin
            }
            RuleId::D5 => self.kernel && !self.test && !self.bin,
            RuleId::D6 => self.crate_root && !self.test,
        }
    }

    /// Whether any rule can fire here (files where nothing applies are
    /// skipped without lexing).
    pub fn any_rule_applies(&self) -> bool {
        RuleId::ALL.iter().any(|&r| self.rule_applies(r))
    }
}

/// One raw rule hit, before suppression/baseline resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// The rule that fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What fired, e.g. "`HashMap`" or "`.unwrap()`".
    pub what: String,
}

/// Marks every token inside a `#[cfg(test)]` item (attribute through
/// the item's closing `}` or `;`), so token-level rules can exempt
/// embedded unit-test modules.
pub fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    // Indices of code tokens (comments are transparent to matching).
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let is_punct = |ci: usize, c: char| -> bool {
        ci < code.len() && tok(ci).kind == TokenKind::Punct && tok(ci).text == c.to_string()
    };
    let is_ident = |ci: usize, s: &str| -> bool {
        ci < code.len() && tok(ci).kind == TokenKind::Ident && tok(ci).text == s
    };
    let mut ci = 0usize;
    while ci < code.len() {
        // Match `# [ cfg ( test ) ]` exactly.
        let is_cfg_test = is_punct(ci, '#')
            && is_punct(ci + 1, '[')
            && is_ident(ci + 2, "cfg")
            && is_punct(ci + 3, '(')
            && is_ident(ci + 4, "test")
            && is_punct(ci + 5, ')')
            && is_punct(ci + 6, ']');
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        let span_start = ci;
        let mut cj = ci + 7;
        // Skip any further attributes on the same item.
        while is_punct(cj, '#') && is_punct(cj + 1, '[') {
            let mut depth = 0usize;
            cj += 1;
            while cj < code.len() {
                if is_punct(cj, '[') {
                    depth += 1;
                } else if is_punct(cj, ']') {
                    depth -= 1;
                    if depth == 0 {
                        cj += 1;
                        break;
                    }
                }
                cj += 1;
            }
        }
        // The item body ends at the first `;` (item without a body) or
        // at the matching `}` of its first brace.
        while cj < code.len() && !is_punct(cj, ';') && !is_punct(cj, '{') {
            cj += 1;
        }
        if cj < code.len() && is_punct(cj, '{') {
            let mut depth = 0usize;
            while cj < code.len() {
                if is_punct(cj, '{') {
                    depth += 1;
                } else if is_punct(cj, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                cj += 1;
            }
        }
        let span_end = cj.min(code.len().saturating_sub(1));
        let (lo, hi) = (code[span_start], code[span_end]);
        for flag in &mut flags[lo..=hi] {
            *flag = true;
        }
        ci = span_end + 1;
    }
    flags
}

const INT_TYPES: [&str; 12] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// `f64` methods whose result is a float: a `)`-terminated call chain
/// ending in one of these, cast with `as <int>`, is a proven
/// float→int truncation.
const FLOAT_METHODS: [&str; 17] = [
    "floor", "ceil", "round", "trunc", "fract", "sqrt", "cbrt", "ln", "log2", "log10", "exp",
    "exp2", "powi", "powf", "hypot", "mul_add", "recip",
];

/// Runs every applicable token-level rule over one file's tokens.
///
/// `in_test[i]` exempts token `i` (from [`test_spans`]). D6 is also
/// checked here (presence of `#![forbid(unsafe_code)]` for crate
/// roots).
pub fn scan(tokens: &[Token], in_test: &[bool], class: &FileClass) -> Vec<RawFinding> {
    let mut out = Vec::new();
    // Code-token indices for context-sensitive lookarounds.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut forbids_unsafe = false;
    for (ci, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        // D6 detection runs over test spans too (the attribute sits at
        // the very top of a crate root anyway).
        if class.crate_root
            && t.kind == TokenKind::Punct
            && t.text == "#"
            && matches_seq(
                tokens,
                &code,
                ci,
                &["!", "[", "forbid", "(", "unsafe_code", ")", "]"],
            )
        {
            forbids_unsafe = true;
        }
        if in_test[ti] || t.kind != TokenKind::Ident {
            continue;
        }
        let prev = |k: usize| -> Option<&Token> { ci.checked_sub(k).map(|cj| &tokens[code[cj]]) };
        let next = |k: usize| -> Option<&Token> { code.get(ci + k).map(|&tj| &tokens[tj]) };
        let mut push = |rule: RuleId, what: String| {
            if class.rule_applies(rule) {
                out.push(RawFinding {
                    rule,
                    line: t.line,
                    col: t.col,
                    what,
                });
            }
        };
        match t.text.as_str() {
            "HashMap" | "HashSet" => push(RuleId::D1, format!("`{}`", t.text)),
            "Instant" | "SystemTime" => push(RuleId::D2, format!("`{}`", t.text)),
            "from_entropy" | "thread_rng" => push(RuleId::D3, format!("`{}`", t.text)),
            "var" => {
                // `env::var` / `std::env::var`.
                let colons = prev(1).is_some_and(|p| p.text == ":")
                    && prev(2).is_some_and(|p| p.text == ":");
                if colons && prev(3).is_some_and(|p| p.text == "env") {
                    push(RuleId::D3, "`env::var`".into());
                }
            }
            "unwrap" | "expect" => {
                if prev(1).is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".") {
                    push(RuleId::D4, format!("`.{}()`", t.text));
                }
            }
            "panic" => {
                if next(1).is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!") {
                    push(RuleId::D4, "`panic!`".into());
                }
            }
            "as" => {
                if let Some(n) = next(1) {
                    if n.kind == TokenKind::Ident && INT_TYPES.contains(&n.text.as_str()) {
                        if let Some(what) = float_cast_evidence(tokens, &code, ci) {
                            push(RuleId::D5, format!("`{} as {}`", what, n.text));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if class.rule_applies(RuleId::D6) && !forbids_unsafe {
        out.push(RawFinding {
            rule: RuleId::D6,
            line: 1,
            col: 1,
            what: "missing `#![forbid(unsafe_code)]`".into(),
        });
    }
    out
}

/// Checks that the code tokens after `code[ci]` spell out `expected`
/// (idents and single-char puncts, verbatim).
fn matches_seq(tokens: &[Token], code: &[usize], ci: usize, expected: &[&str]) -> bool {
    expected.iter().enumerate().all(|(k, want)| {
        code.get(ci + 1 + k)
            .is_some_and(|&tj| tokens[tj].text == *want)
    })
}

/// Lexical evidence that the expression cast with `as` (code index
/// `ci`) is a float: either a float literal, or a call chain whose
/// final method is a float-returning `f64` method. Bare identifiers
/// are invisible to a lexer and deliberately not guessed at — the rule
/// is conservative (documented in ARCHITECTURE).
fn float_cast_evidence(tokens: &[Token], code: &[usize], ci: usize) -> Option<String> {
    let prev_ci = ci.checked_sub(1)?;
    let prev = &tokens[code[prev_ci]];
    if prev.kind == TokenKind::FloatLit {
        return Some(prev.text.clone());
    }
    if prev.kind == TokenKind::Punct && prev.text == ")" {
        // Walk back to the matching '(' over code tokens.
        let mut depth = 0usize;
        let mut cj = prev_ci;
        loop {
            let t = &tokens[code[cj]];
            if t.kind == TokenKind::Punct && t.text == ")" {
                depth += 1;
            } else if t.kind == TokenKind::Punct && t.text == "(" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            cj = cj.checked_sub(1)?;
        }
        // `(` must follow `.method` with method in the float set.
        let m = cj.checked_sub(1).map(|k| &tokens[code[k]])?;
        let dot = cj.checked_sub(2).map(|k| &tokens[code[k]])?;
        if m.kind == TokenKind::Ident
            && dot.kind == TokenKind::Punct
            && dot.text == "."
            && FLOAT_METHODS.contains(&m.text.as_str())
        {
            return Some(format!("….{}()", m.text));
        }
    }
    None
}
