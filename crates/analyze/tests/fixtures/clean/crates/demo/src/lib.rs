//! Fixture: a clean library crate root — ordered collections, typed
//! errors, no wall-clock, `unsafe` forbidden. Test code may use the
//! convenient forms freely; the `#[cfg(test)]` span is exempt.
//! Never compiled — only lexed by the analyzer's end-to-end tests.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Sums the values of a small map.
pub fn demo() -> u32 {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    m.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn exempt_inside_tests() {
        let started = Instant::now();
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert!(started.elapsed().as_secs() < 60);
    }
}
