//! Fixture: the D5 cast with a justified line-above annotation.
//! Never compiled — only lexed by the analyzer's end-to-end tests.

pub fn bucket(x: f64) -> usize {
    // lint:allow(D5): fixture exercising suppression of the cast below
    (x * 4.0).floor() as usize
}
