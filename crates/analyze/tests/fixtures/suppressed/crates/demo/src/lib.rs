//! Fixture: the same violations, each carrying a justified inline
//! annotation (both the same-line and the line-above form).
//! Never compiled — only lexed by the analyzer's end-to-end tests.

#![forbid(unsafe_code)]

use std::collections::HashMap; // lint:allow(D1): fixture exercising same-line suppression
// lint:allow(D2): fixture exercising line-above suppression
use std::time::Instant;

pub fn demo() -> u64 {
    // lint:allow(D1): fixture exercising line-above suppression
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _t = Instant::now(); // lint:allow(D2): fixture exercising same-line suppression
    // lint:allow(D3): fixture exercising line-above suppression
    let _rng = rand::thread_rng();
    let home = std::env::var("HOME"); // lint:allow(D3): fixture exercising same-line suppression
    // lint:allow(D4): fixture exercising line-above suppression
    let _ = home.unwrap();
    m.len() as u64
}
