//! Fixture: a kernel-path file with a float->int `as` cast (D5).
//! Never compiled — only lexed by the analyzer's end-to-end tests.

pub fn bucket(x: f64) -> usize {
    (x * 4.0).floor() as usize
}
