//! Fixture: a library crate root violating D1, D2, D3, D4, and D6.
//! Never compiled — only lexed by the analyzer's end-to-end tests.

use std::collections::HashMap;
use std::time::Instant;

pub fn demo() -> u64 {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _t = Instant::now();
    let _rng = rand::thread_rng();
    let home = std::env::var("HOME").unwrap();
    if home.is_empty() {
        panic!("no home");
    }
    m.len() as u64
}
