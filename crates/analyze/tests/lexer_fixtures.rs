//! Lexer fixture suite: the constructs that make naive regex scanning
//! of Rust source wrong, each pinned to the exact token stream the
//! rule engine depends on.

use ehsim_analyze::lexer::{lex, TokenKind};

/// The (kind, text) pairs of a source snippet.
fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    lex(src)
        .expect("fixture lexes")
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

/// Only the identifier texts of a snippet.
fn idents(src: &str) -> Vec<String> {
    kinds(src)
        .into_iter()
        .filter(|(k, _)| *k == TokenKind::Ident)
        .map(|(_, t)| t)
        .collect()
}

#[test]
fn line_comments_swallow_code() {
    let toks = kinds("let x = 1; // HashMap::new()\nlet y;");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::LineComment && t.contains("HashMap")));
    // The HashMap inside the comment must NOT surface as an ident.
    assert!(!idents("let x = 1; // HashMap::new()").contains(&"HashMap".to_string()));
}

#[test]
fn nested_block_comments_terminate_at_matching_depth() {
    let src = "a /* outer /* inner */ still outer */ b";
    let toks = kinds(src);
    assert_eq!(
        toks,
        vec![
            (TokenKind::Ident, "a".into()),
            (
                TokenKind::BlockComment,
                "/* outer /* inner */ still outer */".into()
            ),
            (TokenKind::Ident, "b".into()),
        ]
    );
}

#[test]
fn unterminated_block_comment_is_a_lex_error() {
    let err = lex("/* never closed").expect_err("must fail");
    assert_eq!((err.line, err.col), (1, 1));
}

#[test]
fn strings_swallow_code_and_escapes() {
    // The escaped quote must not end the string early.
    let ids = idents(r#"let s = "HashMap \" Instant"; after"#);
    assert_eq!(ids, vec!["let", "s", "after"]);
}

#[test]
fn raw_strings_with_hash_fences() {
    // One-hash raw string containing a bare quote.
    let toks = kinds(r####"let s = r#"contains " quote"#; x"####);
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::StrLit && t.contains("contains")));
    assert!(idents(r####"let s = r#"HashMap"#; x"####).contains(&"x".to_string()));

    // Two-hash fence: a `"#` inside does not terminate.
    let src = r#####"r##"inner "# still inside"## tail"#####;
    let toks = kinds(src);
    assert_eq!(toks[0].0, TokenKind::StrLit);
    assert!(toks[0].1.contains("still inside"));
    assert_eq!(toks[1], (TokenKind::Ident, "tail".into()));
}

#[test]
fn byte_and_c_strings_are_strings() {
    for src in ["b\"bytes\"", "br#\"raw bytes\"#", "c\"cstr\""] {
        let toks = kinds(src);
        assert_eq!(toks.len(), 1, "{src}");
        assert_eq!(toks[0].0, TokenKind::StrLit, "{src}");
    }
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    assert!(toks.iter().all(|(k, _)| *k != TokenKind::CharLit));
}

#[test]
fn char_literals_including_escapes_and_bytes() {
    for src in ["'x'", "'\\n'", "'\\''", "b'q'", "'\\u{1F600}'"] {
        let toks = kinds(src);
        assert_eq!(toks.len(), 1, "{src}");
        assert_eq!(toks[0].0, TokenKind::CharLit, "{src}");
    }
    // A char literal holding a quote char must not open a string.
    let ids = idents("let c = '\"'; after");
    assert_eq!(ids, vec!["let", "c", "after"]);
}

#[test]
fn raw_identifiers_are_idents() {
    let ids = idents("let r#type = 1; r#fn");
    assert!(ids.contains(&"r#type".to_string()));
    assert!(ids.contains(&"r#fn".to_string()));
}

#[test]
fn numeric_literals_classify_float_vs_int() {
    let cases = [
        ("42", TokenKind::IntLit),
        ("1_000u64", TokenKind::IntLit),
        ("0xFF", TokenKind::IntLit),
        ("0b1010", TokenKind::IntLit),
        ("0o77", TokenKind::IntLit),
        ("1.0", TokenKind::FloatLit),
        ("2e-3", TokenKind::FloatLit),
        ("1f64", TokenKind::FloatLit),
        ("3.14_f32", TokenKind::FloatLit),
    ];
    for (src, want) in cases {
        let toks = kinds(src);
        assert_eq!(toks.len(), 1, "{src} -> {toks:?}");
        assert_eq!(toks[0].0, want, "{src}");
    }
}

#[test]
fn range_and_field_access_stay_integral() {
    // `1..2` is two ints and two dots, not a malformed float.
    let toks = kinds("1..2");
    assert_eq!(
        toks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![
            TokenKind::IntLit,
            TokenKind::Punct,
            TokenKind::Punct,
            TokenKind::IntLit
        ]
    );
    // Tuple field access `x.0` keeps the 0 integral.
    let toks = kinds("x.0");
    assert_eq!(toks[2].0, TokenKind::IntLit);
}

#[test]
fn positions_are_one_based_and_track_lines() {
    let toks = lex("ab\n  cd").expect("lexes");
    assert_eq!((toks[0].line, toks[0].col), (1, 1));
    assert_eq!((toks[1].line, toks[1].col), (2, 3));
}

#[test]
fn doc_comments_are_comments() {
    let toks = kinds("/// outer doc\n//! inner doc\n/** block doc */\nfn f() {}");
    let comments: Vec<_> = toks
        .iter()
        .filter(|(k, _)| matches!(k, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    assert_eq!(comments.len(), 3);
}
