//! End-to-end checks over committed fixture trees: every rule fires,
//! both suppression forms work, a clean tree passes, and the baseline
//! meters debt per (file, rule).

use ehsim_analyze::{check_tree, Baseline, FindingStatus, RuleId};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn every_rule_fires_on_the_violations_tree() {
    let report = check_tree(&fixture("violations"), &Baseline::empty()).expect("scan runs");
    assert!(!report.is_clean());
    assert!(report.problems.is_empty(), "{:?}", report.problems);
    for rule in RuleId::ALL {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule {rule} never fired on the violations fixture"
        );
    }
    assert!(report
        .findings
        .iter()
        .all(|f| f.status == FindingStatus::New));
    // The D5 cast is pinned to the kernel-path file.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == RuleId::D5 && f.file == "crates/numeric/src/kernel.rs"));
}

#[test]
fn both_suppression_forms_silence_the_suppressed_tree() {
    let report = check_tree(&fixture("suppressed"), &Baseline::empty()).expect("scan runs");
    assert!(report.is_clean(), "{}", report.render(true));
    assert!(report.problems.is_empty(), "{:?}", report.problems);
    // Everything the tree still contains is explicitly allowed...
    assert!(!report.findings.is_empty());
    assert!(report
        .findings
        .iter()
        .all(|f| f.status == FindingStatus::Suppressed));
    // ...and D6 is satisfied by the attribute, so it fires nowhere.
    assert!(report.findings.iter().all(|f| f.rule != RuleId::D6));
}

#[test]
fn clean_tree_has_zero_findings() {
    let report = check_tree(&fixture("clean"), &Baseline::empty()).expect("scan runs");
    assert!(report.is_clean());
    assert!(report.findings.is_empty(), "{}", report.render(true));
    assert!(report.problems.is_empty());
    assert!(report.stale_baseline.is_empty());
}

#[test]
fn baseline_grandfathers_exactly_the_allowed_count() {
    let root = fixture("violations");
    // A baseline generated from the tree's own debt makes it pass.
    let raw = check_tree(&root, &Baseline::empty()).expect("scan runs");
    let full = Baseline::from_counts(raw.unsuppressed_counts());
    let report = check_tree(&root, &full).expect("scan runs");
    assert!(report.is_clean(), "{}", report.render(true));
    assert!(report
        .findings
        .iter()
        .all(|f| f.status == FindingStatus::Baselined));
    assert!(report.stale_baseline.is_empty());

    // One allowance short on (demo lib, D1): exactly one finding stays new.
    let mut counts = raw.unsuppressed_counts();
    let d1 = counts
        .iter_mut()
        .find(|(f, r, _)| f == "crates/demo/src/lib.rs" && *r == RuleId::D1)
        .expect("demo lib has D1 debt");
    d1.2 -= 1;
    let short = Baseline::from_counts(counts);
    let report = check_tree(&root, &short).expect("scan runs");
    assert!(!report.is_clean());
    let new: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.status == FindingStatus::New)
        .collect();
    assert_eq!(new.len(), 1);
    assert_eq!(new[0].rule, RuleId::D1);
}

#[test]
fn shrunken_debt_is_reported_as_stale() {
    let root = fixture("violations");
    let raw = check_tree(&root, &Baseline::empty()).expect("scan runs");
    // Inflate one entry and add one for a file with no findings at all.
    let mut counts = raw.unsuppressed_counts();
    for c in counts.iter_mut() {
        if c.0 == "crates/numeric/src/kernel.rs" && c.1 == RuleId::D5 {
            c.2 += 3;
        }
    }
    counts.push(("crates/demo/src/gone.rs".into(), RuleId::D4, 2));
    let report = check_tree(&root, &Baseline::from_counts(counts)).expect("scan runs");
    // Stale allowances never fail the check, but both kinds are reported.
    assert!(report.is_clean(), "{}", report.render(true));
    assert_eq!(
        report.stale_baseline.len(),
        2,
        "{:?}",
        report.stale_baseline
    );
    assert!(report
        .stale_baseline
        .iter()
        .any(|s| s.contains("kernel.rs")));
    assert!(report.stale_baseline.iter().any(|s| s.contains("gone.rs")));
}

#[test]
fn malformed_and_unused_annotations_are_problems() {
    let dir = std::env::temp_dir().join(format!("ehsim-analyze-e2e-{}", std::process::id()));
    let src_dir = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n\
         // lint:allow(D1)\n\
         pub fn nothing() {}\n\
         // lint:allow(D9): no such rule\n\
         // lint:allow(D2): nothing on the next line uses the clock\n\
         pub fn also_nothing() {}\n",
    )
    .expect("write fixture");
    let report = check_tree(&dir, &Baseline::empty()).expect("scan runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(!report.is_clean());
    assert_eq!(report.problems.len(), 3, "{:?}", report.problems);
    let messages: Vec<&str> = report.problems.iter().map(|p| p.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("non-empty reason")));
    assert!(messages.iter().any(|m| m.contains("unknown rule")));
    assert!(messages.iter().any(|m| m.contains("unused lint:allow")));
}

#[test]
fn binary_exit_codes_match_the_verdict() {
    let bin = env!("CARGO_BIN_EXE_ehsim-analyze");
    let run = |tree: &str| {
        Command::new(bin)
            .args(["check", "--no-baseline", "--root"])
            .arg(fixture(tree))
            .output()
            .expect("binary runs")
    };

    let clean = run("clean");
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");

    let dirty = run("violations");
    assert_eq!(dirty.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("VIOLATED"), "{stdout}");

    let suppressed = run("suppressed");
    assert_eq!(suppressed.status.code(), Some(0), "suppressed tree exits 0");
}

#[test]
fn binary_checks_the_real_workspace_cleanly() {
    // The committed baseline plus inline annotations must hold: the
    // workspace's own determinism contract is CLEAN at all times.
    let bin = env!("CARGO_BIN_EXE_ehsim-analyze");
    let out = Command::new(bin)
        .arg("check")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("CLEAN"), "{stdout}");
}
