//! Sequential adaptive DoE: budget-aware response-surface refinement.
//!
//! Classical RSM is not one-shot. The textbook flow — and the flow the
//! adaptive-allocation literature (Sharma et al., arXiv:0809.3908;
//! Srivastava & Koksal, arXiv:1009.0569) shows dominates static designs
//! under a fixed evaluation budget — is *sequential*: screen a region
//! with a cheap first-order design, follow the path of steepest ascent
//! while the surface is first-order dominated, and only where curvature
//! appears pay for the axial runs that support a full quadratic, then
//! relocate and shrink the region of interest around its stationary
//! point. This module implements that loop on top of the existing
//! design/fit/diagnose machinery:
//!
//! * [`Region`] — a movable, shrinkable box of interest inside the
//!   global coded domain, with local `[-1, 1]` coordinates.
//! * [`augment_axial`] / [`augment_foldover`] — design augmentation,
//!   clamped to the factor domain, so an already-run design is extended
//!   instead of replaced.
//! * [`SequentialEvaluator`] — the budget-aware evaluation contract.
//!   Implementations memoize: re-asking for an evaluated point is free,
//!   which is what makes augmentation and re-centred designs cheap.
//!   [`FnEvaluator`] wraps a closure for tests and analytic studies;
//!   `ehsim-core`'s `CachedEvaluator` runs real simulation campaigns.
//! * [`RefinementLoop`] — the driver: fit, gate on diagnostics
//!   (R²/PRESS-based predicted R²), then ascend, recenter-and-shrink,
//!   or shrink, iterating until the region collapses, the iteration cap
//!   is hit, or the next design no longer fits the budget.
//!
//! # Example: refine an analytic surface under a budget
//!
//! ```
//! use ehsim_doe::optimize::Goal;
//! use ehsim_doe::sequential::{FnEvaluator, RefinementConfig, RefinementLoop};
//!
//! // A bowl with its peak at (0.55, -0.3) — quadratic, so the loop's
//! // curvature step homes in after the first augmented fit.
//! let truth = |x: &[f64]| 4.0 - (x[0] - 0.55).powi(2) - 2.0 * (x[1] + 0.3).powi(2);
//! let mut ev = FnEvaluator::new(truth).with_budget(80);
//! let loop_ = RefinementLoop::new(RefinementConfig::new(Goal::Maximize, 2)).unwrap();
//! let report = loop_.run(&mut ev).unwrap();
//! assert!((report.best_point[0] - 0.55).abs() < 0.05, "{:?}", report.best_point);
//! assert!((report.best_point[1] + 0.30).abs() < 0.05, "{:?}", report.best_point);
//! assert!(ev.fresh_evals() <= 80, "budget is a hard ceiling");
//! assert!(ev.cache_hits() > 0, "augmented designs re-use evaluated points");
//! ```

use crate::design::factorial::full_factorial_2k;
use crate::design::fractional::{fractional_factorial, Generator};
use crate::design::Design;
use crate::fit::fit;
use crate::model::ModelSpec;
use crate::optimize::Goal;
use crate::rsm::{ResponseSurface, StationaryKind};
use crate::{DoeError, Result};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Canonical cache key of a coded design point: every coordinate
/// quantised to 1e-9 coded units and reinterpreted as an integer.
///
/// Two points whose coordinates agree to within half a billionth of the
/// coded range map to the same key, so re-centred regions, augmented
/// designs, and replicate runs hit the cache even when their
/// coordinates were produced by different arithmetic. (A coded domain
/// spans ~2 units; 1e-9 is far below any physically meaningful factor
/// resolution and far above f64 round-off of the region arithmetic.)
///
/// ```
/// use ehsim_doe::sequential::canonical_key;
/// assert_eq!(canonical_key(&[0.1 + 0.2]), canonical_key(&[0.3]));
/// assert_ne!(canonical_key(&[0.3]), canonical_key(&[0.300001]));
/// assert_eq!(canonical_key(&[-0.0]), canonical_key(&[0.0]));
/// ```
pub fn canonical_key(x: &[f64]) -> Vec<i64> {
    x.iter().map(|v| (v * 1e9).round() as i64).collect()
}

/// A rectangular region of interest inside the global coded domain:
/// a centre, a half-width, and the domain bounds it must stay within.
///
/// Local coordinates in `[-1, 1]` map onto `centre ± half_width`; the
/// centre is always clamped so the whole box fits inside the domain,
/// which keeps every design point of an in-region design simulable.
///
/// ```
/// use ehsim_doe::sequential::Region;
///
/// let r = Region::new(vec![0.9, 0.0], 0.25, (-1.0, 1.0)).unwrap();
/// // The centre was clamped so the box fits: 0.9 + 0.25 > 1.
/// assert_eq!(r.center(), &[0.75, 0.0]);
/// assert_eq!(r.to_global(&[1.0, -1.0]), vec![1.0, -0.25]);
/// let s = r.shrunk(0.5);
/// assert_eq!(s.half_width(), 0.125);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    center: Vec<f64>,
    half_width: f64,
    domain: (f64, f64),
}

impl Region {
    /// Creates a region; the centre is clamped so the box fits in the
    /// domain.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] for an empty centre, non-finite
    /// inputs, a malformed domain, or a half-width that is non-positive
    /// or wider than half the domain.
    pub fn new(center: Vec<f64>, half_width: f64, domain: (f64, f64)) -> Result<Self> {
        let (lo, hi) = domain;
        if center.is_empty() {
            return Err(DoeError::invalid("region needs at least one factor"));
        }
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(DoeError::invalid(format!("bad domain [{lo}, {hi}]")));
        }
        if !(half_width > 0.0) || half_width > 0.5 * (hi - lo) {
            return Err(DoeError::invalid(format!(
                "half-width must be in (0, {}], got {half_width}",
                0.5 * (hi - lo)
            )));
        }
        if !center.iter().all(|v| v.is_finite()) {
            return Err(DoeError::invalid("region centre must be finite"));
        }
        let mut r = Region {
            center,
            half_width,
            domain,
        };
        r.clamp_center();
        Ok(r)
    }

    fn clamp_center(&mut self) {
        let (lo, hi) = self.domain;
        for c in &mut self.center {
            *c = c.clamp(lo + self.half_width, hi - self.half_width);
        }
    }

    /// The region centre in global coded units.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// The half-width (same for every factor, in global coded units).
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// The global coded domain `(lo, hi)`.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Number of factors.
    pub fn k(&self) -> usize {
        self.center.len()
    }

    /// Maps a local `[-1, 1]` point to global coded units.
    ///
    /// # Panics
    ///
    /// Panics if `local.len()` differs from the factor count.
    pub fn to_global(&self, local: &[f64]) -> Vec<f64> {
        assert_eq!(local.len(), self.k(), "dimension mismatch");
        self.center
            .iter()
            .zip(local.iter())
            .map(|(c, l)| c + self.half_width * l)
            .collect()
    }

    /// Clamps a global coded point into the domain box.
    pub fn clamp_to_domain(&self, x: &[f64]) -> Vec<f64> {
        let (lo, hi) = self.domain;
        x.iter().map(|v| v.clamp(lo, hi)).collect()
    }

    /// The same region moved to a new centre (clamped to keep the box
    /// inside the domain).
    pub fn recentered(&self, new_center: &[f64]) -> Self {
        let mut r = Region {
            center: new_center.to_vec(),
            half_width: self.half_width,
            domain: self.domain,
        };
        r.clamp_center();
        r
    }

    /// The same region shrunk by `factor` (in `(0, 1)`), keeping the
    /// centre.
    pub fn shrunk(&self, factor: f64) -> Self {
        let mut r = Region {
            center: self.center.clone(),
            half_width: self.half_width * factor,
            domain: self.domain,
        };
        r.clamp_center();
        r
    }
}

/// Appends `2k` axial (star) points at `center ± distance·eⱼ` to a
/// design in global coded units, clamping each point into the factor
/// domain — the augmentation that upgrades an already-run two-level
/// factorial to a central composite without re-paying for the cube.
///
/// ```
/// use ehsim_doe::design::factorial::full_factorial_2k;
/// use ehsim_doe::sequential::augment_axial;
///
/// let cube = full_factorial_2k(2).unwrap();
/// let ccd = augment_axial(&cube, &[0.0, 0.0], 1.0, (-1.0, 1.0)).unwrap();
/// assert_eq!(ccd.n_runs(), 4 + 4);
/// // Clamping: axial points past the domain edge land on it.
/// let edge = augment_axial(&cube, &[0.5, 0.0], 1.0, (-1.0, 1.0)).unwrap();
/// assert_eq!(edge.points()[4], vec![-0.5, 0.0]);
/// assert_eq!(edge.points()[5], vec![1.0, 0.0]); // 1.5 clamped to 1.0
/// ```
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] on a centre/design dimension mismatch
/// or a non-positive axial distance.
pub fn augment_axial(
    design: &Design,
    center: &[f64],
    distance: f64,
    domain: (f64, f64),
) -> Result<Design> {
    if center.len() != design.k() {
        return Err(DoeError::invalid(format!(
            "centre has {} coordinates, design has {} factors",
            center.len(),
            design.k()
        )));
    }
    if !(distance > 0.0) || !distance.is_finite() {
        return Err(DoeError::invalid(format!(
            "axial distance must be positive, got {distance}"
        )));
    }
    let (lo, hi) = domain;
    let mut points = design.points().to_vec();
    for j in 0..design.k() {
        for sign in [-1.0, 1.0] {
            let mut p = center.to_vec();
            p[j] = (p[j] + sign * distance).clamp(lo, hi);
            points.push(p);
        }
    }
    Design::new(design.k(), points, format!("{} + axial", design.label()))
}

/// Appends the fold-over of every run, mirrored through `center` and
/// clamped to the factor domain — the augmentation that de-aliases a
/// fractional screening design in place. (For designs centred at the
/// coded origin this reduces to the classical sign-reversal
/// [`fold_over`](crate::design::fractional::fold_over); this variant
/// works on region-local designs that live anywhere in the domain.)
///
/// ```
/// use ehsim_doe::design::Design;
/// use ehsim_doe::sequential::augment_foldover;
///
/// let d = Design::new(2, vec![vec![0.6, 0.2]], "run").unwrap();
/// let f = augment_foldover(&d, &[0.5, 0.0], (-1.0, 1.0)).unwrap();
/// assert_eq!(f.points()[1], vec![0.4, -0.2]); // 2·c − x
/// ```
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] on a centre/design dimension mismatch.
pub fn augment_foldover(design: &Design, center: &[f64], domain: (f64, f64)) -> Result<Design> {
    if center.len() != design.k() {
        return Err(DoeError::invalid(format!(
            "centre has {} coordinates, design has {} factors",
            center.len(),
            design.k()
        )));
    }
    let (lo, hi) = domain;
    let mut points = design.points().to_vec();
    points.extend(design.points().iter().map(|p| {
        p.iter()
            .zip(center.iter())
            .map(|(x, c)| (2.0 * c - x).clamp(lo, hi))
            .collect::<Vec<f64>>()
    }));
    Design::new(
        design.k(),
        points,
        format!("{} + fold-over", design.label()),
    )
}

/// The budget-aware evaluation contract of the refinement loop.
///
/// Implementations memoize results under [`canonical_key`], so asking
/// again for an evaluated point is free — the property the loop's
/// design augmentation and re-centring rely on — and they meter a hard
/// budget of *fresh* (uncached) evaluations that [`RefinementLoop`]
/// consults before submitting each batch.
pub trait SequentialEvaluator {
    /// The error produced by a failed evaluation (e.g. a simulation
    /// failure, or a budget violation on over-ask).
    type Error;

    /// Evaluates the objective at each global coded point, in order.
    ///
    /// # Errors
    ///
    /// Implementation-defined; the loop aborts on the first error.
    fn eval_batch(&mut self, points: &[Vec<f64>]) -> std::result::Result<Vec<f64>, Self::Error>;

    /// How many *fresh* evaluations the batch would cost (distinct
    /// uncached points; duplicates within the batch count once).
    fn fresh_cost(&self, points: &[Vec<f64>]) -> usize;

    /// Fresh evaluations still affordable (`usize::MAX` if unlimited).
    fn remaining_budget(&self) -> usize;
}

/// A [`SequentialEvaluator`] over a plain closure, with a built-in
/// memo cache and an optional hard budget — the test double for the
/// refinement loop (real campaigns use `ehsim-core`'s
/// `CachedEvaluator`).
///
/// ```
/// use ehsim_doe::sequential::{FnEvaluator, SequentialEvaluator};
///
/// let mut ev = FnEvaluator::new(|x: &[f64]| x[0] * x[0]).with_budget(2);
/// let pts = vec![vec![1.0], vec![2.0], vec![1.0]];
/// assert_eq!(ev.fresh_cost(&pts), 2); // the repeat is free
/// assert_eq!(ev.eval_batch(&pts).unwrap(), vec![1.0, 4.0, 1.0]);
/// assert_eq!(ev.fresh_evals(), 2);
/// assert_eq!(ev.cache_hits(), 1);
/// assert_eq!(ev.remaining_budget(), 0);
/// assert!(ev.eval_batch(&[vec![3.0]]).is_err(), "budget is hard");
/// ```
pub struct FnEvaluator<F> {
    f: F,
    // A BTreeMap, not a HashMap (determinism rule D1): lookup-only
    // today, but an ordered container keeps any future drain/iteration
    // deterministic by construction.
    cache: BTreeMap<Vec<i64>, f64>,
    budget: Option<usize>,
    fresh: usize,
    hits: usize,
}

impl<F: FnMut(&[f64]) -> f64> FnEvaluator<F> {
    /// Wraps a closure with an unlimited budget.
    pub fn new(f: F) -> Self {
        FnEvaluator {
            f,
            cache: BTreeMap::new(),
            budget: None,
            fresh: 0,
            hits: 0,
        }
    }

    /// Sets a hard budget of fresh evaluations.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Fresh (uncached) evaluations spent so far.
    pub fn fresh_evals(&self) -> usize {
        self.fresh
    }

    /// Cache hits served so far.
    pub fn cache_hits(&self) -> usize {
        self.hits
    }
}

impl<F: FnMut(&[f64]) -> f64> SequentialEvaluator for FnEvaluator<F> {
    type Error = DoeError;

    fn eval_batch(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>> {
        if self.fresh_cost(points) > self.remaining_budget() {
            return Err(DoeError::invalid(format!(
                "evaluation budget exhausted: batch needs {} fresh evaluations, {} remain",
                self.fresh_cost(points),
                self.remaining_budget()
            )));
        }
        let mut out = Vec::with_capacity(points.len());
        for p in points {
            let key = canonical_key(p);
            if let Some(&y) = self.cache.get(&key) {
                self.hits += 1;
                out.push(y);
            } else {
                let y = (self.f)(p);
                self.cache.insert(key, y);
                self.fresh += 1;
                out.push(y);
            }
        }
        Ok(out)
    }

    fn fresh_cost(&self, points: &[Vec<f64>]) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        points
            .iter()
            .map(|p| canonical_key(p))
            .filter(|k| !self.cache.contains_key(k) && seen.insert(k.clone()))
            .count()
    }

    fn remaining_budget(&self) -> usize {
        self.budget.map_or(usize::MAX, |b| b - self.fresh.min(b))
    }
}

/// Error of a refinement run: either the evaluator failed or the DoE
/// machinery did.
#[derive(Debug)]
pub enum SequentialError<E> {
    /// The evaluator failed (simulation error, budget violation, …).
    Eval(E),
    /// Design construction or model fitting failed.
    Doe(DoeError),
}

impl<E: fmt::Display> fmt::Display for SequentialError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequentialError::Eval(e) => write!(f, "evaluator failure: {e}"),
            SequentialError::Doe(e) => write!(f, "doe failure: {e}"),
        }
    }
}

impl<E: Error + 'static> Error for SequentialError<E> {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SequentialError::Eval(e) => Some(e),
            SequentialError::Doe(e) => Some(e),
        }
    }
}

impl<E> From<DoeError> for SequentialError<E> {
    fn from(e: DoeError) -> Self {
        SequentialError::Doe(e)
    }
}

/// What the loop decided at the end of an iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The fit was first-order dominated: the region centre moved
    /// `steps` steepest-ascent steps along the fitted gradient.
    Ascend {
        /// Number of accepted line-search steps.
        steps: usize,
    },
    /// Curvature was trusted: the region re-centred on the (clamped)
    /// stationary point and shrank.
    Recenter,
    /// No trustworthy move was available (failed diagnostics gate, flat
    /// gradient, or a stalled ascent): the region shrank around the
    /// best point seen.
    Shrink,
    /// The region's half-width fell below the configured minimum.
    Converged,
    /// The next design no longer fit the remaining evaluation budget.
    BudgetExhausted,
}

impl Decision {
    /// Stable lower-case label for audit trails and CSV rows.
    pub fn label(&self) -> String {
        match self {
            Decision::Ascend { steps } => format!("ascend({steps})"),
            Decision::Recenter => "recenter".into(),
            Decision::Shrink => "shrink".into(),
            Decision::Converged => "converged".into(),
            Decision::BudgetExhausted => "budget-exhausted".into(),
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One iteration of the audit trail: where the region was, what was
/// spent, how the fit looked, and what the loop decided.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Region centre at the start of the iteration (global coded).
    pub center: Vec<f64>,
    /// Region half-width at the start of the iteration.
    pub half_width: f64,
    /// Design points submitted this iteration (including cache hits).
    pub n_points: usize,
    /// Fresh (uncached) evaluations spent this iteration.
    pub n_fresh: usize,
    /// Whether the second-order (augmented) fit was run.
    pub second_order: bool,
    /// R² of the iteration's final fit (NaN if no fit ran).
    pub r_squared: f64,
    /// PRESS-based predicted R² of the final fit (NaN if no fit ran).
    pub predicted_r_squared: f64,
    /// Curvature-to-linear-effect ratio from the screening comparison
    /// (NaN if no fit ran).
    pub curvature_ratio: f64,
    /// The decision taken.
    pub decision: Decision,
    /// Best raw objective value seen so far (after this iteration).
    pub best_value: f64,
}

/// Result of a refinement run.
#[derive(Debug, Clone)]
pub struct RefinementReport {
    /// Per-iteration audit records, in order.
    pub iterations: Vec<IterationRecord>,
    /// The best *evaluated* point, in global coded units — an actually
    /// simulated/evaluated design, not a model extrapolation.
    pub best_point: Vec<f64>,
    /// The raw objective value at [`RefinementReport::best_point`].
    pub best_value: f64,
    /// True when the region collapsed below the configured minimum
    /// half-width (as opposed to stopping on iterations or budget).
    pub converged: bool,
}

/// Configuration of a [`RefinementLoop`].
#[derive(Debug, Clone)]
pub struct RefinementConfig {
    /// Whether the objective is maximised or minimised.
    pub goal: Goal,
    /// Number of design factors.
    pub k: usize,
    /// Global coded domain bounds (default `(-1, 1)`).
    pub domain: (f64, f64),
    /// Initial region half-width (default: half the domain width, i.e.
    /// the first screening design covers the whole domain, corners
    /// included — the same coverage a one-shot face-centred CCD buys).
    pub initial_half_width: f64,
    /// Convergence threshold: stop once the half-width falls below this
    /// (default 0.05).
    pub min_half_width: f64,
    /// Shrink factor applied on `Recenter`/`Shrink` (default 0.5).
    pub shrink: f64,
    /// Centre replicates per in-region design (default 1; the centre
    /// point doubles as the curvature check and is a guaranteed cache
    /// hit after any move that lands on an evaluated point).
    pub center_points: usize,
    /// Maximum refinement iterations (default 12).
    pub max_iterations: usize,
    /// Maximum steepest-ascent steps per iteration (default 4).
    pub max_ascent_steps: usize,
    /// Curvature-to-linear-effect ratio above which the loop pays for
    /// the axial augmentation and a second-order fit (default 0.25).
    pub curvature_threshold: f64,
    /// Diagnostics gate: a second-order fit whose PRESS-based predicted
    /// R² falls below this is not trusted for a stationary-point move
    /// (default 0.5).
    pub min_predicted_r2: f64,
}

impl RefinementConfig {
    /// Defaults for `k` factors over the standard coded domain.
    pub fn new(goal: Goal, k: usize) -> Self {
        RefinementConfig {
            goal,
            k,
            domain: (-1.0, 1.0),
            initial_half_width: 1.0,
            min_half_width: 0.05,
            shrink: 0.5,
            center_points: 1,
            max_iterations: 12,
            max_ascent_steps: 4,
            curvature_threshold: 0.25,
            min_predicted_r2: 0.5,
        }
    }

    fn validate(&self) -> Result<()> {
        let (lo, hi) = self.domain;
        if self.k == 0 {
            return Err(DoeError::invalid("need at least one factor"));
        }
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(DoeError::invalid(format!("bad domain [{lo}, {hi}]")));
        }
        if !(self.initial_half_width > 0.0) || self.initial_half_width > 0.5 * (hi - lo) {
            return Err(DoeError::invalid(
                "initial half-width must be in (0, (hi-lo)/2]",
            ));
        }
        if !(self.min_half_width > 0.0) || self.min_half_width > self.initial_half_width {
            return Err(DoeError::invalid(
                "min half-width must be in (0, initial half-width]",
            ));
        }
        if !(self.shrink > 0.0 && self.shrink < 1.0) {
            return Err(DoeError::invalid("shrink factor must be in (0, 1)"));
        }
        if self.max_iterations == 0 {
            return Err(DoeError::invalid("need at least one iteration"));
        }
        if !(self.curvature_threshold >= 0.0) {
            return Err(DoeError::invalid("curvature threshold must be >= 0"));
        }
        Ok(())
    }
}

/// The sequential refinement driver. See the [module docs](self) for
/// the algorithm and a runnable example.
#[derive(Debug, Clone)]
pub struct RefinementLoop {
    cfg: RefinementConfig,
}

impl RefinementLoop {
    /// Creates a loop after validating the configuration.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] on malformed configuration.
    pub fn new(cfg: RefinementConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(RefinementLoop { cfg })
    }

    /// The configuration.
    pub fn config(&self) -> &RefinementConfig {
        &self.cfg
    }

    /// The local (region-coordinate) screening design: a full two-level
    /// factorial for `k ≤ 4`, a half fraction for larger `k`, plus
    /// centre replicates.
    fn screening_local(&self) -> Result<Design> {
        let k = self.cfg.k;
        let d = if k <= 4 {
            full_factorial_2k(k)?
        } else {
            // Highest-resolution half fraction: last factor = product of
            // all others.
            let generator = Generator {
                factor: k - 1,
                word: (0..k - 1).collect(),
                negate: false,
            };
            fractional_factorial(k, &[generator])?
        };
        Ok(d.with_center_points(self.cfg.center_points.max(1)))
    }

    /// Runs the refinement to completion against an evaluator.
    ///
    /// The loop never submits a batch the evaluator cannot afford: when
    /// the next design's fresh cost exceeds
    /// [`SequentialEvaluator::remaining_budget`], it stops gracefully
    /// with [`Decision::BudgetExhausted`].
    ///
    /// # Errors
    ///
    /// [`SequentialError::Eval`] on evaluator failures,
    /// [`SequentialError::Doe`] on design/fit failures.
    pub fn run<E: SequentialEvaluator>(
        &self,
        ev: &mut E,
    ) -> std::result::Result<RefinementReport, SequentialError<E::Error>> {
        let cfg = &self.cfg;
        let k = cfg.k;
        let sign = match cfg.goal {
            Goal::Maximize => 1.0,
            Goal::Minimize => -1.0,
        };
        let mid = 0.5 * (cfg.domain.0 + cfg.domain.1);
        let mut region = Region::new(vec![mid; k], cfg.initial_half_width, cfg.domain)?;
        // Best *evaluated* point and its signed value.
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut records: Vec<IterationRecord> = Vec::new();
        let mut converged = false;

        let screen_local = self.screening_local()?;
        let n_center = cfg.center_points.max(1);

        for iteration in 0..cfg.max_iterations {
            let center0 = region.center().to_vec();
            let half0 = region.half_width();
            let mut n_points = 0usize;
            let mut n_fresh = 0usize;

            // --- Stage A: first-order screen in the current region ---
            let pts_a: Vec<Vec<f64>> = screen_local
                .points()
                .iter()
                .map(|l| region.to_global(l))
                .collect();
            let cost_a = ev.fresh_cost(&pts_a);
            if cost_a > ev.remaining_budget() {
                records.push(Self::stub_record(
                    iteration,
                    &center0,
                    half0,
                    Decision::BudgetExhausted,
                    &best,
                    sign,
                ));
                break;
            }
            n_points += pts_a.len();
            n_fresh += cost_a;
            let ys_a: Vec<f64> = ev
                .eval_batch(&pts_a)
                .map_err(SequentialError::Eval)?
                .iter()
                .map(|y| sign * y)
                .collect();
            Self::track_best(&mut best, &pts_a, &ys_a);

            // Curvature check: centre replicates vs factorial mean.
            let n_fact = pts_a.len() - n_center;
            let fact_mean = ys_a[..n_fact].iter().sum::<f64>() / n_fact as f64;
            let center_mean = ys_a[n_fact..].iter().sum::<f64>() / n_center as f64;
            let lin = fit(&ModelSpec::linear(k)?, screen_local.points(), &ys_a)?;
            let effect_scale = lin.coefficients()[1..]
                .iter()
                .fold(0.0f64, |m, c| m.max(c.abs()));
            let curvature = (fact_mean - center_mean).abs();
            let curvature_ratio = curvature / effect_scale.max(1e-12);

            let mut r_squared = lin.r_squared();
            let mut predicted_r_squared = lin.predicted_r_squared();
            let mut second_order = false;

            let decision: Decision;
            if effect_scale <= 1e-12 && curvature <= 1e-12 {
                // Surface is flat at this resolution: zoom in around
                // the best point seen.
                region = Self::shrink_at_best(&region, cfg.shrink, &best);
                decision = Decision::Shrink;
            } else if curvature_ratio <= cfg.curvature_threshold {
                // First-order dominated: path of steepest ascent along
                // the fitted gradient (signed objective rises fastest
                // this way in local units; the region scaling is
                // isotropic, so the global direction is the same).
                let grad: Vec<f64> = lin.coefficients()[1..].to_vec();
                let walk = self.ascend(ev, &mut region, &grad, center_mean, &mut best)?;
                n_points += walk.n_points;
                n_fresh += walk.n_fresh;
                decision = walk.decision;
            } else {
                // --- Stage B: curvature present. Augment the screen
                // with its fold-over (a no-op ask for k ≤ 4, where the
                // cube is already complete — the cache absorbs it) and
                // the axial points, then fit the full quadratic. ---
                second_order = true;
                let folded = if k > 4 {
                    augment_foldover(
                        &Design::new(k, pts_a.clone(), "screen")?,
                        &center0,
                        cfg.domain,
                    )?
                } else {
                    Design::new(k, pts_a.clone(), "screen")?
                };
                let ccd = augment_axial(&folded, &center0, half0, cfg.domain)?;
                let pts_b: Vec<Vec<f64>> = ccd.points().to_vec();
                let cost_b = ev.fresh_cost(&pts_b);
                if cost_b > ev.remaining_budget() {
                    records.push(IterationRecord {
                        iteration,
                        center: center0,
                        half_width: half0,
                        n_points,
                        n_fresh,
                        second_order,
                        r_squared,
                        predicted_r_squared,
                        curvature_ratio,
                        decision: Decision::BudgetExhausted,
                        best_value: best.as_ref().map_or(f64::NAN, |(_, s)| sign * s),
                    });
                    break;
                }
                n_points += pts_b.len();
                n_fresh += cost_b;
                let ys_b: Vec<f64> = ev
                    .eval_batch(&pts_b)
                    .map_err(SequentialError::Eval)?
                    .iter()
                    .map(|y| sign * y)
                    .collect();
                Self::track_best(&mut best, &pts_b, &ys_b);

                // Fit on local coordinates for conditioning.
                let local_b: Vec<Vec<f64>> = pts_b
                    .iter()
                    .map(|g| {
                        g.iter()
                            .zip(center0.iter())
                            .map(|(x, c)| (x - c) / half0)
                            .collect()
                    })
                    .collect();
                let quad = fit(&ModelSpec::quadratic(k)?, &local_b, &ys_b)?;
                r_squared = quad.r_squared();
                predicted_r_squared = quad.predicted_r_squared();

                if predicted_r_squared < cfg.min_predicted_r2 {
                    // Diagnostics gate: the surface does not generalise
                    // at this scale — zoom in around the best point.
                    region = Self::shrink_at_best(&region, cfg.shrink, &best);
                    decision = Decision::Shrink;
                } else {
                    let rs = ResponseSurface::from_fitted(&quad)?;
                    let want = StationaryKind::Maximum; // signed objective
                    let stationary = rs
                        .stationary_point()
                        .filter(|s| s.iter().all(|v| v.abs() <= 2.0))
                        .filter(|_| rs.kind(1e-9) == want)
                        .map(|s| s.to_vec());
                    match stationary {
                        Some(s_local) => {
                            let s_global = region.clamp_to_domain(&region.to_global(&s_local));
                            region = region.shrunk(cfg.shrink).recentered(&s_global);
                            decision = Decision::Recenter;
                        }
                        None => {
                            // Saddle or rising ridge: follow the
                            // analytic gradient at the centre instead.
                            let grad = rs.gradient(&vec![0.0; k]);
                            let walk =
                                self.ascend(ev, &mut region, &grad, center_mean, &mut best)?;
                            n_points += walk.n_points;
                            n_fresh += walk.n_fresh;
                            decision = walk.decision;
                        }
                    }
                }
            }

            // Progress guard: a clamped ascent (or any decision) that
            // left the region exactly where it was would re-run the
            // same (fully cached) design forever — zoom in around the
            // best point instead so the budget keeps buying resolution.
            if region.center() == center0.as_slice() && region.half_width() == half0 {
                region = Self::shrink_at_best(&region, cfg.shrink, &best);
            }

            let best_value = best.as_ref().map_or(f64::NAN, |(_, s)| sign * s);
            records.push(IterationRecord {
                iteration,
                center: center0,
                half_width: half0,
                n_points,
                n_fresh,
                second_order,
                r_squared,
                predicted_r_squared,
                curvature_ratio,
                decision,
                best_value,
            });

            if region.half_width() < cfg.min_half_width {
                converged = true;
                records.push(Self::stub_record(
                    iteration + 1,
                    region.center(),
                    region.half_width(),
                    Decision::Converged,
                    &best,
                    sign,
                ));
                break;
            }
        }

        let (best_point, best_signed) = best.ok_or_else(|| {
            SequentialError::Doe(DoeError::invalid(
                "budget too small for even one screening design",
            ))
        })?;
        Ok(RefinementReport {
            iterations: records,
            best_point,
            best_value: sign * best_signed,
            converged,
        })
    }

    /// A record for iterations that stopped before fitting anything.
    fn stub_record(
        iteration: usize,
        center: &[f64],
        half_width: f64,
        decision: Decision,
        best: &Option<(Vec<f64>, f64)>,
        sign: f64,
    ) -> IterationRecord {
        IterationRecord {
            iteration,
            center: center.to_vec(),
            half_width,
            n_points: 0,
            n_fresh: 0,
            second_order: false,
            r_squared: f64::NAN,
            predicted_r_squared: f64::NAN,
            curvature_ratio: f64::NAN,
            decision,
            best_value: best.as_ref().map_or(f64::NAN, |(_, s)| sign * s),
        }
    }

    /// Shrinks the region and re-centres it on the best evaluated point
    /// (the Box–Wilson follow-up to a stalled ascent: the next design
    /// is run *around the stalled point*, not the old centre).
    fn shrink_at_best(region: &Region, shrink: f64, best: &Option<(Vec<f64>, f64)>) -> Region {
        let shrunk = region.shrunk(shrink);
        match best {
            Some((anchor, _)) => shrunk.recentered(anchor),
            None => shrunk,
        }
    }

    fn track_best(best: &mut Option<(Vec<f64>, f64)>, pts: &[Vec<f64>], signed_ys: &[f64]) {
        for (p, &s) in pts.iter().zip(signed_ys.iter()) {
            let better = match best {
                None => s.is_finite(),
                Some((_, b)) => s.is_finite() && s > *b,
            };
            if better {
                *best = Some((p.clone(), s));
            }
        }
    }

    /// Steepest-ascent walk: steps of one half-width along `grad` from
    /// the region centre, clamped to the domain, while the signed
    /// objective keeps improving. Re-centres the region on the last
    /// accepted step; shrinks if no step was accepted.
    fn ascend<E: SequentialEvaluator>(
        &self,
        ev: &mut E,
        region: &mut Region,
        grad: &[f64],
        center_signed: f64,
        best: &mut Option<(Vec<f64>, f64)>,
    ) -> std::result::Result<AscentOutcome, SequentialError<E::Error>> {
        let cfg = &self.cfg;
        let mut out = AscentOutcome {
            decision: Decision::Shrink,
            n_points: 0,
            n_fresh: 0,
        };
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if !(gnorm > 1e-12) {
            *region = Self::shrink_at_best(region, cfg.shrink, best);
            return Ok(out);
        }
        let dir: Vec<f64> = grad.iter().map(|g| g / gnorm).collect();
        let c0 = region.center().to_vec();
        let h = region.half_width();
        let mut prev = center_signed;
        let mut steps = 0usize;
        let mut last_accepted: Option<Vec<f64>> = None;
        for t in 1..=cfg.max_ascent_steps {
            let cand: Vec<f64> = region.clamp_to_domain(
                &c0.iter()
                    .zip(dir.iter())
                    .map(|(c, d)| c + t as f64 * h * d)
                    .collect::<Vec<f64>>(),
            );
            if last_accepted.as_deref() == Some(cand.as_slice()) {
                break; // clamped against the domain edge: no progress
            }
            let fresh = ev.fresh_cost(std::slice::from_ref(&cand));
            if fresh > ev.remaining_budget() {
                break; // walk what we can afford; the loop stops later
            }
            out.n_points += 1;
            out.n_fresh += fresh;
            let y = ev
                .eval_batch(std::slice::from_ref(&cand))
                .map_err(SequentialError::Eval)?[0];
            let s = match cfg.goal {
                Goal::Maximize => y,
                Goal::Minimize => -y,
            };
            Self::track_best(best, std::slice::from_ref(&cand), &[s]);
            if s > prev {
                prev = s;
                steps = t;
                last_accepted = Some(cand);
            } else {
                break;
            }
        }
        match last_accepted {
            Some(cand) => {
                *region = region.recentered(&cand);
                out.decision = Decision::Ascend { steps };
            }
            None => *region = Self::shrink_at_best(region, cfg.shrink, best),
        }
        Ok(out)
    }
}

/// Internal result of a steepest-ascent walk.
struct AscentOutcome {
    decision: Decision,
    n_points: usize,
    n_fresh: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::fractional::fold_over;

    #[test]
    fn region_validation_and_mapping() {
        assert!(Region::new(vec![], 0.5, (-1.0, 1.0)).is_err());
        assert!(Region::new(vec![0.0], 0.0, (-1.0, 1.0)).is_err());
        assert!(Region::new(vec![0.0], 1.5, (-1.0, 1.0)).is_err());
        assert!(Region::new(vec![f64::NAN], 0.5, (-1.0, 1.0)).is_err());
        assert!(Region::new(vec![0.0], 0.5, (1.0, -1.0)).is_err());
        let r = Region::new(vec![0.2, -0.1], 0.3, (-1.0, 1.0)).unwrap();
        assert_eq!(r.k(), 2);
        assert_eq!(r.to_global(&[0.0, 0.0]), vec![0.2, -0.1]);
        assert_eq!(r.to_global(&[1.0, -1.0]), vec![0.5, -0.4]);
        // Recentre clamps so the box fits.
        let moved = r.recentered(&[0.95, 0.0]);
        assert!((moved.center()[0] - 0.7).abs() < 1e-12);
        // Shrink keeps the centre when it still fits.
        let s = moved.shrunk(0.5);
        assert_eq!(s.half_width(), 0.15);
        assert!((s.center()[0] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn axial_augmentation_counts_and_clamps() {
        let cube = full_factorial_2k(3).unwrap();
        let d = augment_axial(&cube, &[0.0; 3], 0.8, (-1.0, 1.0)).unwrap();
        assert_eq!(d.n_runs(), 8 + 6);
        for p in &d.points()[8..] {
            assert_eq!(p.iter().filter(|v| v.abs() > 1e-12).count(), 1);
        }
        // Dimension mismatch and bad distance rejected.
        assert!(augment_axial(&cube, &[0.0; 2], 0.5, (-1.0, 1.0)).is_err());
        assert!(augment_axial(&cube, &[0.0; 3], 0.0, (-1.0, 1.0)).is_err());
    }

    #[test]
    fn foldover_augmentation_mirrors_and_matches_classical() {
        // Centred at the origin, the general fold-over equals the
        // classical sign-reversal one. With the odd-length defining
        // word (I = ABCDE) the mirror is the complementary half, so the
        // folded design is the full factorial.
        let half = fractional_factorial(
            5,
            &[Generator {
                factor: 4,
                word: vec![0, 1, 2, 3],
                negate: false,
            }],
        )
        .unwrap();
        let a = augment_foldover(&half, &[0.0; 5], (-1.0, 1.0)).unwrap();
        let b = fold_over(&half).unwrap();
        assert_eq!(a.points(), b.points());
        let mut keys: Vec<Vec<i64>> = a.points().iter().map(|p| canonical_key(p)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 32);
        assert!(augment_foldover(&half, &[0.0; 3], (-1.0, 1.0)).is_err());
    }

    #[test]
    fn refines_to_an_interior_maximum() {
        let truth = |x: &[f64]| 10.0 - (x[0] - 0.4).powi(2) - 3.0 * (x[1] + 0.2).powi(2);
        let mut ev = FnEvaluator::new(truth);
        let report = RefinementLoop::new(RefinementConfig::new(Goal::Maximize, 2))
            .unwrap()
            .run(&mut ev)
            .unwrap();
        assert!((report.best_point[0] - 0.4).abs() < 0.05, "{report:?}");
        assert!((report.best_point[1] + 0.2).abs() < 0.05, "{report:?}");
        assert!(report.converged);
        assert!(ev.cache_hits() > 0);
        // The audit covers every iteration and values only improve.
        let mut prev = f64::NEG_INFINITY;
        for rec in &report.iterations {
            if rec.best_value.is_finite() {
                assert!(rec.best_value >= prev - 1e-12);
                prev = rec.best_value;
            }
        }
    }

    #[test]
    fn minimization_flips_the_goal() {
        let truth = |x: &[f64]| (x[0] + 0.3).powi(2) + (x[1] - 0.5).powi(2);
        let mut ev = FnEvaluator::new(truth);
        let report = RefinementLoop::new(RefinementConfig::new(Goal::Minimize, 2))
            .unwrap()
            .run(&mut ev)
            .unwrap();
        assert!((report.best_point[0] + 0.3).abs() < 0.05, "{report:?}");
        assert!((report.best_point[1] - 0.5).abs() < 0.05, "{report:?}");
        assert!(report.best_value < 0.01);
    }

    #[test]
    fn ascends_a_monotone_surface_to_the_boundary() {
        // Pure plane: always first-order dominated, optimum at the
        // (+1, -1) corner.
        let truth = |x: &[f64]| 1.0 + 2.0 * x[0] - x[1];
        let mut ev = FnEvaluator::new(truth);
        let report = RefinementLoop::new(RefinementConfig::new(Goal::Maximize, 2))
            .unwrap()
            .run(&mut ev)
            .unwrap();
        assert!(report.best_point[0] > 0.9, "{:?}", report.best_point);
        assert!(report.best_point[1] < -0.6, "{:?}", report.best_point);
        assert!(report
            .iterations
            .iter()
            .any(|r| matches!(r.decision, Decision::Ascend { .. })));
    }

    #[test]
    fn budget_is_never_exceeded_and_stops_gracefully() {
        for budget in [0usize, 3, 5, 9, 14, 30] {
            let mut ev =
                FnEvaluator::new(|x: &[f64]| -(x[0] * x[0]) - x[1] * x[1]).with_budget(budget);
            let result = RefinementLoop::new(RefinementConfig::new(Goal::Maximize, 2))
                .unwrap()
                .run(&mut ev);
            assert!(ev.fresh_evals() <= budget, "budget {budget} exceeded");
            match result {
                Ok(report) => {
                    assert!(
                        report
                            .iterations
                            .iter()
                            .all(|r| !matches!(r.decision, Decision::BudgetExhausted))
                            || report.iterations.last().is_some()
                    );
                }
                Err(e) => {
                    // Only the cannot-even-screen case errors.
                    assert!(budget < 5, "unexpected error at budget {budget}: {e}");
                }
            }
        }
    }

    #[test]
    fn five_factor_path_uses_fraction_and_foldover() {
        // k = 5 with curvature: the screen is a half fraction, the
        // second-order stage folds it over and adds axial points.
        let truth = |x: &[f64]| {
            10.0 - x
                .iter()
                .enumerate()
                .map(|(i, v)| (i as f64 + 1.0) * (v - 0.1) * (v - 0.1))
                .sum::<f64>()
        };
        let mut ev = FnEvaluator::new(truth);
        let mut cfg = RefinementConfig::new(Goal::Maximize, 5);
        cfg.max_iterations = 6;
        let report = RefinementLoop::new(cfg).unwrap().run(&mut ev).unwrap();
        for (i, v) in report.best_point.iter().enumerate() {
            assert!((v - 0.1).abs() < 0.2, "factor {i}: {v}");
        }
        assert!(report.iterations.iter().any(|r| r.second_order));
        assert!(ev.cache_hits() > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut ev = FnEvaluator::new(|x: &[f64]| {
                2.0 + x[0] - 0.7 * (x[0] * x[0]) + 0.4 * x[1] - x[1] * x[1]
            });
            RefinementLoop::new(RefinementConfig::new(Goal::Maximize, 2))
                .unwrap()
                .run(&mut ev)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_point, b.best_point);
        assert_eq!(a.best_value.to_bits(), b.best_value.to_bits());
        // Records can carry NaN stats (unfitted iterations), so compare
        // the Debug rendering, which is NaN-stable.
        assert_eq!(format!("{:?}", a.iterations), format!("{:?}", b.iterations));
    }

    #[test]
    fn config_validation() {
        let ok = RefinementConfig::new(Goal::Maximize, 2);
        assert!(RefinementLoop::new(ok.clone()).is_ok());
        for tweak in [
            |c: &mut RefinementConfig| c.k = 0,
            |c: &mut RefinementConfig| c.domain = (1.0, -1.0),
            |c: &mut RefinementConfig| c.initial_half_width = 0.0,
            |c: &mut RefinementConfig| c.initial_half_width = 5.0,
            |c: &mut RefinementConfig| c.min_half_width = 0.0,
            |c: &mut RefinementConfig| c.min_half_width = 1.5,
            |c: &mut RefinementConfig| c.shrink = 1.0,
            |c: &mut RefinementConfig| c.max_iterations = 0,
            |c: &mut RefinementConfig| c.curvature_threshold = -1.0,
        ] {
            let mut bad = ok.clone();
            tweak(&mut bad);
            assert!(RefinementLoop::new(bad).is_err());
        }
    }

    #[test]
    fn decision_labels_are_stable() {
        assert_eq!(Decision::Ascend { steps: 3 }.label(), "ascend(3)");
        assert_eq!(Decision::Recenter.label(), "recenter");
        assert_eq!(Decision::Shrink.label(), "shrink");
        assert_eq!(Decision::Converged.label(), "converged");
        assert_eq!(Decision::BudgetExhausted.label(), "budget-exhausted");
        assert_eq!(format!("{}", Decision::Recenter), "recenter");
    }

    #[test]
    fn sequential_error_display_and_source() {
        let e: SequentialError<DoeError> = SequentialError::Eval(DoeError::RankDeficient);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        let d: SequentialError<DoeError> = DoeError::RankDeficient.into();
        assert!(matches!(d, SequentialError::Doe(_)));
    }
}
