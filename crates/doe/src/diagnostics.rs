//! Regression diagnostics: studentized residuals, Cook's distance, and
//! variance inflation factors.

use crate::fit::FittedModel;
use crate::model::ModelSpec;
use crate::{DoeError, Result};

/// Internally studentized residuals `e_i / (σ √(1 − h_i))`.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] for a saturated fit (σ undefined).
pub fn studentized_residuals(model: &FittedModel) -> Result<Vec<f64>> {
    let sigma = model.sigma2().sqrt();
    if sigma == 0.0 {
        return Err(DoeError::invalid(
            "studentized residuals undefined for an exact fit",
        ));
    }
    Ok(model
        .residuals()
        .iter()
        .zip(model.leverages().iter())
        .map(|(e, h)| e / (sigma * (1.0 - h).max(1e-12).sqrt()))
        .collect())
}

/// Cook's distances `D_i = e_i² h_i / (p σ² (1 − h_i)²)`.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] for a saturated fit.
pub fn cooks_distances(model: &FittedModel) -> Result<Vec<f64>> {
    let s2 = model.sigma2();
    if s2 == 0.0 {
        return Err(DoeError::invalid(
            "cook's distance undefined for an exact fit",
        ));
    }
    let p = model.p() as f64;
    Ok(model
        .residuals()
        .iter()
        .zip(model.leverages().iter())
        .map(|(e, h)| {
            let denom = (1.0 - h).max(1e-12);
            e * e * h / (p * s2 * denom * denom)
        })
        .collect())
}

/// Variance inflation factors of the non-intercept terms: for each term
/// column, `VIF = 1 / (1 − R²)` of regressing it on the other columns.
/// Values near 1 mean orthogonality; above ~10, collinearity trouble.
///
/// Returns `(term_index, vif)` pairs over non-intercept terms.
///
/// # Errors
///
/// Propagates fitting errors for the auxiliary regressions.
pub fn variance_inflation_factors(
    spec: &ModelSpec,
    points: &[Vec<f64>],
) -> Result<Vec<(usize, f64)>> {
    let x = spec.design_matrix(points)?;
    let n = x.rows();
    let p = x.cols();
    let mut out = Vec::new();
    for j in 0..p {
        if spec.terms()[j].is_intercept() {
            continue;
        }
        // Regress column j on all other columns (including intercept).
        let y: Vec<f64> = (0..n).map(|i| x[(i, j)]).collect();
        let others: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..p).filter(|&c| c != j).map(|c| x[(i, c)]).collect())
            .collect();
        // Build a synthetic "identity" spec over p-1 pseudo-factors: the
        // columns are already expanded, so a linear model with no
        // intercept suffices; emulate via least squares directly.
        let xo = ehsim_numeric::Matrix::from_fn(n, p - 1, |i, c| others[i][c]);
        let qr = match ehsim_numeric::Qr::factor(&xo) {
            Ok(qr) => qr,
            Err(ehsim_numeric::NumericError::Singular) => {
                // Perfectly collinear: infinite VIF.
                out.push((j, f64::INFINITY));
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        let rss = qr.residual_sum_of_squares(&y)?;
        let mean = y.iter().sum::<f64>() / n as f64;
        let tss: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
        let r2 = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        let vif = if r2 >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - r2)
        };
        out.push((j, vif.max(1.0)));
    }
    Ok(out)
}

/// Leave-one-out cross-validated RMSE, computed from the PRESS
/// statistic.
pub fn loo_rmse(model: &FittedModel) -> f64 {
    (model.press() / model.n() as f64).sqrt()
}

/// Validates a fitted model against fresh points: returns
/// `(rmse, max_abs_error, r_squared_validation)`.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] on dimension mismatch or empty input.
pub fn validate_against(
    model: &FittedModel,
    points: &[Vec<f64>],
    responses: &[f64],
) -> Result<(f64, f64, f64)> {
    if points.is_empty() || points.len() != responses.len() {
        return Err(DoeError::invalid(format!(
            "need matching non-empty validation sets (got {} points, {} responses)",
            points.len(),
            responses.len()
        )));
    }
    let preds = model.predict_many(points);
    let mut sse = 0.0;
    let mut max_err: f64 = 0.0;
    for (p, y) in preds.iter().zip(responses.iter()) {
        let e = p - y;
        sse += e * e;
        max_err = max_err.max(e.abs());
    }
    let mean = responses.iter().sum::<f64>() / responses.len() as f64;
    let tss: f64 = responses.iter().map(|y| (y - mean) * (y - mean)).sum();
    let r2 = if tss > 0.0 { 1.0 - sse / tss } else { 1.0 };
    Ok(((sse / points.len() as f64).sqrt(), max_err, r2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::factorial::full_factorial_2k;
    use crate::fit::fit as fit_model;

    fn noisy(i: usize) -> f64 {
        (((i * 2654435761) % 1000) as f64 / 1000.0) - 0.5
    }

    #[test]
    fn studentized_residuals_are_scaled() {
        let d = full_factorial_2k(2).unwrap().with_center_points(4);
        let y: Vec<f64> = (0..d.n_runs()).map(|i| 1.0 + noisy(i * 3 + 1)).collect();
        let m = fit_model(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        let sr = studentized_residuals(&m).unwrap();
        // Studentized residuals are O(1).
        assert!(sr.iter().all(|r| r.abs() < 4.0));
        assert!(sr.iter().any(|r| r.abs() > 0.05));
    }

    #[test]
    fn outlier_has_large_cooks_distance() {
        let d = full_factorial_2k(2).unwrap().with_center_points(4);
        let mut y: Vec<f64> = (0..d.n_runs()).map(|i| 1.0 + 0.01 * noisy(i)).collect();
        y[0] += 5.0; // gross outlier at a corner
        let m = fit_model(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        let cd = cooks_distances(&m).unwrap();
        // The linear model cannot separate corners 0 and 3 (they share
        // the unmodelled interaction pattern), but both must dominate
        // the clean centre points by far.
        assert!(cd[0] > 10.0 * cd[4], "cook's distances: {cd:?}");
        assert!(cd[0] >= cd.iter().copied().fold(0.0, f64::max) - 1e-9);
    }

    #[test]
    fn orthogonal_design_has_unit_vifs() {
        let d = full_factorial_2k(3).unwrap();
        let vifs = variance_inflation_factors(&ModelSpec::linear(3).unwrap(), d.points()).unwrap();
        for (_, v) in vifs {
            assert!((v - 1.0).abs() < 1e-9, "vif = {v}");
        }
    }

    #[test]
    fn collinear_columns_inflate() {
        // Two factors moving together.
        let pts: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                let x = -1.0 + 2.0 * (i as f64) / 7.0;
                vec![x, x + 0.01 * noisy(i)]
            })
            .collect();
        let vifs = variance_inflation_factors(&ModelSpec::linear(2).unwrap(), &pts).unwrap();
        for (_, v) in vifs {
            assert!(v > 100.0, "vif = {v}");
        }
    }

    #[test]
    fn validation_metrics() {
        let d = full_factorial_2k(2).unwrap();
        let truth = |p: &[f64]| 1.0 + p[0] + 2.0 * p[1];
        let y: Vec<f64> = d.points().iter().map(|p| truth(p)).collect();
        let m = fit_model(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        let fresh = vec![vec![0.5, -0.5], vec![-0.2, 0.8]];
        let fresh_y: Vec<f64> = fresh.iter().map(|p| truth(p)).collect();
        let (rmse, max_err, r2) = validate_against(&m, &fresh, &fresh_y).unwrap();
        assert!(rmse < 1e-12);
        assert!(max_err < 1e-12);
        assert!(r2 > 1.0 - 1e-12);
        assert!(validate_against(&m, &[], &[]).is_err());
    }

    #[test]
    fn loo_rmse_positive_for_noisy_fit() {
        let d = full_factorial_2k(2).unwrap().with_center_points(3);
        let y: Vec<f64> = (0..d.n_runs()).map(|i| noisy(i * 11 + 5)).collect();
        let m = fit_model(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        assert!(loo_rmse(&m) > 0.0);
    }
}
