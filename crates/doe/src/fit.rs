//! Ordinary least squares fitting of polynomial models.

use crate::model::ModelSpec;
use crate::{DoeError, Result};
use ehsim_numeric::stats::dist::StudentT;
use ehsim_numeric::{Matrix, Qr};

/// A fitted polynomial response model with the statistics needed for
/// inference and validation.
#[derive(Debug, Clone)]
pub struct FittedModel {
    spec: ModelSpec,
    coeffs: Vec<f64>,
    points: Vec<Vec<f64>>,
    responses: Vec<f64>,
    fitted: Vec<f64>,
    residuals: Vec<f64>,
    leverages: Vec<f64>,
    xtx_inv: Matrix,
    rss: f64,
    tss: f64,
    press: f64,
}

/// Fits `spec` to `(points, responses)` by QR-based least squares.
///
/// # Errors
///
/// * [`DoeError::InvalidArgument`] on dimension mismatches or fewer runs
///   than model terms.
/// * [`DoeError::RankDeficient`] if the design cannot estimate all
///   terms.
///
/// # Example
///
/// ```
/// use ehsim_doe::{fit::fit, model::ModelSpec};
///
/// # fn main() -> Result<(), ehsim_doe::DoeError> {
/// let points = vec![vec![-1.0], vec![0.0], vec![1.0]];
/// let y = vec![1.0, 2.0, 3.0]; // y = 2 + x
/// let m = fit(&ModelSpec::linear(1)?, &points, &y)?;
/// assert!((m.predict(&[0.5]) - 2.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fit(spec: &ModelSpec, points: &[Vec<f64>], responses: &[f64]) -> Result<FittedModel> {
    let n = points.len();
    let p = spec.n_terms();
    if responses.len() != n {
        return Err(DoeError::invalid(format!(
            "{n} points but {} responses",
            responses.len()
        )));
    }
    if n < p {
        return Err(DoeError::invalid(format!(
            "need at least as many runs ({n}) as model terms ({p})"
        )));
    }
    if !responses.iter().all(|v| v.is_finite()) {
        return Err(DoeError::invalid("responses must be finite"));
    }
    let x = spec.design_matrix(points)?;
    let qr = Qr::factor(&x)?;
    let coeffs = qr.solve_least_squares(responses)?;
    let xtx_inv = qr.xtx_inverse()?;

    let fitted: Vec<f64> = points
        .iter()
        .map(|pt| {
            let row = spec.expand_point(pt);
            row.iter().zip(coeffs.iter()).map(|(a, b)| a * b).sum()
        })
        .collect();
    let residuals: Vec<f64> = responses
        .iter()
        .zip(fitted.iter())
        .map(|(y, f)| y - f)
        .collect();
    let rss: f64 = residuals.iter().map(|e| e * e).sum();
    let y_mean = responses.iter().sum::<f64>() / n as f64;
    let tss: f64 = responses.iter().map(|y| (y - y_mean) * (y - y_mean)).sum();

    // Leverages h_i = x_iᵀ (XᵀX)⁻¹ x_i and PRESS.
    let mut leverages = Vec::with_capacity(n);
    let mut press = 0.0;
    for (i, pt) in points.iter().enumerate() {
        let row = spec.expand_point(pt);
        let tmp = xtx_inv.matvec(&row)?;
        let h: f64 = row.iter().zip(tmp.iter()).map(|(a, b)| a * b).sum();
        leverages.push(h);
        let denom = (1.0 - h).max(1e-12);
        let e_loo = residuals[i] / denom;
        press += e_loo * e_loo;
    }

    Ok(FittedModel {
        spec: spec.clone(),
        coeffs,
        points: points.to_vec(),
        responses: responses.to_vec(),
        fitted,
        residuals,
        leverages,
        xtx_inv,
        rss,
        tss,
        press,
    })
}

impl FittedModel {
    /// The model specification.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Estimated coefficients in term order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The training points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The training responses.
    pub fn responses(&self) -> &[f64] {
        &self.responses
    }

    /// Fitted values on the training points.
    pub fn fitted_values(&self) -> &[f64] {
        &self.fitted
    }

    /// Training residuals.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Leverages (hat-matrix diagonal).
    pub fn leverages(&self) -> &[f64] {
        &self.leverages
    }

    /// Number of training runs.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Number of model terms.
    pub fn p(&self) -> usize {
        self.spec.n_terms()
    }

    /// Residual degrees of freedom `n - p`.
    pub fn df_residual(&self) -> usize {
        self.n() - self.p()
    }

    /// Residual sum of squares.
    pub fn rss(&self) -> f64 {
        self.rss
    }

    /// Total (corrected) sum of squares.
    pub fn tss(&self) -> f64 {
        self.tss
    }

    /// PRESS: the leave-one-out prediction error sum of squares.
    pub fn press(&self) -> f64 {
        self.press
    }

    /// Residual variance estimate `RSS/(n-p)`; 0 for saturated fits.
    pub fn sigma2(&self) -> f64 {
        let df = self.df_residual();
        if df == 0 {
            0.0
        } else {
            self.rss / df as f64
        }
    }

    /// Coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        if self.tss <= 0.0 {
            return 1.0;
        }
        1.0 - self.rss / self.tss
    }

    /// Adjusted R².
    pub fn adj_r_squared(&self) -> f64 {
        let n = self.n() as f64;
        let p = self.p() as f64;
        if self.tss <= 0.0 || n - p <= 0.0 {
            return self.r_squared();
        }
        1.0 - (1.0 - self.r_squared()) * (n - 1.0) / (n - p)
    }

    /// Predicted R² (from PRESS) — the headline generalisation metric
    /// for RSMs.
    pub fn predicted_r_squared(&self) -> f64 {
        if self.tss <= 0.0 {
            return 1.0;
        }
        1.0 - self.press / self.tss
    }

    /// Predicts the response at a coded point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of factors.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let row = self.spec.expand_point(x);
        row.iter().zip(self.coeffs.iter()).map(|(a, b)| a * b).sum()
    }

    /// Predicts many points at once.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Standard errors of the coefficients.
    pub fn coeff_std_errors(&self) -> Vec<f64> {
        let s2 = self.sigma2();
        (0..self.p())
            .map(|j| (s2 * self.xtx_inv[(j, j)]).max(0.0).sqrt())
            .collect()
    }

    /// t statistics of the coefficients (0 where the standard error
    /// vanishes).
    pub fn t_stats(&self) -> Vec<f64> {
        self.coeffs
            .iter()
            .zip(self.coeff_std_errors().iter())
            .map(|(c, se)| if *se > 0.0 { c / se } else { 0.0 })
            .collect()
    }

    /// Two-sided p-values of the coefficient t-tests.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] when there are no residual degrees
    /// of freedom.
    pub fn p_values(&self) -> Result<Vec<f64>> {
        let df = self.df_residual();
        if df == 0 {
            return Err(DoeError::invalid(
                "p-values undefined for a saturated model (no residual df)",
            ));
        }
        let t = StudentT::new(df as f64)?;
        Ok(self
            .t_stats()
            .iter()
            .map(|&ts| t.p_value_two_sided(ts))
            .collect())
    }

    /// `1 - alpha` confidence half-widths for the coefficients.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] for `alpha ∉ (0,1)` or a saturated
    /// model.
    pub fn coeff_confidence_halfwidths(&self, alpha: f64) -> Result<Vec<f64>> {
        if !(0.0 < alpha && alpha < 1.0) {
            return Err(DoeError::invalid(format!("alpha {alpha} not in (0,1)")));
        }
        let df = self.df_residual();
        if df == 0 {
            return Err(DoeError::invalid(
                "confidence intervals undefined for a saturated model",
            ));
        }
        let t = StudentT::new(df as f64)?;
        let q = t.quantile(1.0 - alpha / 2.0)?;
        Ok(self.coeff_std_errors().iter().map(|se| q * se).collect())
    }

    /// Unscaled coefficient covariance `(XᵀX)⁻¹`.
    pub fn xtx_inverse(&self) -> &Matrix {
        &self.xtx_inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::factorial::full_factorial_2k;

    #[test]
    fn exact_linear_recovery() {
        let pts = vec![
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![-1.0, 1.0],
            vec![1.0, 1.0],
        ];
        let y: Vec<f64> = pts.iter().map(|p| 3.0 + 2.0 * p[0] - 1.5 * p[1]).collect();
        let m = fit(&ModelSpec::linear(2).unwrap(), &pts, &y).unwrap();
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-12);
        assert!((m.coefficients()[1] - 2.0).abs() < 1e-12);
        assert!((m.coefficients()[2] + 1.5).abs() < 1e-12);
        assert!(m.r_squared() > 1.0 - 1e-12);
        assert!(m.rss() < 1e-20);
    }

    #[test]
    fn quadratic_recovery_on_ccd() {
        use crate::design::ccd::CentralComposite;
        let d = CentralComposite::rotatable(2)
            .unwrap()
            .with_center_points(3)
            .build()
            .unwrap();
        let truth = |x: &[f64]| {
            1.0 + 0.5 * x[0] - 0.8 * x[1] + 0.3 * x[0] * x[1] - 1.2 * x[0] * x[0]
                + 0.7 * x[1] * x[1]
        };
        let y: Vec<f64> = d.points().iter().map(|p| truth(p)).collect();
        let m = fit(&ModelSpec::quadratic(2).unwrap(), d.points(), &y).unwrap();
        for (c, expect) in m
            .coefficients()
            .iter()
            .zip([1.0, 0.5, -0.8, 0.3, -1.2, 0.7])
        {
            assert!((c - expect).abs() < 1e-9, "{c} vs {expect}");
        }
        // Perfect fit on noiseless data.
        assert!(m.predicted_r_squared() > 1.0 - 1e-9);
    }

    #[test]
    fn noisy_fit_statistics_behave() {
        // Deterministic pseudo-noise.
        let d = full_factorial_2k(3).unwrap().with_center_points(4);
        let y: Vec<f64> = d
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let noise = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                2.0 + 1.0 * p[0] + 0.1 * noise
            })
            .collect();
        let m = fit(&ModelSpec::linear(3).unwrap(), d.points(), &y).unwrap();
        assert!(m.r_squared() > 0.9 && m.r_squared() < 1.0);
        assert!(m.adj_r_squared() <= m.r_squared());
        assert!(m.predicted_r_squared() <= m.r_squared());
        assert!(m.sigma2() > 0.0);
        // x0 is strongly significant; x1, x2 are noise.
        let p = m.p_values().unwrap();
        assert!(p[1] < 0.001, "p(x0) = {}", p[1]);
        assert!(p[2] > 0.05, "p(x1) = {}", p[2]);
        let hw = m.coeff_confidence_halfwidths(0.05).unwrap();
        assert!(hw.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn leverage_sums_to_p() {
        let d = full_factorial_2k(2).unwrap().with_center_points(2);
        let y = vec![1.0, 2.0, 3.0, 4.0, 2.5, 2.5];
        let m = fit(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        let h_sum: f64 = m.leverages().iter().sum();
        assert!((h_sum - m.p() as f64).abs() < 1e-9);
    }

    #[test]
    fn saturated_fit_is_exact_but_uninferable() {
        let pts = vec![vec![-1.0], vec![1.0]];
        let y = vec![0.0, 2.0];
        let m = fit(&ModelSpec::linear(1).unwrap(), &pts, &y).unwrap();
        assert_eq!(m.df_residual(), 0);
        assert!(m.p_values().is_err());
        assert!((m.predict(&[0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let spec = ModelSpec::linear(2).unwrap();
        assert!(fit(&spec, &[vec![0.0, 0.0]], &[1.0, 2.0]).is_err());
        assert!(fit(&spec, &[vec![0.0, 0.0]], &[1.0]).is_err()); // n < p
        let pts = vec![vec![0.0, 0.0]; 4];
        // All-identical points: rank deficient for linear terms.
        assert!(matches!(
            fit(&spec, &pts, &[1.0; 4]),
            Err(DoeError::RankDeficient)
        ));
        assert!(fit(
            &spec,
            &[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]],
            &[1.0, f64::NAN, 2.0]
        )
        .is_err());
    }
}
