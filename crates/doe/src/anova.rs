//! Analysis of variance for fitted models: overall model significance
//! and — when the design contains replicated runs — the lack-of-fit
//! test that tells a designer whether the polynomial order suffices.

use crate::fit::FittedModel;
use crate::{DoeError, Result};
use ehsim_numeric::stats::dist::FisherF;
use std::collections::BTreeMap;
use std::fmt;

/// Overall ANOVA decomposition of a fitted model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaTable {
    /// Regression (model) sum of squares.
    pub ss_model: f64,
    /// Model degrees of freedom (`p - 1`).
    pub df_model: usize,
    /// Residual sum of squares.
    pub ss_resid: f64,
    /// Residual degrees of freedom (`n - p`).
    pub df_resid: usize,
    /// Total corrected sum of squares.
    pub ss_total: f64,
    /// F statistic of the model.
    pub f: f64,
    /// p-value of the model F test.
    pub p_value: f64,
}

impl fmt::Display for AnovaTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "source      SS          df    MS          F         p")?;
        let ms_model = self.ss_model / self.df_model.max(1) as f64;
        let ms_resid = self.ss_resid / self.df_resid.max(1) as f64;
        writeln!(
            f,
            "model      {:<11.4e} {:<5} {:<11.4e} {:<9.4} {:.4e}",
            self.ss_model, self.df_model, ms_model, self.f, self.p_value
        )?;
        writeln!(
            f,
            "residual   {:<11.4e} {:<5} {:<11.4e}",
            self.ss_resid, self.df_resid, ms_resid
        )?;
        write!(
            f,
            "total      {:<11.4e} {:<5}",
            self.ss_total,
            self.df_model + self.df_resid
        )
    }
}

/// Computes the overall ANOVA table.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] if the model has no residual degrees of
/// freedom or no non-intercept terms.
pub fn anova(model: &FittedModel) -> Result<AnovaTable> {
    let p = model.p();
    let df_model = p.saturating_sub(1);
    let df_resid = model.df_residual();
    if df_model == 0 {
        return Err(DoeError::invalid("anova needs at least one model term"));
    }
    if df_resid == 0 {
        return Err(DoeError::invalid(
            "anova needs residual degrees of freedom (unsaturated fit)",
        ));
    }
    let ss_total = model.tss();
    let ss_resid = model.rss();
    let ss_model = (ss_total - ss_resid).max(0.0);
    let ms_model = ss_model / df_model as f64;
    let ms_resid = ss_resid / df_resid as f64;
    let (f_stat, p_value) = if ms_resid > 0.0 {
        let f_stat = ms_model / ms_resid;
        let dist = FisherF::new(df_model as f64, df_resid as f64)?;
        (f_stat, dist.sf(f_stat))
    } else {
        (f64::INFINITY, 0.0)
    };
    Ok(AnovaTable {
        ss_model,
        df_model,
        ss_resid,
        df_resid,
        ss_total,
        f: f_stat,
        p_value,
    })
}

/// Lack-of-fit decomposition (only defined with replicated runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LackOfFit {
    /// Lack-of-fit sum of squares.
    pub ss_lof: f64,
    /// Lack-of-fit degrees of freedom.
    pub df_lof: usize,
    /// Pure-error sum of squares (within replicate groups).
    pub ss_pe: f64,
    /// Pure-error degrees of freedom.
    pub df_pe: usize,
    /// F statistic of lack of fit vs pure error.
    pub f: f64,
    /// p-value (small means the model order is inadequate).
    pub p_value: f64,
}

/// Computes the lack-of-fit test. Returns `Ok(None)` when the design has
/// no replicated runs (the test is undefined).
///
/// # Errors
///
/// Propagates distribution errors (cannot normally occur).
pub fn lack_of_fit(model: &FittedModel) -> Result<Option<LackOfFit>> {
    // Group runs by identical coded coordinates. A BTreeMap, not a
    // HashMap (determinism rule D1): `ss_pe` below is a float sum over
    // the groups, so the iteration order is part of the result's bits.
    // Sorted keys make that order a pure function of the design.
    let mut groups: BTreeMap<Vec<u64>, Vec<usize>> = BTreeMap::new();
    for (i, p) in model.points().iter().enumerate() {
        let key: Vec<u64> = p.iter().map(|v| v.to_bits()).collect();
        groups.entry(key).or_default().push(i);
    }
    let n = model.n();
    let m_groups = groups.len();
    let df_pe = n - m_groups;
    if df_pe == 0 {
        return Ok(None);
    }
    let responses = model.responses();
    let mut ss_pe = 0.0;
    for idxs in groups.values() {
        if idxs.len() < 2 {
            continue;
        }
        let mean: f64 = idxs.iter().map(|&i| responses[i]).sum::<f64>() / idxs.len() as f64;
        ss_pe += idxs
            .iter()
            .map(|&i| (responses[i] - mean) * (responses[i] - mean))
            .sum::<f64>();
    }
    let ss_lof = (model.rss() - ss_pe).max(0.0);
    let df_lof = m_groups.saturating_sub(model.p());
    if df_lof == 0 {
        return Ok(None);
    }
    let ms_lof = ss_lof / df_lof as f64;
    let ms_pe = ss_pe / df_pe as f64;
    let (f_stat, p_value) = if ms_pe > 0.0 {
        let f_stat = ms_lof / ms_pe;
        let dist = FisherF::new(df_lof as f64, df_pe as f64)?;
        (f_stat, dist.sf(f_stat))
    } else {
        // Zero pure error: any lack of fit is infinitely significant,
        // none at all means a perfect model.
        if ss_lof > 1e-20 {
            (f64::INFINITY, 0.0)
        } else {
            (0.0, 1.0)
        }
    };
    Ok(Some(LackOfFit {
        ss_lof,
        df_lof,
        ss_pe,
        df_pe,
        f: f_stat,
        p_value,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ccd::CentralComposite;
    use crate::fit::fit;
    use crate::model::ModelSpec;

    fn noisy(i: usize) -> f64 {
        // Deterministic pseudo-noise in [-0.5, 0.5].
        (((i * 2654435761) % 1000) as f64 / 1000.0) - 0.5
    }

    #[test]
    fn strong_signal_gives_significant_f() {
        let d = CentralComposite::face_centered(2)
            .unwrap()
            .with_center_points(4)
            .build()
            .unwrap();
        let y: Vec<f64> = d
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| 10.0 + 4.0 * p[0] + 0.01 * noisy(i))
            .collect();
        let m = fit(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        let a = anova(&m).unwrap();
        assert!(a.p_value < 1e-6, "p = {}", a.p_value);
        assert!(a.f > 100.0);
        assert!((a.ss_model + a.ss_resid - a.ss_total).abs() < 1e-9 * a.ss_total);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn pure_noise_is_insignificant() {
        let d = CentralComposite::face_centered(2)
            .unwrap()
            .with_center_points(6)
            .build()
            .unwrap();
        let y: Vec<f64> = (0..d.n_runs()).map(|i| 5.0 + noisy(i * 7 + 1)).collect();
        let m = fit(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        let a = anova(&m).unwrap();
        assert!(a.p_value > 0.05, "p = {}", a.p_value);
    }

    #[test]
    fn lack_of_fit_detects_missing_curvature() {
        // Strong quadratic truth fitted with a linear model: replicated
        // centre points expose the inadequacy.
        let d = CentralComposite::face_centered(2)
            .unwrap()
            .with_center_points(5)
            .build()
            .unwrap();
        let y: Vec<f64> = d
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| 3.0 * p[0] * p[0] + 3.0 * p[1] * p[1] + 0.01 * noisy(i))
            .collect();
        let m = fit(&ModelSpec::linear(2).unwrap(), d.points(), &y).unwrap();
        let lof = lack_of_fit(&m).unwrap().expect("replicates exist");
        assert!(lof.p_value < 1e-6, "lof p = {}", lof.p_value);

        // The quadratic model absorbs the curvature: no lack of fit.
        let m2 = fit(&ModelSpec::quadratic(2).unwrap(), d.points(), &y).unwrap();
        let lof2 = lack_of_fit(&m2).unwrap().expect("replicates exist");
        assert!(lof2.p_value > 0.05, "lof p = {}", lof2.p_value);
    }

    #[test]
    fn no_replicates_means_no_test() {
        let pts = vec![vec![-1.0], vec![0.0], vec![1.0], vec![0.5]];
        let y = vec![1.0, 2.0, 3.0, 2.4];
        let m = fit(&ModelSpec::linear(1).unwrap(), &pts, &y).unwrap();
        assert!(lack_of_fit(&m).unwrap().is_none());
    }

    #[test]
    fn anova_rejects_saturated() {
        let pts = vec![vec![-1.0], vec![1.0]];
        let m = fit(&ModelSpec::linear(1).unwrap(), &pts, &[0.0, 1.0]).unwrap();
        assert!(anova(&m).is_err());
    }

    /// Regression for the D1 fix (HashMap → BTreeMap grouping): with
    /// *several* replicated groups, `ss_pe` is a float sum whose bits
    /// depend on group iteration order. The order is now pinned to
    /// ascending `to_bits()` keys, so the sum must equal a
    /// hand-computed accumulation in exactly that order, bit for bit —
    /// the per-instance-seeded HashMap ordering could produce any of
    /// the `n!` permutations, and for these responses the permutations
    /// genuinely differ in the last ulp.
    #[test]
    fn pure_error_group_order_is_pinned() {
        // Three replicated points, ascending coded order -1 < 0 < 1
        // (for non-negative floats, to_bits order == numeric order;
        // -1.0 has the sign bit set, so its key sorts *last*).
        let pts = vec![
            vec![-1.0],
            vec![-1.0],
            vec![0.0],
            vec![0.0],
            vec![1.0],
            vec![1.0],
            vec![0.5],
        ];
        // Wildly different magnitudes so the within-group sums of
        // squares accumulate differently under reordering.
        let y = vec![1e8, 1.0 + 1e8, 3.0e-3, 1.0e-3, 7.0, 7.5, 2.0];
        let m = fit(&ModelSpec::linear(1).unwrap(), &pts, &y).unwrap();
        let lof = lack_of_fit(&m).unwrap().expect("replicates exist");

        // Hand-compute ss_pe in ascending-key order: 0.0, 0.5
        // (singleton, no contribution), 1.0, then -1.0.
        let group_sum = |vals: &[f64]| {
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        };
        let mut expect_ss_pe = 0.0;
        expect_ss_pe += group_sum(&[3.0e-3, 1.0e-3]); // key 0.0
        expect_ss_pe += group_sum(&[7.0, 7.5]); // key 1.0
        expect_ss_pe += group_sum(&[1e8, 1.0 + 1e8]); // key -1.0 (sign bit)
        assert_eq!(
            lof.ss_pe.to_bits(),
            expect_ss_pe.to_bits(),
            "ss_pe must accumulate groups in ascending to_bits() key order"
        );

        // And the opposite accumulation order really does change the
        // bits for this fixture — i.e. the pinned order is load-bearing,
        // not vacuous.
        let mut reversed = 0.0;
        reversed += group_sum(&[1e8, 1.0 + 1e8]);
        reversed += group_sum(&[7.0, 7.5]);
        reversed += group_sum(&[3.0e-3, 1.0e-3]);
        assert_ne!(
            reversed.to_bits(),
            expect_ss_pe.to_bits(),
            "fixture must be order-sensitive for the regression to bite"
        );

        // Repeated evaluation is bit-stable (trivially true with a
        // BTreeMap; the point of the regression).
        let again = lack_of_fit(&m).unwrap().expect("replicates exist");
        assert_eq!(lof.ss_pe.to_bits(), again.ss_pe.to_bits());
        assert_eq!(lof.f.to_bits(), again.f.to_bits());
    }
}
