//! Central composite designs (CCD) — the workhorse for fitting full
//! quadratic response surfaces, and the design the DATE'13 flow uses by
//! default.

use super::factorial::full_factorial_2k;
use super::Design;
use crate::{DoeError, Result};

/// Builder for central composite designs: a two-level factorial core,
/// `2k` axial (star) points at distance `±α`, and centre replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralComposite {
    k: usize,
    alpha: f64,
    center_points: usize,
    label: String,
}

impl CentralComposite {
    /// Rotatable CCD: `α = (2^k)^(1/4)`, giving constant prediction
    /// variance on spheres.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k` is 0 or greater than 12.
    pub fn rotatable(k: usize) -> Result<Self> {
        Self::with_alpha(k, (2f64.powi(k as i32)).powf(0.25), "rotatable")
    }

    /// Face-centred CCD (`α = 1`): axial points on the faces of the
    /// cube, keeping every run inside the coded `[-1, 1]` box — the
    /// right choice when the physical ranges are hard limits.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k` is 0 or greater than 12.
    pub fn face_centered(k: usize) -> Result<Self> {
        Self::with_alpha(k, 1.0, "face-centered")
    }

    /// CCD with a custom axial distance.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k` is out of range or
    /// `alpha <= 0`.
    pub fn custom(k: usize, alpha: f64) -> Result<Self> {
        Self::with_alpha(k, alpha, "custom-alpha")
    }

    fn with_alpha(k: usize, alpha: f64, kind: &str) -> Result<Self> {
        if k == 0 || k > 12 {
            return Err(DoeError::invalid(format!(
                "central composite needs 1 <= k <= 12, got {k}"
            )));
        }
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(DoeError::invalid(format!(
                "axial distance must be positive, got {alpha}"
            )));
        }
        Ok(CentralComposite {
            k,
            alpha,
            center_points: 1,
            label: format!("ccd(k={k}, {kind})"),
        })
    }

    /// Sets the number of centre replicates (default 1).
    pub fn with_center_points(mut self, n: usize) -> Self {
        self.center_points = n;
        self
    }

    /// The axial distance α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total number of runs the built design will have.
    pub fn n_runs(&self) -> usize {
        (1 << self.k) + 2 * self.k + self.center_points
    }

    /// Builds the design.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot normally occur once the
    /// builder validated).
    pub fn build(&self) -> Result<Design> {
        let core = full_factorial_2k(self.k)?;
        let mut points = core.points().to_vec();
        for j in 0..self.k {
            for sign in [-1.0, 1.0] {
                let mut p = vec![0.0; self.k];
                p[j] = sign * self.alpha;
                points.push(p);
            }
        }
        for _ in 0..self.center_points {
            points.push(vec![0.0; self.k]);
        }
        Design::new(self.k, points, self.label.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_counts() {
        let d = CentralComposite::rotatable(4)
            .unwrap()
            .with_center_points(5)
            .build()
            .unwrap();
        assert_eq!(d.n_runs(), 16 + 8 + 5);
        assert_eq!(d.k(), 4);
    }

    #[test]
    fn rotatable_alpha_value() {
        let c = CentralComposite::rotatable(2).unwrap();
        assert!((c.alpha() - 2f64.sqrt()).abs() < 1e-12);
        let c4 = CentralComposite::rotatable(4).unwrap();
        assert!((c4.alpha() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn face_centered_stays_in_box() {
        let d = CentralComposite::face_centered(3)
            .unwrap()
            .with_center_points(2)
            .build()
            .unwrap();
        for p in d.points() {
            assert!(p.iter().all(|v| v.abs() <= 1.0 + 1e-12));
        }
    }

    #[test]
    fn axial_points_have_single_nonzero() {
        let d = CentralComposite::rotatable(3).unwrap().build().unwrap();
        let axial: Vec<_> = d.points()[8..14].to_vec();
        for p in &axial {
            let nonzero = p.iter().filter(|v| v.abs() > 1e-12).count();
            assert_eq!(nonzero, 1);
            let mag = p.iter().map(|v| v.abs()).fold(0.0, f64::max);
            assert!((mag - CentralComposite::rotatable(3).unwrap().alpha()).abs() < 1e-12);
        }
    }

    #[test]
    fn builder_predicts_run_count() {
        let b = CentralComposite::face_centered(5)
            .unwrap()
            .with_center_points(6);
        assert_eq!(b.n_runs(), b.build().unwrap().n_runs());
    }

    #[test]
    fn validation() {
        assert!(CentralComposite::rotatable(0).is_err());
        assert!(CentralComposite::rotatable(13).is_err());
        assert!(CentralComposite::custom(3, 0.0).is_err());
        assert!(CentralComposite::custom(3, f64::NAN).is_err());
    }
}
