//! D-optimal designs by Fedorov point exchange.
//!
//! Given a candidate set (by default a 3-level grid) and a model
//! specification, selects the `n`-run subset maximising `det(XᵀX)` — the
//! design that minimises the generalised variance of the coefficient
//! estimates. Useful when the run budget is tighter than any classical
//! design allows.

use super::Design;
use crate::model::ModelSpec;
use crate::{DoeError, Result};
use ehsim_numeric::{Lu, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds a D-optimal design of `n` runs for the given model, selected
/// from a candidate set by Fedorov exchange.
///
/// `candidates` defaults (via [`d_optimal_grid`]) to the full 3-level
/// grid; any candidate list can be supplied here.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] on inconsistent dimensions or
/// `n < model.n_terms()`; [`DoeError::RankDeficient`] if no
/// non-singular starting subset is found.
pub fn d_optimal(
    model: &ModelSpec,
    candidates: &[Vec<f64>],
    n: usize,
    seed: u64,
) -> Result<Design> {
    let k = model.k();
    let p = model.n_terms();
    if n < p {
        return Err(DoeError::invalid(format!(
            "need at least as many runs ({n}) as model terms ({p})"
        )));
    }
    if candidates.len() < n {
        return Err(DoeError::invalid(format!(
            "candidate set ({}) smaller than requested runs ({n})",
            candidates.len()
        )));
    }
    for (i, c) in candidates.iter().enumerate() {
        if c.len() != k {
            return Err(DoeError::invalid(format!(
                "candidate {i} has {} coordinates, expected {k}",
                c.len()
            )));
        }
    }

    // Expanded model rows for every candidate.
    let rows: Vec<Vec<f64>> = candidates.iter().map(|c| model.expand_point(c)).collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..candidates.len()).collect();

    // Random restarts until the starting information matrix is
    // invertible.
    let mut selected: Option<Vec<usize>> = None;
    for _ in 0..50 {
        indices.shuffle(&mut rng);
        let trial: Vec<usize> = indices[..n].to_vec();
        if log_det_information(&rows, &trial, p).is_some() {
            selected = Some(trial);
            break;
        }
    }
    let mut selected = selected.ok_or(DoeError::RankDeficient)?;
    let mut best_logdet =
        log_det_information(&rows, &selected, p).expect("selected subset is nonsingular");

    // Fedorov exchange: repeatedly swap the selected point whose removal
    // hurts least with the candidate that helps most.
    for _sweep in 0..40 {
        let mut improved = false;
        for slot in 0..n {
            let current = selected[slot];
            let mut best_swap: Option<(usize, f64)> = None;
            for (cand_idx, _) in rows.iter().enumerate() {
                if selected.contains(&cand_idx) {
                    continue;
                }
                selected[slot] = cand_idx;
                if let Some(ld) = log_det_information(&rows, &selected, p) {
                    if ld > best_logdet + 1e-10 && best_swap.map_or(true, |(_, b)| ld > b) {
                        best_swap = Some((cand_idx, ld));
                    }
                }
            }
            match best_swap {
                Some((cand_idx, ld)) => {
                    selected[slot] = cand_idx;
                    best_logdet = ld;
                    improved = true;
                }
                None => {
                    selected[slot] = current;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let points: Vec<Vec<f64>> = selected.iter().map(|&i| candidates[i].clone()).collect();
    Design::new(k, points, format!("d-optimal(n={n}, seed={seed})"))
}

/// Convenience wrapper: D-optimal selection from the full 3-level grid
/// `{-1, 0, 1}^k`.
///
/// # Errors
///
/// Same as [`d_optimal`]; additionally rejects `k > 8` (grid blow-up).
pub fn d_optimal_grid(model: &ModelSpec, n: usize, seed: u64) -> Result<Design> {
    let k = model.k();
    if k > 8 {
        return Err(DoeError::invalid(format!(
            "3-level candidate grid supports k <= 8, got {k}"
        )));
    }
    let levels = [-1.0, 0.0, 1.0];
    let total = 3usize.pow(k as u32);
    let mut candidates = Vec::with_capacity(total);
    for mut code in 0..total {
        let mut p = vec![0.0; k];
        for slot in p.iter_mut() {
            *slot = levels[code % 3];
            code /= 3;
        }
        candidates.push(p);
    }
    d_optimal(model, &candidates, n, seed)
}

/// Log-determinant of `XᵀX` for the chosen subset; `None` if singular.
fn log_det_information(rows: &[Vec<f64>], subset: &[usize], p: usize) -> Option<f64> {
    let mut info = Matrix::zeros(p, p);
    for &idx in subset {
        let r = &rows[idx];
        for i in 0..p {
            for j in 0..p {
                info[(i, j)] += r[i] * r[j];
            }
        }
    }
    let lu = Lu::factor(&info).ok()?;
    let det = lu.det();
    if det <= 0.0 {
        return None;
    }
    Some(det.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    #[test]
    fn linear_model_picks_corners() {
        // For a first-order model the D-optimal design lives on the
        // corners of the cube.
        let model = ModelSpec::linear(2).unwrap();
        let d = d_optimal_grid(&model, 4, 42).unwrap();
        for p in d.points() {
            assert!(
                p.iter().all(|v| v.abs() == 1.0),
                "expected corner point, got {p:?}"
            );
        }
    }

    #[test]
    fn beats_random_subset_in_logdet() {
        let model = ModelSpec::quadratic(2).unwrap();
        let d = d_optimal_grid(&model, 8, 1).unwrap();
        let rows: Vec<Vec<f64>> = d.points().iter().map(|p| model.expand_point(p)).collect();
        let subset: Vec<usize> = (0..8).collect();
        let opt_ld = log_det_information(&rows, &subset, model.n_terms()).unwrap();

        // A deliberately poor (clustered) subset.
        let clustered: Vec<Vec<f64>> = (0..8).map(|i| vec![-1.0 + 0.05 * i as f64, -1.0]).collect();
        let c_rows: Vec<Vec<f64>> = clustered.iter().map(|p| model.expand_point(p)).collect();
        let c_ld = log_det_information(&c_rows, &subset, model.n_terms());
        match c_ld {
            None => {} // singular: optimal clearly better
            Some(c) => assert!(opt_ld > c, "opt {opt_ld} vs clustered {c}"),
        }
    }

    #[test]
    fn exact_sized_design_is_nonsingular() {
        // n == p: a saturated D-optimal design must still be invertible.
        let model = ModelSpec::quadratic(2).unwrap();
        let d = d_optimal_grid(&model, model.n_terms(), 3).unwrap();
        let rows: Vec<Vec<f64>> = d.points().iter().map(|p| model.expand_point(p)).collect();
        let subset: Vec<usize> = (0..rows.len()).collect();
        assert!(log_det_information(&rows, &subset, model.n_terms()).is_some());
    }

    #[test]
    fn validation() {
        let model = ModelSpec::linear(2).unwrap();
        assert!(d_optimal_grid(&model, 1, 0).is_err()); // fewer runs than terms
        assert!(d_optimal(&model, &[vec![0.0, 0.0]], 4, 0).is_err()); // too few candidates
        let bad = vec![vec![0.0; 3]; 10];
        assert!(d_optimal(&model, &bad, 4, 0).is_err()); // wrong dimension
        let big = ModelSpec::linear(9).unwrap();
        assert!(d_optimal_grid(&big, 10, 0).is_err());
    }

    #[test]
    fn determinism() {
        let model = ModelSpec::quadratic(2).unwrap();
        let a = d_optimal_grid(&model, 8, 9).unwrap();
        let b = d_optimal_grid(&model, 8, 9).unwrap();
        assert_eq!(a.points(), b.points());
    }
}
