//! Plackett–Burman screening designs.
//!
//! Two-level orthogonal main-effect designs in `n ≡ 0 (mod 4)` runs,
//! built from the classic cyclic first rows for n = 12, 20, 24 (powers
//! of two fall back to full/fractional factorial structure via n = 8,
//! 16 cyclic rows as well).

use super::Design;
use crate::{DoeError, Result};

/// First rows of the cyclic constructions (signs of n-1 columns).
fn first_row(n: usize) -> Option<Vec<i8>> {
    let row: &[i8] = match n {
        8 => &[1, 1, 1, -1, 1, -1, -1],
        12 => &[1, 1, -1, 1, 1, 1, -1, -1, -1, 1, -1],
        16 => &[1, 1, 1, 1, -1, 1, -1, 1, 1, -1, -1, 1, -1, -1, -1],
        20 => &[
            1, 1, -1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, 1, 1, -1,
        ],
        24 => &[
            1, 1, 1, 1, 1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, -1, -1, -1,
        ],
        _ => return None,
    };
    Some(row.to_vec())
}

/// Smallest supported Plackett–Burman run count accommodating `k`
/// factors.
pub fn runs_for(k: usize) -> Option<usize> {
    [8usize, 12, 16, 20, 24].into_iter().find(|&n| n - 1 >= k)
}

/// Builds a Plackett–Burman design for `k` factors in the smallest
/// supported run count (8, 12, 16, 20 or 24 runs; up to 23 factors).
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] if `k == 0` or `k > 23`.
///
/// # Example
///
/// ```
/// use ehsim_doe::design::plackett_burman::plackett_burman;
///
/// // 11 factors screened in just 12 runs.
/// let d = plackett_burman(11).expect("supported size");
/// assert_eq!(d.n_runs(), 12);
/// ```
pub fn plackett_burman(k: usize) -> Result<Design> {
    if k == 0 {
        return Err(DoeError::invalid("need at least one factor"));
    }
    let n = runs_for(k)
        .ok_or_else(|| DoeError::invalid(format!("plackett-burman supports k <= 23, got {k}")))?;
    let row = first_row(n).expect("runs_for only returns supported sizes");
    let m = n - 1;
    let mut points = Vec::with_capacity(n);
    for r in 0..(n - 1) {
        // Cyclic shift of the first row.
        let p: Vec<f64> = (0..k).map(|j| row[(j + m - r) % m] as f64).collect();
        points.push(p);
    }
    // Final run: all low.
    points.push(vec![-1.0; k]);
    Design::new(k, points, format!("plackett-burman n={n}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(runs_for(7), Some(8));
        assert_eq!(runs_for(11), Some(12));
        assert_eq!(runs_for(12), Some(16));
        assert_eq!(runs_for(23), Some(24));
        assert_eq!(runs_for(24), None);
    }

    #[test]
    fn columns_are_balanced_and_orthogonal() {
        for k in [7usize, 11, 15, 19, 23] {
            let d = plackett_burman(k).unwrap();
            let n = d.n_runs();
            for a in 0..k {
                let sum: f64 = d.points().iter().map(|p| p[a]).sum();
                assert_eq!(sum, 0.0, "k={k}, column {a} unbalanced");
                for b in (a + 1)..k {
                    let dot: f64 = d.points().iter().map(|p| p[a] * p[b]).sum();
                    assert_eq!(dot, 0.0, "k={k}, columns {a},{b} not orthogonal (n={n})");
                }
            }
        }
    }

    #[test]
    fn fewer_factors_than_columns() {
        let d = plackett_burman(5).unwrap();
        assert_eq!(d.n_runs(), 8);
        assert_eq!(d.k(), 5);
    }

    #[test]
    fn validation() {
        assert!(plackett_burman(0).is_err());
        assert!(plackett_burman(24).is_err());
    }
}
