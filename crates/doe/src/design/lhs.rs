//! Latin hypercube sampling — space-filling designs for comparison
//! against the structured quadratic designs (experiment E8).

use super::Design;
use crate::{DoeError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Builds a seeded Latin hypercube with `n` runs over `k` factors in
/// coded `[-1, 1]` units: each factor's range is divided into `n`
/// equal strata, each stratum sampled exactly once, with independent
/// random permutations per factor.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] if `k == 0` or `n == 0`.
///
/// # Example
///
/// ```
/// use ehsim_doe::design::lhs::latin_hypercube;
///
/// let d = latin_hypercube(4, 20, 42).expect("valid arguments");
/// assert_eq!(d.n_runs(), 20);
/// ```
pub fn latin_hypercube(k: usize, n: usize, seed: u64) -> Result<Design> {
    if k == 0 || n == 0 {
        return Err(DoeError::invalid(format!(
            "latin hypercube needs k >= 1 and n >= 1 (got k={k}, n={n})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut strata: Vec<usize> = (0..n).collect();
        strata.shuffle(&mut rng);
        let col: Vec<f64> = strata
            .into_iter()
            .map(|s| {
                let u: f64 = rng.random();
                // Stratified sample in [0,1), mapped to [-1, 1].
                let frac = (s as f64 + u) / n as f64;
                2.0 * frac - 1.0
            })
            .collect();
        columns.push(col);
    }
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..k).map(|j| columns[j][i]).collect())
        .collect();
    Design::new(k, points, format!("lhs(n={n}, seed={seed})"))
}

/// Builds a maximin Latin hypercube: `restarts` seeded candidates are
/// generated and the one maximising the minimum pairwise distance is
/// kept.
///
/// # Errors
///
/// Same as [`latin_hypercube`], plus `restarts == 0`.
pub fn maximin_latin_hypercube(k: usize, n: usize, seed: u64, restarts: usize) -> Result<Design> {
    if restarts == 0 {
        return Err(DoeError::invalid("need at least one restart"));
    }
    let mut best: Option<(f64, Design)> = None;
    for r in 0..restarts {
        let d = latin_hypercube(k, n, seed.wrapping_add(r as u64))?;
        let score = min_pairwise_distance(d.points());
        if best.as_ref().map_or(true, |(s, _)| score > *s) {
            best = Some((score, d));
        }
    }
    let (_, d) = best.expect("at least one restart ran");
    Ok(d)
}

fn min_pairwise_distance(points: &[Vec<f64>]) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d2: f64 = points[i]
                .iter()
                .zip(points[j].iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            min = min.min(d2.sqrt());
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratification_property() {
        let n = 10;
        let d = latin_hypercube(3, n, 7).unwrap();
        // Each factor has exactly one sample per stratum.
        for j in 0..3 {
            let mut strata: Vec<usize> = d
                .points()
                .iter()
                .map(|p| (((p[j] + 1.0) / 2.0) * n as f64).floor() as usize)
                .map(|s| s.min(n - 1))
                .collect();
            strata.sort_unstable();
            let expect: Vec<usize> = (0..n).collect();
            assert_eq!(strata, expect, "factor {j} not stratified");
        }
    }

    #[test]
    fn determinism_by_seed() {
        let a = latin_hypercube(2, 8, 42).unwrap();
        let b = latin_hypercube(2, 8, 42).unwrap();
        let c = latin_hypercube(2, 8, 43).unwrap();
        assert_eq!(a.points(), b.points());
        assert_ne!(a.points(), c.points());
    }

    #[test]
    fn bounds() {
        let d = latin_hypercube(5, 50, 1).unwrap();
        for p in d.points() {
            assert!(p.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn maximin_improves_spread() {
        let base = latin_hypercube(2, 12, 100).unwrap();
        let opt = maximin_latin_hypercube(2, 12, 100, 20).unwrap();
        assert!(min_pairwise_distance(opt.points()) >= min_pairwise_distance(base.points()));
    }

    #[test]
    fn validation() {
        assert!(latin_hypercube(0, 5, 0).is_err());
        assert!(latin_hypercube(2, 0, 0).is_err());
        assert!(maximin_latin_hypercube(2, 5, 0, 0).is_err());
    }
}
