//! Box–Behnken designs: three-level quadratic designs that avoid the
//! corners of the cube — cheaper than a CCD for 3–5 factors and safer
//! when extreme factor combinations are physically risky.

use super::Design;
use crate::{DoeError, Result};

/// Builds a Box–Behnken design for `k` factors (3 ≤ k ≤ 7) using the
/// classic edge-midpoint construction: for each factor pair, the four
/// `±1` combinations with all other factors at 0.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] if `k < 3` or `k > 7`.
///
/// # Example
///
/// ```
/// use ehsim_doe::design::box_behnken::box_behnken;
///
/// let d = box_behnken(3).expect("supported k").with_center_points(3);
/// assert_eq!(d.n_runs(), 12 + 3);
/// ```
pub fn box_behnken(k: usize) -> Result<Design> {
    if !(3..=7).contains(&k) {
        return Err(DoeError::invalid(format!(
            "box-behnken supports 3 <= k <= 7, got {k}"
        )));
    }
    let mut points = Vec::new();
    for a in 0..k {
        for b in (a + 1)..k {
            for (sa, sb) in [(-1.0, -1.0), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0)] {
                let mut p = vec![0.0; k];
                p[a] = sa;
                p[b] = sb;
                points.push(p);
            }
        }
    }
    Design::new(k, points, format!("box-behnken k={k}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_counts() {
        // k(k-1)/2 pairs x 4 runs.
        assert_eq!(box_behnken(3).unwrap().n_runs(), 12);
        assert_eq!(box_behnken(4).unwrap().n_runs(), 24);
        assert_eq!(box_behnken(5).unwrap().n_runs(), 40);
    }

    #[test]
    fn no_corner_points() {
        let d = box_behnken(4).unwrap();
        for p in d.points() {
            let nonzero = p.iter().filter(|v| v.abs() > 1e-12).count();
            assert_eq!(nonzero, 2, "exactly two factors active per run");
        }
    }

    #[test]
    fn levels_are_pm1() {
        let d = box_behnken(3).unwrap();
        for p in d.points() {
            for &v in p {
                assert!(v == 0.0 || v == 1.0 || v == -1.0);
            }
        }
    }

    #[test]
    fn balanced_columns() {
        let d = box_behnken(5).unwrap();
        for j in 0..5 {
            let s: f64 = d.points().iter().map(|p| p[j]).sum();
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn validation() {
        assert!(box_behnken(2).is_err());
        assert!(box_behnken(8).is_err());
    }
}
