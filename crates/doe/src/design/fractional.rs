//! Regular two-level fractional factorial designs `2^(k-p)`.
//!
//! Generators are given in the conventional notation, e.g. the
//! resolution-IV `2^(4-1)` design is built with `D = ABC`: the base
//! factors A..C form a full `2^3` and the fourth column is their
//! product.

use super::factorial::full_factorial_2k;
use super::Design;
use crate::{DoeError, Result};

/// A generator assigning one additional factor to a product (word) of
/// base factors, e.g. `D = ABC`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generator {
    /// Index of the generated factor (0-based over all `k` factors).
    pub factor: usize,
    /// Indices of the base factors whose product defines it.
    pub word: Vec<usize>,
    /// Sign of the generator (+1 or -1 fraction).
    pub negate: bool,
}

/// Builds a `2^(k-p)` fractional factorial.
///
/// `k` is the total number of factors; `generators` must assign exactly
/// the last `p` factors (indices `k-p .. k`) to words over the first
/// `k-p` base factors.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] on inconsistent generators.
///
/// # Example
///
/// ```
/// use ehsim_doe::design::fractional::{fractional_factorial, Generator};
///
/// // 2^(4-1) with D = ABC: 8 runs for 4 factors, resolution IV.
/// let d = fractional_factorial(4, &[Generator { factor: 3, word: vec![0, 1, 2], negate: false }])
///     .expect("valid generators");
/// assert_eq!(d.n_runs(), 8);
/// ```
pub fn fractional_factorial(k: usize, generators: &[Generator]) -> Result<Design> {
    let p = generators.len();
    if p == 0 || p >= k {
        return Err(DoeError::invalid(format!(
            "need 1 <= p < k generators (got p={p}, k={k})"
        )));
    }
    let base_k = k - p;
    // Validate generator structure.
    let mut assigned = vec![false; k];
    for g in generators {
        if g.factor < base_k || g.factor >= k {
            return Err(DoeError::invalid(format!(
                "generator assigns factor {} which is not one of the last {p} factors",
                g.factor
            )));
        }
        if assigned[g.factor] {
            return Err(DoeError::invalid(format!(
                "factor {} assigned by two generators",
                g.factor
            )));
        }
        assigned[g.factor] = true;
        if g.word.is_empty() {
            return Err(DoeError::invalid("generator word must be non-empty"));
        }
        for &w in &g.word {
            if w >= base_k {
                return Err(DoeError::invalid(format!(
                    "generator word uses factor {w}, but only the first {base_k} are base factors"
                )));
            }
        }
    }

    let base = full_factorial_2k(base_k)?;
    let mut points = Vec::with_capacity(base.n_runs());
    for bp in base.points() {
        let mut run = vec![0.0; k];
        run[..base_k].copy_from_slice(bp);
        for g in generators {
            let mut v = 1.0;
            for &w in &g.word {
                v *= bp[w];
            }
            run[g.factor] = if g.negate { -v } else { v };
        }
        points.push(run);
    }
    Design::new(k, points, format!("fractional-factorial 2^({k}-{p})"))
}

/// Estimates the resolution of the design from its generator words: the
/// length of the shortest word in the defining relation.
///
/// This walks all products of the defining contrasts, so it is exact
/// for regular designs.
pub fn resolution(k: usize, generators: &[Generator]) -> Result<usize> {
    let p = generators.len();
    if p == 0 || p >= k {
        return Err(DoeError::invalid(format!(
            "need 1 <= p < k generators (got p={p}, k={k})"
        )));
    }
    // Each defining contrast as a bitmask over the k factors:
    // I = factor * word  →  word ∪ {factor}.
    let contrasts: Vec<u32> = generators
        .iter()
        .map(|g| {
            let mut m = 1u32 << g.factor;
            for &w in &g.word {
                m |= 1 << w;
            }
            m
        })
        .collect();
    // All non-empty products of the contrasts (XOR of masks).
    let mut min_len = usize::MAX;
    for subset in 1u32..(1 << p) {
        let mut word = 0u32;
        for (i, c) in contrasts.iter().enumerate() {
            if subset >> i & 1 == 1 {
                word ^= c;
            }
        }
        min_len = min_len.min(word.count_ones() as usize);
    }
    Ok(min_len)
}

/// Full fold-over: appends the sign-reversed mirror of every run.
///
/// Folding a resolution-III design de-aliases all main effects from
/// two-factor interactions (the combined design has resolution ≥ IV) at
/// the cost of doubling the runs — the standard follow-up when a
/// screening experiment leaves ambiguity.
///
/// # Errors
///
/// Propagates [`Design::new`] errors (cannot normally occur).
pub fn fold_over(design: &Design) -> Result<Design> {
    let mut points = design.points().to_vec();
    points.extend(
        design
            .points()
            .iter()
            .map(|p| p.iter().map(|v| -v).collect::<Vec<f64>>()),
    );
    Design::new(
        design.k(),
        points,
        format!("{} + fold-over", design.label()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(factor: usize, word: &[usize]) -> Generator {
        Generator {
            factor,
            word: word.to_vec(),
            negate: false,
        }
    }

    #[test]
    fn half_fraction_2_4_1() {
        let d = fractional_factorial(4, &[gen(3, &[0, 1, 2])]).unwrap();
        assert_eq!(d.n_runs(), 8);
        assert_eq!(d.k(), 4);
        // D == A*B*C on every run.
        for p in d.points() {
            assert_eq!(p[3], p[0] * p[1] * p[2]);
        }
        // Columns remain balanced.
        for j in 0..4 {
            let s: f64 = d.points().iter().map(|p| p[j]).sum();
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn quarter_fraction_2_5_2() {
        // E = ABC, D... use standard 2^(5-2): D = AB, E = AC.
        let d = fractional_factorial(5, &[gen(3, &[0, 1]), gen(4, &[0, 2])]).unwrap();
        assert_eq!(d.n_runs(), 8);
        for p in d.points() {
            assert_eq!(p[3], p[0] * p[1]);
            assert_eq!(p[4], p[0] * p[2]);
        }
    }

    #[test]
    fn negated_generator() {
        let d = fractional_factorial(
            3,
            &[Generator {
                factor: 2,
                word: vec![0, 1],
                negate: true,
            }],
        )
        .unwrap();
        for p in d.points() {
            assert_eq!(p[2], -p[0] * p[1]);
        }
    }

    #[test]
    fn resolution_of_standard_designs() {
        // 2^(4-1), D=ABC: resolution IV.
        assert_eq!(resolution(4, &[gen(3, &[0, 1, 2])]).unwrap(), 4);
        // 2^(3-1), C=AB: resolution III.
        assert_eq!(resolution(3, &[gen(2, &[0, 1])]).unwrap(), 3);
        // 2^(5-2), D=AB, E=AC: resolution III.
        assert_eq!(
            resolution(5, &[gen(3, &[0, 1]), gen(4, &[0, 2])]).unwrap(),
            3
        );
        // 2^(5-1), E=ABCD: resolution V.
        assert_eq!(resolution(5, &[gen(4, &[0, 1, 2, 3])]).unwrap(), 5);
    }

    #[test]
    fn fold_over_doubles_and_dealiases() {
        // Resolution-III 2^(3-1) with C = AB: in the base fraction the C
        // column equals the AB interaction column exactly (aliased).
        let base = fractional_factorial(3, &[gen(2, &[0, 1])]).unwrap();
        let aligned: f64 = base.points().iter().map(|p| p[2] * p[0] * p[1]).sum();
        assert_eq!(aligned, base.n_runs() as f64, "C fully aliased with AB");

        let folded = fold_over(&base).unwrap();
        assert_eq!(folded.n_runs(), 2 * base.n_runs());
        // After folding, C is orthogonal to AB: main effects are clean.
        let aligned_folded: f64 = folded.points().iter().map(|p| p[2] * p[0] * p[1]).sum();
        assert_eq!(aligned_folded, 0.0, "fold-over de-aliases C from AB");
        // Columns stay balanced.
        for j in 0..3 {
            let s: f64 = folded.points().iter().map(|p| p[j]).sum();
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn validation() {
        assert!(fractional_factorial(3, &[]).is_err());
        assert!(fractional_factorial(2, &[gen(1, &[0]), gen(1, &[0])]).is_err());
        // Assigning a base factor is invalid.
        assert!(fractional_factorial(4, &[gen(0, &[1, 2])]).is_err());
        // Word referencing a generated factor is invalid.
        assert!(fractional_factorial(4, &[gen(3, &[3])]).is_err());
        // Duplicate assignment.
        assert!(fractional_factorial(5, &[gen(4, &[0, 1]), gen(4, &[0, 2])]).is_err());
    }
}
