//! Experimental designs in coded units.
//!
//! All designs produce runs in *coded* factor space: factorial levels at
//! `±1`, centre points at `0`, CCD axial points at `±α`. The `ehsim-core`
//! crate maps coded units onto physical parameter ranges.

pub mod box_behnken;
pub mod ccd;
pub mod doptimal;
pub mod factorial;
pub mod fractional;
pub mod lhs;
pub mod plackett_burman;

use crate::{DoeError, Result};
use ehsim_numeric::Matrix;
use std::fmt;

/// A set of experimental runs in coded factor space.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    k: usize,
    points: Vec<Vec<f64>>,
    label: String,
}

impl Design {
    /// Creates a design from explicit points.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k == 0`, the point list is
    /// empty, or any point has the wrong dimension or non-finite
    /// coordinates.
    pub fn new(k: usize, points: Vec<Vec<f64>>, label: impl Into<String>) -> Result<Self> {
        if k == 0 {
            return Err(DoeError::invalid("designs need at least one factor"));
        }
        if points.is_empty() {
            return Err(DoeError::invalid("designs need at least one run"));
        }
        for (i, p) in points.iter().enumerate() {
            if p.len() != k {
                return Err(DoeError::invalid(format!(
                    "run {i} has {} coordinates, expected {k}",
                    p.len()
                )));
            }
            if !p.iter().all(|v| v.is_finite()) {
                return Err(DoeError::invalid(format!(
                    "run {i} has non-finite coordinates"
                )));
            }
        }
        Ok(Design {
            k,
            points,
            label: label.into(),
        })
    }

    /// Number of factors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of runs.
    pub fn n_runs(&self) -> usize {
        self.points.len()
    }

    /// The runs, each a length-`k` coded coordinate vector.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Human-readable label (e.g. `"ccd(k=4, rotatable)"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends `n` centre-point replicates (all-zero coded runs).
    pub fn with_center_points(mut self, n: usize) -> Self {
        for _ in 0..n {
            self.points.push(vec![0.0; self.k]);
        }
        self
    }

    /// Appends the runs of another design over the same factors.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if the factor counts differ.
    pub fn concat(mut self, other: &Design) -> Result<Self> {
        if other.k != self.k {
            return Err(DoeError::invalid(format!(
                "cannot concatenate designs with {} and {} factors",
                self.k, other.k
            )));
        }
        self.points.extend(other.points.iter().cloned());
        self.label = format!("{} + {}", self.label, other.label);
        Ok(self)
    }

    /// The design as an `n_runs x k` matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.points.len(), self.k, |i, j| self.points[i][j])
    }

    /// Number of exact replicate groups (runs sharing identical coded
    /// coordinates) — relevant for the lack-of-fit test.
    pub fn replicate_groups(&self) -> usize {
        let mut sorted: Vec<&Vec<f64>> = self.points.iter().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        let mut groups = 1;
        for w in sorted.windows(2) {
            if w[0] != w[1] {
                groups += 1;
            }
        }
        groups
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — {} runs x {} factors",
            self.label,
            self.n_runs(),
            self.k
        )?;
        for p in &self.points {
            let row: Vec<String> = p.iter().map(|v| format!("{v:>7.3}")).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Design::new(0, vec![vec![]], "x").is_err());
        assert!(Design::new(2, vec![], "x").is_err());
        assert!(Design::new(2, vec![vec![1.0]], "x").is_err());
        assert!(Design::new(1, vec![vec![f64::NAN]], "x").is_err());
        let d = Design::new(2, vec![vec![1.0, -1.0]], "ok").unwrap();
        assert_eq!(d.k(), 2);
        assert_eq!(d.n_runs(), 1);
    }

    #[test]
    fn center_points_are_appended() {
        let d = Design::new(2, vec![vec![1.0, 1.0]], "base")
            .unwrap()
            .with_center_points(3);
        assert_eq!(d.n_runs(), 4);
        assert_eq!(d.points()[3], vec![0.0, 0.0]);
    }

    #[test]
    fn concat_checks_dimensions() {
        let a = Design::new(2, vec![vec![1.0, 1.0]], "a").unwrap();
        let b = Design::new(2, vec![vec![-1.0, -1.0]], "b").unwrap();
        let c = a.clone().concat(&b).unwrap();
        assert_eq!(c.n_runs(), 2);
        let bad = Design::new(3, vec![vec![0.0; 3]], "c").unwrap();
        assert!(a.concat(&bad).is_err());
    }

    #[test]
    fn replicate_group_count() {
        let d = Design::new(
            1,
            vec![vec![0.0], vec![1.0], vec![0.0], vec![-1.0], vec![0.0]],
            "r",
        )
        .unwrap();
        assert_eq!(d.replicate_groups(), 3);
    }

    #[test]
    fn matrix_roundtrip_and_display() {
        let d = Design::new(2, vec![vec![1.0, -1.0], vec![-1.0, 1.0]], "m").unwrap();
        let m = d.to_matrix();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], -1.0);
        assert!(!format!("{d}").is_empty());
    }
}
