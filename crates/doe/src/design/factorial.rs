//! Full factorial designs.

use super::Design;
use crate::{DoeError, Result};

/// Maximum factor count for two-level full factorials (2^16 runs).
const MAX_K_2LEVEL: usize = 16;

/// Builds the full two-level factorial `2^k` with levels `±1`, in
/// standard (Yates) order: the first factor alternates fastest.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] if `k == 0` or `k > 16`.
///
/// # Example
///
/// ```
/// use ehsim_doe::design::factorial::full_factorial_2k;
///
/// let d = full_factorial_2k(3).expect("valid k");
/// assert_eq!(d.n_runs(), 8);
/// ```
pub fn full_factorial_2k(k: usize) -> Result<Design> {
    if k == 0 || k > MAX_K_2LEVEL {
        return Err(DoeError::invalid(format!(
            "2^k factorial needs 1 <= k <= {MAX_K_2LEVEL}, got {k}"
        )));
    }
    let n = 1usize << k;
    let mut points = Vec::with_capacity(n);
    for run in 0..n {
        let p = (0..k)
            .map(|j| if run >> j & 1 == 1 { 1.0 } else { -1.0 })
            .collect();
        points.push(p);
    }
    Design::new(k, points, format!("full-factorial 2^{k}"))
}

/// Builds the full three-level factorial `3^k` with levels `-1, 0, +1`.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] if `k == 0` or `3^k` would exceed
/// 65 536 runs.
pub fn full_factorial_3k(k: usize) -> Result<Design> {
    full_factorial_mixed(&vec![3; k])
}

/// Builds a general full factorial with an arbitrary number of evenly
/// spaced levels per factor, coded into `[-1, 1]`.
///
/// # Errors
///
/// [`DoeError::InvalidArgument`] if any factor has fewer than 2 levels
/// or the total run count exceeds 65 536.
pub fn full_factorial_mixed(levels: &[usize]) -> Result<Design> {
    if levels.is_empty() {
        return Err(DoeError::invalid("need at least one factor"));
    }
    if levels.iter().any(|&l| l < 2) {
        return Err(DoeError::invalid("every factor needs at least 2 levels"));
    }
    let n: usize = levels
        .iter()
        .try_fold(1usize, |acc, &l| {
            acc.checked_mul(l).filter(|&v| v <= 65_536)
        })
        .ok_or_else(|| DoeError::invalid("factorial design exceeds 65536 runs"))?;
    let k = levels.len();
    let mut points = Vec::with_capacity(n);
    let mut idx = vec![0usize; k];
    loop {
        let p: Vec<f64> = idx
            .iter()
            .zip(levels.iter())
            .map(|(&i, &l)| -1.0 + 2.0 * i as f64 / (l as f64 - 1.0))
            .collect();
        points.push(p);
        // Odometer increment.
        let mut j = 0;
        loop {
            idx[j] += 1;
            if idx[j] < levels[j] {
                break;
            }
            idx[j] = 0;
            j += 1;
            if j == k {
                let labels: Vec<String> = levels.iter().map(|l| l.to_string()).collect();
                return Design::new(k, points, format!("full-factorial {}", labels.join("x")));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_runs_and_levels() {
        let d = full_factorial_2k(3).unwrap();
        assert_eq!(d.n_runs(), 8);
        assert_eq!(d.k(), 3);
        // All points at ±1, all distinct.
        for p in d.points() {
            assert!(p.iter().all(|&v| v == 1.0 || v == -1.0));
        }
        let mut uniq = d.points().to_vec();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn two_level_is_orthogonal() {
        let d = full_factorial_2k(4).unwrap();
        // Columns are mutually orthogonal and balanced.
        for a in 0..4 {
            let col_a: Vec<f64> = d.points().iter().map(|p| p[a]).collect();
            assert_eq!(col_a.iter().sum::<f64>(), 0.0);
            for b in (a + 1)..4 {
                let dot: f64 = d.points().iter().map(|p| p[a] * p[b]).sum();
                assert_eq!(dot, 0.0);
            }
        }
    }

    #[test]
    fn three_level_counts() {
        let d = full_factorial_3k(3).unwrap();
        assert_eq!(d.n_runs(), 27);
        for p in d.points() {
            assert!(p.iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn mixed_levels() {
        let d = full_factorial_mixed(&[2, 4]).unwrap();
        assert_eq!(d.n_runs(), 8);
        // Second factor has 4 evenly spaced levels.
        let mut lv: Vec<f64> = d.points().iter().map(|p| p[1]).collect();
        lv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lv.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert_eq!(lv.len(), 4);
        assert!((lv[1] - (-1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(full_factorial_2k(0).is_err());
        assert!(full_factorial_2k(17).is_err());
        assert!(full_factorial_mixed(&[]).is_err());
        assert!(full_factorial_mixed(&[1, 2]).is_err());
        assert!(full_factorial_mixed(&[256, 256, 2]).is_err());
    }
}
