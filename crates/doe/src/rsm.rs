//! Response-surface analysis of fitted quadratic models.
//!
//! Writes the fitted second-order polynomial as
//! `ŷ = b₀ + bᵀx + xᵀ B x` and analyses its stationary point: location
//! (`2 B xs = −b`), predicted value, and nature from the eigenvalues of
//! `B` (canonical analysis).

use crate::fit::FittedModel;
use crate::{DoeError, Result};
use ehsim_numeric::eigen::symmetric_eigen;
use ehsim_numeric::{Lu, Matrix};

/// Nature of a quadratic surface's stationary point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StationaryKind {
    /// All eigenvalues negative: the point is a maximum.
    Maximum,
    /// All eigenvalues positive: the point is a minimum.
    Minimum,
    /// Mixed signs: a saddle (rising ridge in some directions).
    Saddle,
}

/// Canonical analysis of a fitted quadratic response surface.
#[derive(Debug, Clone)]
pub struct ResponseSurface {
    b0: f64,
    b: Vec<f64>,
    bmat: Matrix,
    stationary: Option<Vec<f64>>,
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix,
}

impl ResponseSurface {
    /// Extracts the quadratic structure from a fitted model.
    ///
    /// The model must contain the intercept and, for every quadratic
    /// coefficient used, the corresponding terms; missing quadratic or
    /// interaction terms are treated as zero (so reduced models work).
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if any term has degree > 2.
    pub fn from_fitted(model: &FittedModel) -> Result<Self> {
        let spec = model.spec();
        let k = spec.k();
        let mut b0 = 0.0;
        let mut b = vec![0.0; k];
        let mut bmat = Matrix::zeros(k, k);
        for (term, &coef) in spec.terms().iter().zip(model.coefficients()) {
            match term.degree() {
                0 => b0 = coef,
                1 => {
                    let i = term
                        .powers()
                        .iter()
                        .position(|&p| p == 1)
                        .expect("degree-1 term has one linear factor");
                    b[i] = coef;
                }
                2 => {
                    let active: Vec<usize> = term
                        .powers()
                        .iter()
                        .enumerate()
                        .filter(|(_, &p)| p > 0)
                        .map(|(i, _)| i)
                        .collect();
                    match active.len() {
                        1 => bmat[(active[0], active[0])] = coef,
                        2 => {
                            bmat[(active[0], active[1])] = coef / 2.0;
                            bmat[(active[1], active[0])] = coef / 2.0;
                        }
                        _ => unreachable!("degree-2 term has 1 or 2 active factors"),
                    }
                }
                d => {
                    return Err(DoeError::invalid(format!(
                        "canonical analysis needs degree <= 2, found term of degree {d}"
                    )))
                }
            }
        }

        // Stationary point: 2 B xs = -b (None when B is singular —
        // a ridge system).
        let stationary = Lu::factor(&bmat.scaled(2.0))
            .ok()
            .and_then(|lu| lu.solve(&b.iter().map(|v| -v).collect::<Vec<_>>()).ok());

        let eig = symmetric_eigen(&bmat)?;
        Ok(ResponseSurface {
            b0,
            b,
            bmat,
            stationary,
            eigenvalues: eig.values,
            eigenvectors: eig.vectors,
        })
    }

    /// Intercept `b₀`.
    pub fn intercept(&self) -> f64 {
        self.b0
    }

    /// Linear coefficient vector `b`.
    pub fn linear_coeffs(&self) -> &[f64] {
        &self.b
    }

    /// Symmetric quadratic coefficient matrix `B`.
    pub fn quadratic_matrix(&self) -> &Matrix {
        &self.bmat
    }

    /// The stationary point in coded units, if `B` is non-singular.
    pub fn stationary_point(&self) -> Option<&[f64]> {
        self.stationary.as_deref()
    }

    /// Predicted response at the stationary point.
    pub fn stationary_value(&self) -> Option<f64> {
        self.stationary.as_ref().map(|x| self.eval(x))
    }

    /// Eigenvalues of `B` in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Principal-axis directions (columns).
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Classifies the stationary point; eigenvalues within `tol` of
    /// zero are treated as flat (ridge) directions and grouped with the
    /// dominant sign.
    pub fn kind(&self, tol: f64) -> StationaryKind {
        let pos = self.eigenvalues.iter().filter(|&&l| l > tol).count();
        let neg = self.eigenvalues.iter().filter(|&&l| l < -tol).count();
        if pos > 0 && neg > 0 {
            StationaryKind::Saddle
        } else if neg > 0 {
            StationaryKind::Maximum
        } else {
            StationaryKind::Minimum
        }
    }

    /// Evaluates the quadratic form `b₀ + bᵀx + xᵀBx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factor count.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.b.len(), "dimension mismatch");
        let bx = self.bmat.matvec(x).expect("dimension checked");
        let quad: f64 = x.iter().zip(bx.iter()).map(|(a, c)| a * c).sum();
        let lin: f64 = self.b.iter().zip(x.iter()).map(|(a, c)| a * c).sum();
        self.b0 + lin + quad
    }

    /// Analytic gradient `b + 2 B x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factor count.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.b.len(), "dimension mismatch");
        let bx = self.bmat.matvec(x).expect("dimension checked");
        self.b
            .iter()
            .zip(bx.iter())
            .map(|(bi, bxi)| bi + 2.0 * bxi)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ccd::CentralComposite;
    use crate::fit::fit;
    use crate::model::ModelSpec;

    fn fit_surface(truth: impl Fn(&[f64]) -> f64, k: usize) -> ResponseSurface {
        let d = CentralComposite::rotatable(k)
            .unwrap()
            .with_center_points(3)
            .build()
            .unwrap();
        let y: Vec<f64> = d.points().iter().map(|p| truth(p)).collect();
        let m = fit(&ModelSpec::quadratic(k).unwrap(), d.points(), &y).unwrap();
        ResponseSurface::from_fitted(&m).unwrap()
    }

    #[test]
    fn recovers_maximum() {
        // Peak at (0.5, -0.25).
        let rs = fit_surface(
            |x| 10.0 - 2.0 * (x[0] - 0.5) * (x[0] - 0.5) - 4.0 * (x[1] + 0.25) * (x[1] + 0.25),
            2,
        );
        assert_eq!(rs.kind(1e-9), StationaryKind::Maximum);
        let s = rs.stationary_point().expect("nonsingular B");
        assert!((s[0] - 0.5).abs() < 1e-9, "{s:?}");
        assert!((s[1] + 0.25).abs() < 1e-9, "{s:?}");
        assert!((rs.stationary_value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_minimum_and_saddle() {
        let rs_min = fit_surface(|x| x[0] * x[0] + x[1] * x[1], 2);
        assert_eq!(rs_min.kind(1e-9), StationaryKind::Minimum);
        let rs_saddle = fit_surface(|x| x[0] * x[0] - x[1] * x[1], 2);
        assert_eq!(rs_saddle.kind(1e-9), StationaryKind::Saddle);
    }

    #[test]
    fn eigenstructure_of_anisotropic_bowl() {
        let rs = fit_surface(|x| 3.0 * x[0] * x[0] + 1.0 * x[1] * x[1], 2);
        assert!((rs.eigenvalues()[0] - 1.0).abs() < 1e-9);
        assert!((rs.eigenvalues()[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn gradient_vanishes_at_stationary() {
        let rs = fit_surface(
            |x| 1.0 + x[0] - 2.0 * x[1] - x[0] * x[0] - 0.5 * x[1] * x[1] + 0.3 * x[0] * x[1],
            2,
        );
        let s = rs.stationary_point().unwrap().to_vec();
        let g = rs.gradient(&s);
        assert!(g.iter().all(|v| v.abs() < 1e-9), "{g:?}");
    }

    #[test]
    fn eval_matches_model_predict() {
        let d = CentralComposite::rotatable(3)
            .unwrap()
            .with_center_points(2)
            .build()
            .unwrap();
        let truth =
            |x: &[f64]| 2.0 - x[0] + 0.5 * x[2] + x[0] * x[1] - x[1] * x[1] + 0.2 * x[2] * x[2];
        let y: Vec<f64> = d.points().iter().map(|p| truth(p)).collect();
        let m = fit(&ModelSpec::quadratic(3).unwrap(), d.points(), &y).unwrap();
        let rs = ResponseSurface::from_fitted(&m).unwrap();
        for x in [[0.3, -0.7, 0.1], [1.0, 1.0, -1.0], [0.0, 0.0, 0.0]] {
            assert!((rs.eval(&x) - m.predict(&x)).abs() < 1e-9);
        }
    }

    #[test]
    fn reduced_model_missing_terms_ok() {
        // Model with no interactions at all.
        let d = CentralComposite::face_centered(2)
            .unwrap()
            .with_center_points(3)
            .build()
            .unwrap();
        let y: Vec<f64> = d.points().iter().map(|p| 1.0 - p[0] * p[0]).collect();
        let spec = ModelSpec::new(
            2,
            vec![
                crate::model::Term::intercept(2),
                crate::model::Term::quadratic(2, 0),
            ],
        )
        .unwrap();
        let m = fit(&spec, d.points(), &y).unwrap();
        let rs = ResponseSurface::from_fitted(&m).unwrap();
        // B is singular (x1 direction flat): no stationary point.
        assert!(rs.stationary_point().is_none());
        assert!((rs.eval(&[0.5, 123.0]) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn rejects_cubic_terms() {
        let spec = ModelSpec::new(
            1,
            vec![
                crate::model::Term::intercept(1),
                crate::model::Term::new(vec![3]),
            ],
        )
        .unwrap();
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let y: Vec<f64> = pts.iter().map(|p| p[0].powi(3)).collect();
        let m = fit(&spec, &pts, &y).unwrap();
        assert!(ResponseSurface::from_fitted(&m).is_err());
    }
}
