//! Hierarchy-respecting backward elimination.
//!
//! Starting from a full model, repeatedly drops the least significant
//! term (largest p-value above the threshold), never removing a term
//! that is still contained in a higher-order term of the model
//! (hierarchy principle), and never removing the intercept.

use crate::fit::{fit, FittedModel};
use crate::model::ModelSpec;
use crate::Result;

/// Result of a backward-elimination pass.
#[derive(Debug, Clone)]
pub struct StepwiseResult {
    /// The reduced model specification.
    pub spec: ModelSpec,
    /// The final fitted model.
    pub model: FittedModel,
    /// Terms dropped, in elimination order (display strings).
    pub dropped: Vec<String>,
}

/// Runs backward elimination at significance threshold `alpha`.
///
/// # Errors
///
/// Propagates fitting errors; the initial model must be estimable on
/// the data.
pub fn backward_eliminate(
    spec: &ModelSpec,
    points: &[Vec<f64>],
    responses: &[f64],
    alpha: f64,
) -> Result<StepwiseResult> {
    let mut current = spec.clone();
    let mut dropped = Vec::new();
    loop {
        let model = fit(&current, points, responses)?;
        // A saturated model has no p-values; stop reducing only when
        // inference is possible.
        let p_values = match model.p_values() {
            Ok(p) => p,
            Err(_) => {
                return Ok(StepwiseResult {
                    spec: current,
                    model,
                    dropped,
                })
            }
        };
        // Find the droppable term with the largest p-value above alpha.
        let mut worst: Option<(usize, f64)> = None;
        for (j, term) in current.terms().iter().enumerate() {
            if term.is_intercept() {
                continue;
            }
            // Hierarchy: keep if any other term contains it.
            let protected = current.terms().iter().any(|other| other.contains(term));
            if protected {
                continue;
            }
            let p = p_values[j];
            if p > alpha && worst.map_or(true, |(_, wp)| p > wp) {
                worst = Some((j, p));
            }
        }
        match worst {
            None => {
                return Ok(StepwiseResult {
                    spec: current,
                    model,
                    dropped,
                })
            }
            Some((j, _)) => {
                let term = current.terms()[j].clone();
                dropped.push(term.to_string());
                current = current.without_term(&term)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ccd::CentralComposite;
    use crate::model::Term;

    fn noisy(i: usize) -> f64 {
        (((i * 2654435761) % 1000) as f64 / 1000.0) - 0.5
    }

    #[test]
    fn drops_pure_noise_terms() {
        let d = CentralComposite::face_centered(3)
            .unwrap()
            .with_center_points(4)
            .build()
            .unwrap();
        // Truth uses only x0 and x1²; x2 is inert.
        let y: Vec<f64> = d
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| 2.0 + 3.0 * p[0] + 2.0 * p[1] * p[1] + 0.02 * noisy(i))
            .collect();
        let full = ModelSpec::quadratic(3).unwrap();
        let res = backward_eliminate(&full, d.points(), &y, 0.05).unwrap();
        let kept: Vec<String> = res.spec.terms().iter().map(|t| t.to_string()).collect();
        assert!(kept.contains(&"x0".to_string()), "kept: {kept:?}");
        assert!(kept.contains(&"x1^2".to_string()), "kept: {kept:?}");
        // The inert factor's pure terms are gone.
        assert!(!kept.contains(&"x2^2".to_string()), "kept: {kept:?}");
        assert!(!kept.contains(&"x0·x2".to_string()), "kept: {kept:?}");
        assert!(!res.dropped.is_empty());
        // Reduced model still fits well.
        assert!(res.model.r_squared() > 0.99);
    }

    #[test]
    fn hierarchy_is_respected() {
        let d = CentralComposite::face_centered(2)
            .unwrap()
            .with_center_points(4)
            .build()
            .unwrap();
        // Truth: pure interaction, both mains inert.
        let y: Vec<f64> = d
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| 4.0 * p[0] * p[1] + 0.02 * noisy(i))
            .collect();
        let full = ModelSpec::with_interactions(2).unwrap();
        let res = backward_eliminate(&full, d.points(), &y, 0.05).unwrap();
        let kept: Vec<String> = res.spec.terms().iter().map(|t| t.to_string()).collect();
        // The interaction stays, so both main effects must stay too.
        assert!(kept.contains(&"x0·x1".to_string()));
        assert!(kept.contains(&"x0".to_string()));
        assert!(kept.contains(&"x1".to_string()));
    }

    #[test]
    fn keeps_intercept() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![-1.0 + 2.0 * i as f64 / 9.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| 5.0 + 0.01 * noisy(i)).collect();
        let res = backward_eliminate(&ModelSpec::linear(1).unwrap(), &pts, &y, 0.05).unwrap();
        assert!(res.spec.terms().iter().any(|t| t.is_intercept()));
        // The inert slope was dropped.
        assert_eq!(res.spec.n_terms(), 1);
    }

    #[test]
    fn significant_terms_survive() {
        let d = CentralComposite::face_centered(2)
            .unwrap()
            .with_center_points(3)
            .build()
            .unwrap();
        let y: Vec<f64> = d
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| 1.0 + 2.0 * p[0] - 3.0 * p[1] + 0.01 * noisy(i))
            .collect();
        let res =
            backward_eliminate(&ModelSpec::quadratic(2).unwrap(), d.points(), &y, 0.05).unwrap();
        let kept: Vec<String> = res.spec.terms().iter().map(|t| t.to_string()).collect();
        assert!(kept.contains(&"x0".to_string()));
        assert!(kept.contains(&"x1".to_string()));
        let _ = Term::intercept(2);
    }
}
