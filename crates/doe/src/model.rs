//! Polynomial model specifications.
//!
//! A [`Term`] is a monomial over the coded factors (e.g. `x0·x2` or
//! `x1²`); a [`ModelSpec`] is an ordered list of terms — the columns of
//! the design matrix that ordinary least squares fits.

use crate::{DoeError, Result};
use ehsim_numeric::Matrix;
use std::fmt;

/// A monomial term: per-factor exponents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    powers: Vec<u8>,
}

impl Term {
    /// Creates a term from per-factor exponents.
    pub fn new(powers: Vec<u8>) -> Self {
        Term { powers }
    }

    /// The intercept term (all exponents zero).
    pub fn intercept(k: usize) -> Self {
        Term { powers: vec![0; k] }
    }

    /// A pure linear term `x_i`.
    pub fn linear(k: usize, i: usize) -> Self {
        let mut powers = vec![0; k];
        powers[i] = 1;
        Term { powers }
    }

    /// A two-factor interaction `x_i · x_j`.
    pub fn interaction(k: usize, i: usize, j: usize) -> Self {
        let mut powers = vec![0; k];
        powers[i] += 1;
        powers[j] += 1;
        Term { powers }
    }

    /// A pure quadratic term `x_i²`.
    pub fn quadratic(k: usize, i: usize) -> Self {
        let mut powers = vec![0; k];
        powers[i] = 2;
        Term { powers }
    }

    /// Per-factor exponents.
    pub fn powers(&self) -> &[u8] {
        &self.powers
    }

    /// Total degree of the monomial.
    pub fn degree(&self) -> u32 {
        self.powers.iter().map(|&p| p as u32).sum()
    }

    /// Whether this is the intercept.
    pub fn is_intercept(&self) -> bool {
        self.powers.iter().all(|&p| p == 0)
    }

    /// Evaluates the monomial at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.powers().len()`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.powers.len(), "dimension mismatch");
        self.powers
            .iter()
            .zip(x.iter())
            .map(|(&p, &xi)| xi.powi(p as i32))
            .product()
    }

    /// Whether `other` is a strict sub-term (divides this monomial) —
    /// used for model hierarchy.
    pub fn contains(&self, other: &Term) -> bool {
        self.powers.len() == other.powers.len()
            && self
                .powers
                .iter()
                .zip(other.powers.iter())
                .all(|(a, b)| a >= b)
            && self != other
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_intercept() {
            return write!(f, "1");
        }
        let mut first = true;
        for (i, &p) in self.powers.iter().enumerate() {
            if p == 0 {
                continue;
            }
            if !first {
                write!(f, "·")?;
            }
            if p == 1 {
                write!(f, "x{i}")?;
            } else {
                write!(f, "x{i}^{p}")?;
            }
            first = false;
        }
        Ok(())
    }
}

/// An ordered set of monomial terms over `k` factors.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    k: usize,
    terms: Vec<Term>,
}

impl ModelSpec {
    /// Builds a model from explicit terms.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k == 0`, the list is empty,
    /// contains duplicates, or a term has the wrong arity.
    pub fn new(k: usize, terms: Vec<Term>) -> Result<Self> {
        if k == 0 {
            return Err(DoeError::invalid("models need at least one factor"));
        }
        if terms.is_empty() {
            return Err(DoeError::invalid("models need at least one term"));
        }
        for t in &terms {
            if t.powers.len() != k {
                return Err(DoeError::invalid(format!(
                    "term {t} has arity {}, expected {k}",
                    t.powers.len()
                )));
            }
        }
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                if terms[i] == terms[j] {
                    return Err(DoeError::invalid(format!("duplicate term {}", terms[i])));
                }
            }
        }
        Ok(ModelSpec { k, terms })
    }

    /// First-order model: intercept + all linear terms.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k == 0`.
    pub fn linear(k: usize) -> Result<Self> {
        let mut terms = vec![Term::intercept(k)];
        terms.extend((0..k).map(|i| Term::linear(k, i)));
        ModelSpec::new(k, terms)
    }

    /// First-order model plus all two-factor interactions.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k == 0`.
    pub fn with_interactions(k: usize) -> Result<Self> {
        let mut terms = vec![Term::intercept(k)];
        terms.extend((0..k).map(|i| Term::linear(k, i)));
        for i in 0..k {
            for j in (i + 1)..k {
                terms.push(Term::interaction(k, i, j));
            }
        }
        ModelSpec::new(k, terms)
    }

    /// Full second-order (quadratic) model: intercept, linear,
    /// two-factor interactions, pure quadratics — the standard RSM
    /// model.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if `k == 0`.
    pub fn quadratic(k: usize) -> Result<Self> {
        let mut terms = vec![Term::intercept(k)];
        terms.extend((0..k).map(|i| Term::linear(k, i)));
        for i in 0..k {
            for j in (i + 1)..k {
                terms.push(Term::interaction(k, i, j));
            }
        }
        terms.extend((0..k).map(|i| Term::quadratic(k, i)));
        ModelSpec::new(k, terms)
    }

    /// Number of factors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of terms (model matrix columns).
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// The terms in column order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Expands one point into a model-matrix row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.k()`.
    pub fn expand_point(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.k, "dimension mismatch");
        self.terms.iter().map(|t| t.eval(x)).collect()
    }

    /// Expands a set of points into the design (model) matrix.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if any point has the wrong arity.
    pub fn design_matrix(&self, points: &[Vec<f64>]) -> Result<Matrix> {
        for (i, p) in points.iter().enumerate() {
            if p.len() != self.k {
                return Err(DoeError::invalid(format!(
                    "point {i} has {} coordinates, expected {}",
                    p.len(),
                    self.k
                )));
            }
        }
        let rows: Vec<Vec<f64>> = points.iter().map(|p| self.expand_point(p)).collect();
        Ok(Matrix::from_fn(points.len(), self.terms.len(), |i, j| {
            rows[i][j]
        }))
    }

    /// Returns a copy with the given term removed.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidArgument`] if the term is absent or it is the
    /// last remaining term.
    pub fn without_term(&self, term: &Term) -> Result<ModelSpec> {
        let terms: Vec<Term> = self.terms.iter().filter(|t| *t != term).cloned().collect();
        if terms.len() == self.terms.len() {
            return Err(DoeError::invalid(format!("term {term} not in model")));
        }
        ModelSpec::new(self.k, terms)
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "y ~ {}", strs.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_eval() {
        let t = Term::new(vec![1, 0, 2]);
        assert_eq!(t.eval(&[2.0, 5.0, 3.0]), 18.0);
        assert_eq!(t.degree(), 3);
        assert_eq!(Term::intercept(3).eval(&[7.0, 8.0, 9.0]), 1.0);
    }

    #[test]
    fn term_constructors() {
        assert_eq!(Term::linear(3, 1).powers(), &[0, 1, 0]);
        assert_eq!(Term::interaction(3, 0, 2).powers(), &[1, 0, 1]);
        assert_eq!(Term::quadratic(3, 2).powers(), &[0, 0, 2]);
        // Self-interaction becomes a square.
        assert_eq!(Term::interaction(2, 1, 1).powers(), &[0, 2]);
    }

    #[test]
    fn hierarchy_containment() {
        let inter = Term::interaction(3, 0, 1);
        let lin = Term::linear(3, 0);
        assert!(inter.contains(&lin));
        assert!(!lin.contains(&inter));
        assert!(!inter.contains(&inter));
        assert!(Term::quadratic(3, 0).contains(&Term::linear(3, 0)));
    }

    #[test]
    fn model_sizes() {
        assert_eq!(ModelSpec::linear(4).unwrap().n_terms(), 5);
        assert_eq!(ModelSpec::with_interactions(4).unwrap().n_terms(), 11);
        // Quadratic: 1 + k + k(k-1)/2 + k = 15 for k = 4.
        assert_eq!(ModelSpec::quadratic(4).unwrap().n_terms(), 15);
    }

    #[test]
    fn design_matrix_values() {
        let m = ModelSpec::quadratic(2).unwrap();
        let x = m.design_matrix(&[vec![2.0, 3.0]]).unwrap();
        // Columns: 1, x0, x1, x0x1, x0², x1².
        assert_eq!(x.row(0), &[1.0, 2.0, 3.0, 6.0, 4.0, 9.0]);
    }

    #[test]
    fn without_term() {
        let m = ModelSpec::linear(2).unwrap();
        let reduced = m.without_term(&Term::linear(2, 1)).unwrap();
        assert_eq!(reduced.n_terms(), 2);
        assert!(m.without_term(&Term::quadratic(2, 0)).is_err());
    }

    #[test]
    fn validation() {
        assert!(ModelSpec::new(0, vec![]).is_err());
        assert!(ModelSpec::new(2, vec![]).is_err());
        assert!(ModelSpec::new(2, vec![Term::new(vec![1])]).is_err());
        assert!(ModelSpec::new(2, vec![Term::intercept(2), Term::intercept(2)]).is_err());
        let m = ModelSpec::linear(2).unwrap();
        assert!(m.design_matrix(&[vec![1.0]]).is_err());
    }

    #[test]
    fn display() {
        let m = ModelSpec::quadratic(2).unwrap();
        let s = m.to_string();
        assert!(s.contains("x0·x1"));
        assert!(s.contains("x1^2"));
    }
}
